//! Long randomized update-churn sequences: the closure must match a
//! freshly-built ground truth after arbitrary interleavings of every §4
//! operation, across configurations (tight gaps force relabels, reserves
//! enable refinement, merging changes the storage layout).

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use tc_core::{ClosureConfig, CompressedClosure, UpdateError};
use tc_graph::{generators, NodeId};

fn churn(config: ClosureConfig, seed: u64, steps: usize, verify_every: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 12,
        avg_out_degree: 1.5,
        seed,
    });
    let mut c = config.build(&g).unwrap();

    for step in 0..steps {
        let n = c.node_count() as u32;
        match rng.random_range(0..6) {
            // Leaf/root addition.
            0 => {
                let k = rng.random_range(0..=2usize);
                let parents: Vec<NodeId> =
                    (0..k).map(|_| NodeId(rng.random_range(0..n))).collect();
                c.add_node_with_parents(&parents).unwrap();
            }
            // Non-tree arc addition (cycle-safe).
            1 => {
                let a = NodeId(rng.random_range(0..n));
                let b = NodeId(rng.random_range(0..n));
                if a != b && !c.reaches(b, a) {
                    c.add_edge(a, b).unwrap();
                }
            }
            // Arc deletion.
            2 => {
                let edges: Vec<(NodeId, NodeId)> = c.graph().edges().collect();
                if let Some(&(s, d)) = edges.choose(&mut rng) {
                    c.remove_edge(s, d).unwrap();
                }
            }
            // Refinement (requires reserve; tolerate exhaustion).
            3 => {
                let child = NodeId(rng.random_range(0..n));
                let preds: Vec<NodeId> = c.graph().predecessors(child).to_vec();
                match c.refine_insert(child, &preds) {
                    Ok(_) | Err(UpdateError::ReserveExhausted(_)) => {}
                    Err(e) => panic!("unexpected refine error: {e}"),
                }
            }
            // Node removal.
            4 => {
                if n > 4 {
                    let victim = NodeId(rng.random_range(0..n));
                    c.remove_node(victim).unwrap();
                }
            }
            // Maintenance.
            _ => {
                if rng.random_bool(0.5) {
                    c.relabel();
                } else {
                    c.rebuild();
                }
            }
        }
        // The structural audit is O(n + intervals), cheap enough to run
        // after *every* step; the full ground-truth verify stays periodic.
        c.audit()
            .unwrap_or_else(|e| panic!("seed {seed} step {step}: audit: {e}"));
        if step % verify_every == verify_every - 1 {
            c.verify()
                .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
        }
    }
    c.verify().unwrap_or_else(|e| panic!("seed {seed} final: {e}"));
}

#[test]
fn churn_with_default_config() {
    for seed in 0..4 {
        churn(ClosureConfig::new(), seed, 150, 25);
    }
}

#[test]
fn churn_with_tight_gaps_forces_relabels() {
    // gap 2 exhausts instantly, exercising the "empty numbers run out" path
    // on nearly every insertion.
    for seed in 10..13 {
        churn(ClosureConfig::new().gap(2), seed, 100, 20);
    }
}

#[test]
fn churn_with_reserve() {
    for seed in 20..23 {
        churn(ClosureConfig::new().gap(64).reserve(4), seed, 120, 20);
    }
}

#[test]
fn churn_with_merging() {
    for seed in 30..33 {
        churn(ClosureConfig::new().gap(32).merge_adjacent(true), seed, 120, 20);
    }
}

#[test]
fn churn_interleaved_with_freezing() {
    // Freeze/thaw interleaved with every §4 update: each mutation must
    // invalidate the plane, frozen answers must match the mutable ones
    // that follow, and verify() must pass while frozen.
    for seed in 40..43 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 12,
            avg_out_degree: 1.5,
            seed,
        });
        let mut c = ClosureConfig::new().gap(16).reserve(2).build(&g).unwrap();
        for step in 0..120 {
            let n = c.node_count() as u32;
            c.freeze();
            assert!(c.is_frozen(), "seed {seed} step {step}: freeze did not stick");
            // Snapshot frozen answers for a sample before mutating.
            let probe = NodeId(rng.random_range(0..n));
            let frozen_succ = c.successors(probe);
            let frozen_pred = c.predecessors(probe);
            if step % 20 == 0 {
                c.verify().unwrap_or_else(|e| panic!("seed {seed} step {step} frozen: {e}"));
                assert!(c.is_frozen(), "verify must not thaw");
            }
            let mutated = match rng.random_range(0..4) {
                0 => {
                    let parent = NodeId(rng.random_range(0..n));
                    c.add_node_with_parents(&[parent]).unwrap();
                    true
                }
                1 => {
                    let a = NodeId(rng.random_range(0..n));
                    let b = NodeId(rng.random_range(0..n));
                    // An already-present arc is a no-op (`Ok(false)`) and
                    // legitimately leaves the plane frozen.
                    if a != b && !c.reaches(b, a) {
                        c.add_edge(a, b).unwrap()
                    } else {
                        false
                    }
                }
                2 => {
                    let edges: Vec<(NodeId, NodeId)> = c.graph().edges().collect();
                    match edges.choose(&mut rng) {
                        Some(&(s, d)) => {
                            c.remove_edge(s, d).unwrap();
                            true
                        }
                        None => false,
                    }
                }
                _ => {
                    if n > 4 {
                        c.remove_node(NodeId(rng.random_range(0..n))).unwrap();
                        true
                    } else {
                        false
                    }
                }
            };
            if mutated {
                assert!(!c.is_frozen(), "seed {seed} step {step}: update left plane frozen");
            } else {
                // Queries alone must not thaw the plane, and the snapshot
                // must still agree with the (unchanged) mutable answers.
                assert!(c.is_frozen());
                c.thaw();
                assert_eq!(c.successors(probe), frozen_succ, "seed {seed} step {step}");
                assert_eq!(c.predecessors(probe), frozen_pred, "seed {seed} step {step}");
            }
            c.audit().unwrap_or_else(|e| panic!("seed {seed} step {step}: audit: {e}"));
        }
        c.freeze();
        c.verify().unwrap_or_else(|e| panic!("seed {seed} final frozen verify: {e}"));
    }
}

#[test]
fn optimality_recovered_by_rebuild_after_churn() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 60,
        avg_out_degree: 2.0,
        seed: 7,
    });
    let mut c = ClosureConfig::new().build(&g).unwrap();
    // Pile on non-optimally-placed nodes and arcs.
    for _ in 0..60 {
        let n = c.node_count() as u32;
        let a = NodeId(rng.random_range(0..n));
        let b = NodeId(rng.random_range(0..n));
        if a != b && !c.reaches(b, a) {
            c.add_edge(a, b).unwrap();
        }
        c.add_node_with_parents(&[NodeId(rng.random_range(0..n))]).unwrap();
    }
    let churned = c.total_intervals();
    let fresh = CompressedClosure::build(c.graph()).unwrap().total_intervals();
    assert!(fresh <= churned, "rebuild can only improve: {fresh} vs {churned}");
    c.rebuild();
    assert_eq!(c.total_intervals(), fresh);
    c.verify().unwrap();
}

#[test]
fn updates_preserve_paper_figure_numbers_between_relabels() {
    // A relabel must not change observable reachability, only numbers.
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 30,
        avg_out_degree: 2.0,
        seed: 3,
    });
    let mut c = ClosureConfig::new().gap(16).build(&g).unwrap();
    let snapshot: Vec<Vec<NodeId>> = g
        .nodes()
        .map(|v| {
            let mut s = c.successors(v);
            s.sort_unstable();
            s
        })
        .collect();
    c.relabel();
    for v in g.nodes() {
        let mut s = c.successors(v);
        s.sort_unstable();
        assert_eq!(s, snapshot[v.index()]);
    }
}
