//! Scale smoke tests: the knowledge-base sizes §2.1 talks about ("an
//! airplane … may have close to 100,000 different kinds of parts") must
//! build and answer quickly. These run in debug CI, so they are sized to a
//! few seconds; crank the constants under `--release` for the full effect.

use tc_core::{ClosureConfig, CompressedClosure};
use tc_graph::{generators, traverse, NodeId};

#[test]
fn twenty_thousand_node_hierarchy_builds_and_answers() {
    // A 6-level taxonomy-shaped DAG with multiple inheritance.
    let g = generators::layered_dag(6, 3500, 2, 41);
    assert_eq!(g.node_count(), 21_000);
    let c = CompressedClosure::build(&g).unwrap();

    // Spot-check against DFS on a sample of pairs.
    for u in (0..21_000).step_by(997) {
        let truth = traverse::reachable_set(&g, NodeId(u as u32));
        for v in (0..21_000).step_by(1501) {
            assert_eq!(
                c.reaches(NodeId(u as u32), NodeId(v as u32)),
                truth.contains(v),
                "({u},{v})"
            );
        }
    }

    // Near-tree hierarchies stay near one interval per node even with two
    // parents each (subsumption eats the duplicates).
    let stats = c.stats();
    assert!(
        stats.total_intervals() < 12 * g.node_count(),
        "interval blow-up: {stats}"
    );
}

#[test]
fn incremental_growth_to_ten_thousand_nodes() {
    // Grow from a seed graph purely through the §4 update path.
    let seed_graph = generators::random_dag(generators::RandomDagConfig {
        nodes: 100,
        avg_out_degree: 2.0,
        seed: 3,
    });
    let mut c = ClosureConfig::new().build(&seed_graph).unwrap();
    let mut rng_state = 12345u64;
    let mut next = || {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng_state >> 33) as u32
    };
    while c.node_count() < 10_000 {
        let parent = NodeId(next() % c.node_count() as u32);
        c.add_node_with_parents(&[parent]).unwrap();
    }
    // Sampled spot checks against the graph.
    for _ in 0..50 {
        let u = NodeId(next() % 10_000);
        let v = NodeId(next() % 10_000);
        assert_eq!(
            c.reaches(u, v),
            traverse::reaches(c.graph(), u, v),
            "({u:?},{v:?})"
        );
    }
}

#[test]
fn serialization_scales() {
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 5_000,
        avg_out_degree: 2.0,
        seed: 5,
    });
    let c = CompressedClosure::build(&g).unwrap();
    let bytes = c.to_bytes();
    let back = CompressedClosure::from_bytes(&bytes).unwrap();
    assert_eq!(back.to_bytes(), bytes);
    // The serialized closure is far smaller than the materialized relation
    // pairs it answers for.
    let stats = c.stats();
    assert!(bytes.len() < stats.closure_size * 8);
}
