//! Disk-layout integration: the paged stores must agree with the in-memory
//! closure on realistic workloads, and the I/O accounting must show the
//! orderings the paper's §2.2 motivation predicts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_core::{ClosureConfig, CompressedClosure};
use tc_graph::{generators, NodeId};
use tc_store::{AdjStore, BufferPool, LabelStore, TcListStore};

#[test]
fn stores_agree_with_closure_across_page_sizes() {
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 120,
        avg_out_degree: 2.5,
        seed: 17,
    });
    let closure = CompressedClosure::build(&g).unwrap();
    for page in [64usize, 256, 4096] {
        let labels = LabelStore::build(&closure, page);
        let tclists = TcListStore::build(&g, page);
        let adj = AdjStore::build(&g, page);
        let mut p1 = BufferPool::new(4);
        let mut p2 = BufferPool::new(4);
        let mut p3 = BufferPool::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let u = NodeId(rng.random_range(0..120));
            let v = NodeId(rng.random_range(0..120));
            let expect = closure.reaches(u, v);
            assert_eq!(labels.reaches(u, v, &mut p1), expect, "labels page={page}");
            assert_eq!(tclists.reaches(u, v, &mut p2), expect, "tclists page={page}");
            assert_eq!(adj.reaches(u, v, &mut p3), expect, "adj page={page}");
        }
    }
}

#[test]
fn io_ordering_matches_motivation() {
    // §2.2: the compressed layout should minimize I/O traffic relative to
    // both the fat materialization and pointer chasing, on a dense graph
    // where the differences are stark.
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 600,
        avg_out_degree: 4.0,
        seed: 23,
    });
    let closure = ClosureConfig::new().gap(1).build(&g).unwrap();
    let labels = LabelStore::build(&closure, 512);
    let tclists = TcListStore::build(&g, 512);
    let adj = AdjStore::build(&g, 512);

    let mut rng = StdRng::seed_from_u64(5);
    let mix: Vec<(NodeId, NodeId)> = (0..800)
        .map(|_| {
            (
                NodeId(rng.random_range(0..600)),
                NodeId(rng.random_range(0..600)),
            )
        })
        .collect();

    let run = |f: &mut dyn FnMut(NodeId, NodeId)| {
        for &(u, v) in &mix {
            f(u, v);
        }
    };

    let mut pool = BufferPool::new(8);
    labels.blob().pager().reset_counters();
    run(&mut |u, v| {
        labels.reaches(u, v, &mut pool);
    });
    let label_reads = labels.blob().pager().reads();

    let mut pool = BufferPool::new(8);
    tclists.blob().pager().reset_counters();
    run(&mut |u, v| {
        tclists.reaches(u, v, &mut pool);
    });
    let list_reads = tclists.blob().pager().reads();

    let mut pool = BufferPool::new(8);
    adj.blob().pager().reset_counters();
    run(&mut |u, v| {
        adj.reaches(u, v, &mut pool);
    });
    let chase_reads = adj.blob().pager().reads();

    assert!(
        label_reads < list_reads,
        "compressed labels ({label_reads}) should out-perform closure lists ({list_reads})"
    );
    assert!(
        label_reads < chase_reads,
        "compressed labels ({label_reads}) should out-perform pointer chasing ({chase_reads})"
    );

    // Footprint ordering too: labels < closure lists.
    assert!(labels.blob().page_count() < tclists.blob().page_count());
}

#[test]
fn buffer_pool_capacity_trades_hits_for_reads() {
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 300,
        avg_out_degree: 3.0,
        seed: 4,
    });
    let closure = ClosureConfig::new().gap(1).build(&g).unwrap();
    let labels = LabelStore::build(&closure, 256);

    let mut reads_by_capacity = Vec::new();
    for capacity in [1usize, 8, 1024] {
        let mut pool = BufferPool::new(capacity);
        labels.blob().pager().reset_counters();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let u = NodeId(rng.random_range(0..300));
            let v = NodeId(rng.random_range(0..300));
            labels.reaches(u, v, &mut pool);
        }
        reads_by_capacity.push(labels.blob().pager().reads());
    }
    assert!(
        reads_by_capacity[0] >= reads_by_capacity[1],
        "bigger pool, fewer disk reads: {reads_by_capacity:?}"
    );
    assert!(reads_by_capacity[1] >= reads_by_capacity[2]);
    // With the pool bigger than the store, every page is read exactly once.
    assert!(reads_by_capacity[2] <= labels.blob().page_count() as u64);
}
