//! Cross-validation: every reachability index in the workspace must agree
//! with every other (and with DFS ground truth) on the same graphs.

use tc_baselines::{
    ChainIndex, DfsOracle, FullClosure, InverseClosure, ItalianoIndex, ReachMatrix,
    ReachabilityIndex, SchubertIndex,
};
use tc_core::{ClosureConfig, CompressedClosure};
use tc_graph::{generators, traverse, DiGraph};

fn indexes_for(g: &DiGraph) -> Vec<Box<dyn ReachabilityIndex>> {
    vec![
        Box::new(FullClosure::build(g)),
        Box::new(ReachMatrix::build(g)),
        Box::new(ReachMatrix::build_warshall(g)),
        Box::new(InverseClosure::build(g).unwrap()),
        Box::new(ChainIndex::build_greedy(g).unwrap()),
        Box::new(ChainIndex::build_minimum(g).unwrap()),
        Box::new(DfsOracle::new(g.clone())),
        Box::new(ItalianoIndex::build(g)),
    ]
}

fn check_graph(g: &DiGraph, label: &str) {
    let compressed = CompressedClosure::build(g).unwrap();
    let merged = ClosureConfig::new()
        .gap(1)
        .merge_adjacent(true)
        .build(g)
        .unwrap();
    let reserved = ClosureConfig::new().reserve(4).build(g).unwrap();
    let indexes = indexes_for(g);
    for u in g.nodes() {
        let truth = traverse::reachable_set(g, u);
        for v in g.nodes() {
            let expect = truth.contains(v.index());
            assert_eq!(compressed.reaches(u, v), expect, "{label}: compressed ({u:?},{v:?})");
            assert_eq!(merged.reaches(u, v), expect, "{label}: merged ({u:?},{v:?})");
            assert_eq!(reserved.reaches(u, v), expect, "{label}: reserved ({u:?},{v:?})");
            for index in &indexes {
                assert_eq!(
                    index.reaches(u, v),
                    expect,
                    "{label}: {} disagrees on ({u:?},{v:?})",
                    index.name()
                );
            }
        }
    }
}

#[test]
fn all_indexes_agree_on_random_dags() {
    for seed in 0..6 {
        for degree in [1.0, 2.0, 4.0] {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 40,
                avg_out_degree: degree,
                seed,
            });
            check_graph(&g, &format!("random seed={seed} d={degree}"));
        }
    }
}

#[test]
fn all_indexes_agree_on_structured_graphs() {
    check_graph(&generators::balanced_tree(3, 3), "balanced tree");
    check_graph(&generators::chain(30), "chain");
    check_graph(&generators::bipartite_worst(5, 5), "bipartite worst");
    check_graph(&generators::bipartite_with_hub(5, 5), "bipartite hub");
    check_graph(&generators::layered_dag(4, 8, 2, 3), "layered");
    check_graph(&DiGraph::with_nodes(10), "edgeless");
}

#[test]
fn all_indexes_agree_on_every_tiny_dag() {
    // Exhaustive over all 4-node DAGs (64 masks).
    for mask in generators::enumerate_dag_masks(4) {
        let g = generators::dag_from_mask(4, mask);
        check_graph(&g, &format!("mask {mask:#b}"));
    }
}

#[test]
fn schubert_is_sound_but_incomplete() {
    // The §5 comparison: Schubert never lies positively, but can miss
    // cross-hierarchy paths — exactly the gap the paper's scheme closes.
    let mut sound = 0usize;
    let mut incomplete = 0usize;
    for seed in 0..10 {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 30,
            avg_out_degree: 2.0,
            seed,
        });
        let ix = SchubertIndex::build(&g).unwrap();
        for u in g.nodes() {
            let truth = traverse::reachable_set(&g, u);
            for v in g.nodes() {
                match (ix.reaches(u, v), truth.contains(v.index())) {
                    (true, false) => panic!("Schubert false positive on seed {seed}"),
                    (false, true) => incomplete += 1,
                    _ => sound += 1,
                }
            }
        }
    }
    assert!(sound > 0);
    assert!(
        incomplete > 0,
        "random DAGs should exhibit the cross-hierarchy incompleteness of [28]"
    );
}

#[test]
fn dynamic_cyclic_closure_matches_warshall_under_churn() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tc_core::cyclic::DynamicCyclicClosure;

    let mut rng = StdRng::seed_from_u64(6);
    for seed in 0..3 {
        let mut g = DiGraph::with_nodes(15);
        let mut seeder = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let a = seeder.random_range(0..15u32);
            let b = seeder.random_range(0..15u32);
            if a != b {
                g.add_edge(tc_graph::NodeId(a), tc_graph::NodeId(b));
            }
        }
        let mut dynamic = DynamicCyclicClosure::build(&g);
        for step in 0..50 {
            let a = tc_graph::NodeId(rng.random_range(0..15u32));
            let b = tc_graph::NodeId(rng.random_range(0..15u32));
            if a == b {
                continue;
            }
            if rng.random_bool(0.6) {
                dynamic.add_edge(a, b);
                g.add_edge(a, b);
            } else if g.remove_edge(a, b) {
                assert!(dynamic.remove_edge(a, b));
            }
            if step % 10 == 9 {
                let truth = ReachMatrix::build_warshall(&g);
                for u in g.nodes() {
                    for v in g.nodes() {
                        assert_eq!(
                            dynamic.reaches(u, v),
                            truth.reaches(u, v),
                            "seed {seed} step {step} ({u:?},{v:?})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn storage_orderings_match_the_paper() {
    // On a moderately dense graph: compressed < full closure; matrix is
    // density-independent; Italiano >= full closure.
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 200,
        avg_out_degree: 4.0,
        seed: 9,
    });
    let compressed = CompressedClosure::build(&g).unwrap();
    let full = FullClosure::build(&g);
    let italiano = ItalianoIndex::build(&g);
    assert!(compressed.stats().compressed_units() < full.storage_units());
    assert!(italiano.storage_units() >= full.storage_units());
}
