//! Integration tests for the network serving front end: malformed-input
//! handling on real sockets, and multi-client network answers checked
//! against the in-process snapshot reader under churn.

use tc_core::{ClosureConfig, ShardedClosure};
use tc_graph::{generators, NodeId};
use tc_server::{Client, Dict, Engine, EngineConfig, Server, ServerConfig};

fn start_server(nodes: usize, seed: u64, shards: usize) -> Server {
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes,
        avg_out_degree: 2.0,
        seed,
    });
    let sc = ShardedClosure::build(ClosureConfig::new(), &g, shards).unwrap();
    let engine = Engine::start(sc, Dict::with_default_keys(nodes), EngineConfig::default());
    Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap()
}

#[test]
fn malformed_requests_get_error_responses_not_disconnects() {
    let server = start_server(10, 1, 1);
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    // Unknown verb.
    assert!(c.request("frobnicate n0").unwrap().starts_with("err unknown-verb"));
    // Known verb, wrong operands.
    assert!(c.request("reaches n0").unwrap().starts_with("err bad-request"));
    // Unknown string key.
    assert!(c.request("reaches n0 no-such-node").unwrap().starts_with("err unknown-key"));
    // Bad UTF-8 in the middle of a line.
    c.send_raw(b"reaches \xff\xfe n0\n").unwrap();
    assert!(c.read_response().unwrap().starts_with("err utf8"));
    // Oversized line: drained, answered, connection lives.
    let mut big = vec![b'x'; 80 * 1024];
    big.push(b'\n');
    c.send_raw(&big).unwrap();
    assert!(c.read_response().unwrap().starts_with("err oversized"));
    // The same connection still answers real queries after all that abuse.
    assert_eq!(c.request("ping").unwrap(), "ok pong");
    assert_eq!(c.reaches("n0", "n0").unwrap(), Ok(true));

    // Half-closed socket mid-request: a best-effort `err truncated` comes
    // back before the server closes its side.
    let mut half = Client::connect(&addr).unwrap();
    half.send_raw(b"reaches n0").unwrap(); // no terminator
    half.shutdown_write().unwrap();
    assert!(half.read_response().unwrap().starts_with("err truncated"));

    assert_eq!(server.caught_panics(), 0, "no handler panicked");
    let stats = server.engine().stats();
    assert_eq!(stats.submitted, 0, "malformed requests never reach the writers");
    server.stop().expect("accept loop panicked");
}

#[test]
fn concurrent_clients_match_the_in_process_snapshot_reader() {
    let nodes = 40;
    let server = start_server(nodes, 7, 2);
    let addr = server.addr().to_string();

    // Churn phase: three clients mix reads and writes over real sockets.
    // Every response must be protocol-clean (`ok ...`): semantic rejections
    // are fine, `err` is not.
    std::thread::scope(|scope| {
        for t in 0..3u32 {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                for j in 0..40u32 {
                    let a = format!("n{}", (t * 7 + j) % nodes as u32);
                    let b = format!("n{}", (j * 3 + 1) % nodes as u32);
                    let reqs = [
                        format!("add-node t{t}-{j} {a}"),
                        format!("add-edge {a} {b}"),
                        format!("reaches {a} {b}"),
                        format!("successors {b}"),
                        format!("remove-edge {a} {b}"),
                        format!("reaches-batch {a} {b} {b} {a}"),
                    ];
                    for req in &reqs {
                        let resp = c.request(req).unwrap();
                        assert!(
                            resp.starts_with("ok"),
                            "protocol error during churn: {req:?} -> {resp:?}"
                        );
                    }
                }
            });
        }
    });

    // Settle: one flush makes reads exact, then compare every pair through
    // the network against the in-process snapshot reader.
    let mut net = Client::connect(&addr).unwrap();
    assert_eq!(net.request("flush").unwrap(), "ok flushed");
    let dict = Dict::from_bytes(&server.engine().dict_bytes()).unwrap();
    let mut reader = server.engine().reader();
    let keys: Vec<(String, NodeId)> = (0..dict.slot_count() as u32)
        .filter_map(|i| dict.key(NodeId(i)).map(|k| (k.to_owned(), NodeId(i))))
        .collect();
    assert!(keys.len() > nodes, "churn added nodes");
    for (ka, &(ref a, ia)) in keys.iter().enumerate().step_by(3) {
        for (kb, &(ref b, ib)) in keys.iter().enumerate().step_by(4) {
            if (ka + kb) % 2 == 0 {
                continue;
            }
            assert_eq!(
                net.reaches(a, b).unwrap(),
                Ok(reader.reaches(ia, ib)),
                "network reaches({a}, {b}) diverged from the snapshot reader"
            );
        }
    }
    // Successor sets too: network keys == in-process ids mapped by name.
    for &(ref k, id) in keys.iter().step_by(5) {
        let resp = net.request(&format!("successors {k}")).unwrap();
        let mut want: Vec<&str> =
            reader.successors(id).iter().filter_map(|&v| dict.key(v)).collect();
        want.sort_unstable();
        let got: Vec<&str> = resp.strip_prefix("ok").unwrap().split_whitespace().collect();
        assert_eq!(got, want, "successors({k}) diverged");
    }

    assert_eq!(server.caught_panics(), 0);
    let stats = server.engine().flush();
    assert_eq!(stats.skipped, 0, "shard writers never skip front-validated ops");
    assert_eq!(stats.audit_violation, None);
    server.stop().expect("accept loop panicked");
}

#[test]
fn shutdown_verb_closes_writes_but_not_reads() {
    let server = start_server(8, 3, 1);
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.request("add-node extra n0").unwrap(), "ok added");
    assert_eq!(c.request("shutdown").unwrap(), "ok bye");
    // Writes now answer `err closed`; reads still serve off the final
    // published snapshots, the admitted write included.
    assert!(c.request("add-edge n0 n1").unwrap().starts_with("err closed"));
    assert_eq!(c.reaches("n0", "extra").unwrap(), Ok(true));
    server.stop().expect("accept loop panicked");
}

#[test]
fn dict_codec_survives_its_own_mutation_campaign() {
    // The Dict section gets the same treatment as the closure codec: a
    // mutation campaign (bit flips, truncation, length sabotage, half with
    // re-signed trailers) must never panic the decoder.
    let mut d = Dict::with_default_keys(64);
    for i in 0..16u32 {
        d.unbind(NodeId(i * 3));
    }
    for i in 0..8u32 {
        d.bind(NodeId(i * 3), &format!("re-{i}")).unwrap();
    }
    let base = d.to_bytes();
    let report = tc_fuzz::campaign(&base, 128, 0xD1C7, |bytes| match Dict::from_bytes(bytes) {
        Err(_) => tc_fuzz::CaseOutcome::Rejected,
        Ok(back) => {
            // Semantic check: a decoded dict re-serializes stably and its
            // index agrees with its slots.
            let stable = back.to_bytes() == bytes[..];
            let consistent = (0..back.slot_count() as u32)
                .filter_map(|i| back.key(NodeId(i)).map(|k| (i, k.to_owned())))
                .all(|(i, k)| back.resolve(&k) == Some(NodeId(i)));
            if stable && consistent {
                tc_fuzz::CaseOutcome::OkClean
            } else {
                tc_fuzz::CaseOutcome::OkCorrupt
            }
        }
    });
    assert_eq!(report.cases, 128);
    assert_eq!(report.panics, 0, "dict decoder panicked; seeds {:?}", report.panic_seeds);
    assert!(report.rejected > 0);
}
