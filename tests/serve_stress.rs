//! Snapshot-consistency stress test for the concurrent serving layer.
//!
//! For each seed, a tc-fuzz-generated op trace is replayed through a
//! [`ClosureService`] while reader threads concurrently pin snapshots and
//! record the answers they observe. The service promises *prefix
//! consistency*: every published snapshot corresponds to the state after
//! applying exactly the first `applied_seq` submitted ops (with the
//! service's deterministic skip-on-error rules). After the run, every
//! recorded observation is checked against a DFS oracle of the relation at
//! that exact prefix — any answer that matches no prefix is a violation.
//!
//! The per-batch structural audit is on throughout ([`ServiceConfig::audit`]);
//! a single audit violation across all seeds fails the test.
//!
//! Reader count: `TC_SERVE_READERS`, else `RUST_TEST_THREADS`, else 4 —
//! CI runs this with elevated thread counts.

use std::sync::atomic::{AtomicBool, Ordering};

use tc_core::serve::{ClosureService, ServiceConfig, ServiceOp, ServiceSnapshot};
use tc_core::{ClosureConfig, CompressedClosure};
use tc_fuzz::{generate, GenConfig, Op};
use tc_graph::{traverse, DiGraph, NodeId};

const SEEDS: u64 = 8;
const OPS_PER_SEED: usize = 240;

fn reader_threads() -> usize {
    for var in ["TC_SERVE_READERS", "RUST_TEST_THREADS"] {
        if let Some(n) = std::env::var(var).ok().and_then(|v| v.parse::<usize>().ok()) {
            if n >= 1 {
                return n;
            }
        }
    }
    4
}

/// Maps a fuzz op to its serving-layer equivalent. Freeze/thaw and
/// thread-count ops have no service analogue (the service owns its planes
/// and its thread); service ops never appear (the generator knob is off).
fn to_service(op: &Op) -> Option<ServiceOp> {
    match op {
        Op::AddNode { parents } => Some(ServiceOp::AddNode {
            parents: parents.iter().map(|&p| NodeId(p)).collect(),
        }),
        Op::AddEdge { src, dst } => {
            Some(ServiceOp::AddEdge { src: NodeId(*src), dst: NodeId(*dst) })
        }
        Op::RemoveEdge { src, dst } => {
            Some(ServiceOp::RemoveEdge { src: NodeId(*src), dst: NodeId(*dst) })
        }
        Op::RemoveNode { node } => Some(ServiceOp::RemoveNode { node: NodeId(*node) }),
        Op::Refine { child } => Some(ServiceOp::Refine { child: NodeId(*child) }),
        Op::Relabel => Some(ServiceOp::Relabel),
        Op::Rebuild => Some(ServiceOp::Rebuild),
        Op::Freeze | Op::Thaw | Op::SetThreads { .. } => None,
        Op::ServicePublish | Op::ServiceQuery | Op::PagedProbe => None,
    }
}

/// Replays one op on the oracle closure with exactly the service writer's
/// semantics: rejected ops are skipped, `Refine` reads the predecessor
/// list at apply time.
fn replay(oracle: &mut CompressedClosure, op: &ServiceOp) {
    let _ = match op {
        ServiceOp::AddNode { parents } => oracle.add_node_with_parents(parents).map(|_| ()),
        ServiceOp::AddEdge { src, dst } => oracle.add_edge(*src, *dst).map(|_| ()),
        ServiceOp::RemoveEdge { src, dst } => oracle.remove_edge(*src, *dst),
        ServiceOp::RemoveNode { node } => oracle.remove_node(*node),
        ServiceOp::Refine { child } => {
            if child.index() >= oracle.node_count() {
                Ok(())
            } else {
                let parents = oracle.graph().predecessors(*child).to_vec();
                oracle.refine_insert(*child, &parents).map(|_| ())
            }
        }
        ServiceOp::Relabel => {
            oracle.relabel();
            Ok(())
        }
        ServiceOp::Rebuild => {
            oracle.rebuild();
            Ok(())
        }
    };
}

/// One recorded reader observation: the prefix the snapshot claimed to
/// reflect plus the answers read off it.
struct Observation {
    applied_seq: u64,
    nodes: usize,
    /// Sampled `(src, dst, answer)` point probes.
    probes: Vec<(u32, u32, bool)>,
    /// `(node, successors-sorted-by-id)` decodes.
    successor_sets: Vec<(u32, Vec<u32>)>,
    /// `(node, predecessors-sorted-by-id)` decodes.
    predecessor_sets: Vec<(u32, Vec<u32>)>,
}

fn observe(snap: &ServiceSnapshot, salt: u64) -> Observation {
    let n = snap.node_count();
    let mut probes = Vec::new();
    let mut successor_sets = Vec::new();
    let mut predecessor_sets = Vec::new();
    if n > 0 {
        for k in 0..32u64 {
            let h = (k + salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let s = ((h >> 32) as usize % n) as u32;
            let d = ((h >> 13) as usize % n) as u32;
            probes.push((s, d, snap.reaches(NodeId(s), NodeId(d))));
        }
        for k in 0..3u64 {
            let v = (((k + salt).wrapping_mul(0xD6E8_FEB8_6659_FD93) >> 32) as usize % n) as u32;
            let mut succ: Vec<u32> = snap.successors(NodeId(v)).iter().map(|u| u.0).collect();
            succ.sort_unstable();
            successor_sets.push((v, succ));
            let preds: Vec<u32> = snap.predecessors(NodeId(v)).iter().map(|u| u.0).collect();
            predecessor_sets.push((v, preds));
        }
    }
    Observation {
        applied_seq: snap.applied_seq(),
        nodes: n,
        probes,
        successor_sets,
        predecessor_sets,
    }
}

fn check_observations(
    seed: u64,
    config: ClosureConfig,
    ops: &[ServiceOp],
    mut observations: Vec<Observation>,
) {
    observations.sort_by_key(|o| o.applied_seq);
    let mut oracle = config.build(&DiGraph::new()).expect("empty graph is acyclic");
    let mut replayed = 0usize;
    let mut rows: Option<Vec<tc_graph::BitSet>> = None;
    let mut rows_at = u64::MAX;
    for obs in &observations {
        let prefix = obs.applied_seq as usize;
        assert!(
            prefix <= ops.len(),
            "seed {seed}: snapshot claims {prefix} ops of a {}-op submission",
            ops.len()
        );
        while replayed < prefix {
            replay(&mut oracle, &ops[replayed]);
            replayed += 1;
        }
        if rows_at != obs.applied_seq {
            rows = Some(traverse::closure_rows(oracle.graph()));
            rows_at = obs.applied_seq;
        }
        let rows = rows.as_ref().expect("rows computed above");
        assert_eq!(
            obs.nodes,
            oracle.node_count(),
            "seed {seed} prefix {prefix}: snapshot node count diverges from the replayed prefix"
        );
        for &(s, d, got) in &obs.probes {
            let want = rows[s as usize].contains(d as usize);
            assert_eq!(
                got, want,
                "seed {seed} prefix {prefix}: observed reaches({s},{d}) = {got}, oracle says {want}"
            );
        }
        for (v, got) in &obs.successor_sets {
            let want: Vec<u32> = rows[*v as usize].iter().map(|u| u as u32).collect();
            assert_eq!(
                got, &want,
                "seed {seed} prefix {prefix}: observed successors({v}) diverge"
            );
        }
        for (v, got) in &obs.predecessor_sets {
            let want: Vec<u32> = (0..obs.nodes as u32)
                .filter(|&u| rows[u as usize].contains(*v as usize))
                .collect();
            assert_eq!(
                got, &want,
                "seed {seed} prefix {prefix}: observed predecessors({v}) diverge"
            );
        }
    }
}

fn stress_one_seed(seed: u64, readers: usize) {
    let fuzz_cfg = GenConfig {
        ops: OPS_PER_SEED,
        seed,
        // Odd seeds run deletion-heavy mixed churn, so the scoped deletion
        // recompute serves live readers as often as insertion does.
        delete_bias: seed % 2 == 1,
        config: tc_fuzz::FuzzConfig { gap: 64, reserve: 4, ..tc_fuzz::FuzzConfig::default() },
        ..GenConfig::default()
    };
    let ops: Vec<ServiceOp> = generate(&fuzz_cfg).ops.iter().filter_map(to_service).collect();
    let config = ClosureConfig::new().gap(64).reserve(4);
    let closure = config.build(&DiGraph::new()).expect("empty graph is acyclic");
    // Small batches force many publish boundaries per trace.
    let service = ClosureService::start(closure, ServiceConfig::new().batch_max(7).audit(true));

    let done = AtomicBool::new(false);
    let observations = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let mut reader = service.reader();
                let done = &done;
                scope.spawn(move || {
                    let mut obs = Vec::new();
                    let mut salt = (r as u64) << 32;
                    while !done.load(Ordering::Relaxed) {
                        let snap = reader.snapshot();
                        obs.push(observe(&snap, salt));
                        salt += 1;
                        std::thread::yield_now();
                    }
                    // One final look at the fully-applied state.
                    obs.push(observe(&reader.snapshot(), salt));
                    obs
                })
            })
            .collect();

        // Feed the trace in dribbles so readers see many distinct prefixes.
        for chunk in ops.chunks(5) {
            service.submit_batch(chunk.to_vec()).expect("service closed mid-stress");
            std::thread::yield_now();
        }
        let stats = service.flush();
        done.store(true, Ordering::Relaxed);
        assert_eq!(
            stats.consumed,
            ops.len() as u64,
            "seed {seed}: writer must consume the whole submission"
        );
        assert_eq!(
            stats.audit_violation, None,
            "seed {seed}: structural audit failed mid-serve"
        );
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader panicked"))
            .collect::<Vec<Observation>>()
    });

    let (stats, backend) = service.shutdown();
    assert_eq!(stats.applied + stats.skipped, stats.consumed);
    let closure = backend.into_single().expect("started single");
    closure.verify().expect("final closure verifies");

    // Sanity: readers must have caught more than just the initial and final
    // snapshots, or the test is not exercising concurrency at all.
    let distinct: std::collections::BTreeSet<u64> =
        observations.iter().map(|o| o.applied_seq).collect();
    assert!(
        distinct.len() >= 2,
        "seed {seed}: readers observed only {distinct:?} prefixes"
    );

    check_observations(seed, config, &ops, observations);
}

#[test]
fn snapshot_readers_only_ever_see_submission_prefixes() {
    let readers = reader_threads();
    for seed in 0..SEEDS {
        stress_one_seed(seed, readers);
    }
}
