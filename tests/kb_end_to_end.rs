//! End-to-end knowledge-base scenario: grow a large IS-A hierarchy the way
//! §2.1 describes (a parts/concepts space managed as a database), exercise
//! subsumption, classification, inheritance and lattice operations together,
//! and check the closure-backed answers against definition-level ground
//! truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_kb::{lattice, Classifier, DefinedConcept, Inheritance, PropertyLookup, Taxonomy};

#[test]
fn large_taxonomy_grows_and_answers_consistently() {
    let mut t = Taxonomy::new();
    t.add_root("thing").unwrap();

    // 3 levels of 8 children each, with every 5th concept multiply
    // inheriting from its left neighbor: 1 + 8 + 64 + 512 concepts.
    let mut layer: Vec<String> = vec!["thing".to_string()];
    let mut counter = 0usize;
    for _ in 0..3 {
        let mut next: Vec<String> = Vec::new();
        for parent in &layer {
            for _ in 0..8 {
                let name = format!("c{counter}");
                counter += 1;
                let mut parents: Vec<&str> = vec![parent.as_str()];
                let prev = next.last().cloned();
                if counter % 5 == 0 {
                    if let Some(prev) = prev.as_deref() {
                        parents.push(prev);
                    }
                }
                t.add_concept(&name, &parents).unwrap();
                next.push(name);
            }
        }
        layer = next;
    }
    assert_eq!(t.len(), 1 + 8 + 64 + 512);

    // The root subsumes everything.
    assert_eq!(t.descendants("thing").unwrap().len(), t.len() - 1);
    // Spot-check antisymmetry on a deep pair.
    assert!(t.subsumes("c0", "c72").unwrap() != t.subsumes("c72", "c0").unwrap()
        || !t.subsumes("c0", "c72").unwrap());
    t.verify().unwrap();

    // Storage sanity: the hierarchy compresses to O(n) intervals (§2.1's
    // whole point — IS-A hierarchies are benign, nearly tree-like).
    let stats = t.closure().stats();
    assert!(
        stats.total_intervals() < 2 * t.len(),
        "near-tree hierarchy should stay near one interval per concept: {stats}"
    );
}

#[test]
fn classifier_and_taxonomy_stay_synchronized_under_random_growth() {
    let mut rng = StdRng::seed_from_u64(99);
    let features = ["a", "b", "c", "d", "e", "f", "g"];
    let mut classifier = Classifier::new();
    let mut defs: Vec<DefinedConcept> = Vec::new();
    for i in 0..60 {
        let set: Vec<&str> = features
            .iter()
            .copied()
            .filter(|_| rng.random_bool(0.35))
            .collect();
        let def = DefinedConcept::new(&format!("k{i}"), &set);
        defs.push(def.clone());
        classifier.classify(def).unwrap();
    }
    classifier.verify().unwrap();

    // Cached subsumption must equal definitional subsumption (up to
    // equivalence direction) for every pair.
    for a in &defs {
        for b in &defs {
            if a.subsumes(b) && !b.subsumes(a) {
                assert!(
                    classifier.subsumes(&a.name, &b.name).unwrap(),
                    "{} should subsume {}",
                    a.name,
                    b.name
                );
            }
        }
    }
}

#[test]
fn refinement_and_inheritance_interact_correctly() {
    let mut t = Taxonomy::new();
    t.add_root("vehicle").unwrap();
    t.add_concept("car", &["vehicle"]).unwrap();
    t.add_concept("sports-car", &["car"]).unwrap();

    let mut props = Inheritance::new();
    props.set(&t, "vehicle", "wheels", "unknown").unwrap();
    props.set(&t, "car", "wheels", "4").unwrap();

    // Refine: interpose "motor-vehicle" between vehicle and car.
    t.refine("motor-vehicle", "car").unwrap();
    props.set(&t, "motor-vehicle", "engine", "yes").unwrap();

    // sports-car inherits through the refined chain.
    assert!(matches!(
        props.effective(&t, "sports-car", "wheels").unwrap(),
        PropertyLookup::Value { value, .. } if value == "4"
    ));
    assert!(matches!(
        props.effective(&t, "sports-car", "engine").unwrap(),
        PropertyLookup::Value { value, .. } if value == "yes"
    ));
    // But the refinement node itself does not see car's local value.
    assert!(matches!(
        props.effective(&t, "motor-vehicle", "wheels").unwrap(),
        PropertyLookup::Value { value, .. } if value == "unknown"
    ));
    t.verify().unwrap();
}

#[test]
fn lattice_operations_on_a_refined_hierarchy() {
    let mut t = Taxonomy::new();
    t.add_root("top").unwrap();
    t.add_concept("metal", &["top"]).unwrap();
    t.add_concept("conductor", &["top"]).unwrap();
    t.add_concept("copper", &["metal", "conductor"]).unwrap();
    t.add_concept("silver", &["metal", "conductor"]).unwrap();
    t.add_concept("wood", &["top"]).unwrap();

    let glb = lattice::greatest_common_subsumees(&t, "metal", "conductor").unwrap();
    let mut names: Vec<&str> = glb.iter().map(|&c| t.name(c)).collect();
    names.sort_unstable();
    assert_eq!(names, vec!["copper", "silver"]);
    assert!(lattice::disjoint(&t, "wood", "metal").unwrap());

    // Refinement interposes "noble-metal" *above* copper (between copper
    // and its parents), so it takes copper's place as a most general common
    // subsumee of metal and conductor.
    t.refine("noble-metal", "copper").unwrap();
    let glb2 = lattice::greatest_common_subsumees(&t, "metal", "conductor").unwrap();
    let mut names2: Vec<&str> = glb2.iter().map(|&c| t.name(c)).collect();
    names2.sort_unstable();
    assert_eq!(names2, vec!["noble-metal", "silver"]);
    assert!(t.subsumes("metal", "noble-metal").unwrap());
    assert!(t.subsumes("noble-metal", "copper").unwrap());
    t.verify().unwrap();
}

#[test]
fn deletion_semantics_nodes_are_ignored_not_restructured() {
    // §4.2: "Deletion has special properties in AI concept hierarchies —
    // nodes are 'deleted' to be ignored, but the subset relationships
    // between remaining nodes is unchanged, and no update is required to
    // the compressed closure." We model this by simply not querying the
    // ignored concept: everything else is untouched.
    let mut t = Taxonomy::new();
    t.add_root("a").unwrap();
    t.add_concept("b", &["a"]).unwrap();
    t.add_concept("c", &["b"]).unwrap();
    let intervals_before = t.closure().total_intervals();
    // Ignore "b": relationships among the rest are unchanged, and the
    // closure was not touched at all.
    assert!(t.subsumes("a", "c").unwrap());
    assert_eq!(t.closure().total_intervals(), intervals_before);
}
