//! Relation-layer integration: the materialized closure view must stay
//! consistent with a from-scratch recomputation of the base relation's
//! closure under arbitrary tuple churn, and the relational operators must
//! agree with the view.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_relation::{compose, inverse, select, union, BinaryRelation, TcView};

/// Naive closure of a relation via compose-until-fixpoint (the iteration
/// materialization replaces).
fn naive_closure(r: &BinaryRelation) -> BinaryRelation {
    let mut closure = r.clone();
    loop {
        let next = union(&closure, &compose(&closure, r));
        if next == closure {
            return closure;
        }
        closure = next;
    }
}

#[test]
fn view_matches_naive_fixpoint_under_churn() {
    let mut rng = StdRng::seed_from_u64(13);
    let names: Vec<String> = (0..12).map(|i| format!("n{i}")).collect();
    let mut view = TcView::new();

    for step in 0..150 {
        let a = &names[rng.random_range(0..names.len())];
        let b = &names[rng.random_range(0..names.len())];
        if rng.random_bool(0.7) {
            let _ = view.insert(a, b); // cycle rejections fine
        } else {
            let _ = view.remove(a, b);
        }

        if step % 25 == 24 {
            let fixpoint = naive_closure(view.base());
            // Every non-reflexive pair the view claims must be in the
            // fixpoint and vice versa.
            for (sa, na) in view.symbols().iter() {
                for (sb, nb) in view.symbols().iter() {
                    if sa == sb {
                        continue;
                    }
                    // Self-tuples in the base make naive fixpoint contain
                    // (x,x) pairs; view is reflexive anyway, skip them.
                    let expect = fixpoint.contains(sa, sb);
                    let got = view.reaches(na, nb).unwrap();
                    assert_eq!(got, expect, "step {step}: ({na},{nb})");
                }
            }
        }
    }
    view.verify().unwrap();
}

#[test]
fn algebra_and_view_agree_on_ancestors() {
    let mut view = TcView::new();
    for (a, b) in [("a", "b"), ("b", "c"), ("a", "d"), ("d", "c"), ("c", "e")] {
        view.insert(a, b).unwrap();
    }
    // Ancestors of e via the view == sources reaching e via inverted naive
    // closure.
    let closure = naive_closure(view.base());
    let inv = inverse(&closure);
    let e = view.symbols().lookup("e").unwrap();
    let mut from_algebra: Vec<&str> = inv
        .with_source(e)
        .map(|s| {
            view.symbols()
                .iter()
                .find(|(sym, _)| *sym == s)
                .map(|(_, n)| n)
                .unwrap()
        })
        .collect();
    from_algebra.sort_unstable();
    let mut from_view = view.ancestors("e").unwrap();
    from_view.sort_unstable();
    assert_eq!(from_algebra, from_view);
}

#[test]
fn selection_composes_with_materialization() {
    let mut view = TcView::new();
    for (a, b) in [("x", "y"), ("y", "z"), ("p", "q")] {
        view.insert(a, b).unwrap();
    }
    let x = view.symbols().lookup("x").unwrap();
    let only_x = select(view.base(), |s, _| s == x);
    assert_eq!(only_x.len(), 1);
    // Materializing the selected sub-relation gives a sub-closure.
    let sub_closure = naive_closure(&only_x);
    for (s, d) in sub_closure.iter() {
        let (sn, dn) = (
            view.symbols().name(s).to_string(),
            view.symbols().name(d).to_string(),
        );
        assert!(view.reaches(&sn, &dn).unwrap());
    }
}

#[test]
fn view_scales_to_thousands_of_tuples() {
    // A deep catalog: 2000 tuples forming a layered hierarchy, inserted one
    // at a time through the incremental path.
    let mut view = TcView::new();
    for layer in 0..10 {
        for i in 0..200 {
            let parent = format!("L{layer}-{}", i % 20);
            let child = format!("L{}-{i}", layer + 1);
            view.insert(&parent, &child).unwrap();
        }
    }
    assert!(view.reaches("L0-0", "L10-0").unwrap());
    assert!(!view.reaches("L10-0", "L0-0").unwrap());
    let stats = view.closure().stats();
    assert!(stats.closure_size > stats.compressed_units(), "{stats}");
}
