//! Replays of shrunk fuzzer reproducers, checked in as regression tests.
//!
//! Each trace below is a minimal op sequence (in the `tc-fuzz` reproducer
//! format) for a §4 update-path bug this suite once caught. Replaying runs
//! the full battery — structural audit after every applied op, DFS-oracle
//! and chain-baseline differentials — so a regression shows up as a typed
//! [`tc_fuzz::Violation`], not a mystery panic.
//!
//! To minimize a new failure into this format:
//! `interval-tc fuzz --ops 2000 --seed <S> --shrink --out repro.trace`.

use tc_fuzz::{run_trace_catching, shrink, CheckOptions, OpTrace};

fn replay(name: &str, text: &str) {
    let trace = OpTrace::parse(text).unwrap_or_else(|e| panic!("{name}: bad trace: {e}"));
    let report = run_trace_catching(&trace, &CheckOptions::default())
        .unwrap_or_else(|v| panic!("{name}: regression: {v}"));
    assert!(
        report.applied > 0,
        "{name}: reproducer applied nothing — trace no longer exercises the path"
    );
}

/// `gap(1)` (the paper's contiguous §3 numbering) leaves no room between a
/// root's interval low and its postorder number. Adding a child then found
/// no midpoint, relabeled (with the same exhausted gap), and panicked at
/// the `debug_assert!(start < hi)` in `insertion_region` — an infinite
/// relabel loop in release builds. Two ops reproduce it; the fix escalates
/// the gap during the retry loop.
#[test]
fn gap_one_child_insertion() {
    replay(
        "gap_one_child_insertion",
        "# tc-fuzz trace v1\n\
         gap 1\n\
         add-node\n\
         add-node 0\n",
    );
}

/// Same exhaustion, driven deeper: chained children under `gap 1` force an
/// escalation on nearly every insertion, and interleaved relabels must keep
/// replenished reserve tails consistent with the escalated gap.
#[test]
fn gap_one_chained_churn() {
    replay(
        "gap_one_chained_churn",
        "# tc-fuzz trace v1\n\
         gap 1\n\
         add-node\n\
         add-node 0\n\
         add-node 1\n\
         relabel\n\
         add-node 2\n\
         add-node 3\n\
         add-node 0 4\n",
    );
}

/// `add_node_with_parents` deduplicated its parent list with `Vec::dedup`,
/// which only strips *adjacent* duplicates: `[0, 1, 0]` leaked the repeated
/// parent into the non-tree-arc loop. The replay checks the decoded closure
/// and the base relation stay exact under non-adjacent duplicates.
#[test]
fn nonadjacent_duplicate_parents() {
    replay(
        "nonadjacent_duplicate_parents",
        "# tc-fuzz trace v1\n\
         add-node\n\
         add-node\n\
         add-node 0 1 0\n\
         add-node 2 0 2 1 2\n",
    );
}

/// Tombstone bookkeeping under tree-arc deletion: removing a tree arc
/// relocates the subtree and tombstones its old numbers; the audit's
/// `total − live == tombstones` identity and the reserve-tail freedom check
/// must hold through relocation, relabel (which drains tombstones) and a
/// final rebuild.
#[test]
fn tombstone_churn_through_relocation() {
    replay(
        "tombstone_churn_through_relocation",
        "# tc-fuzz trace v1\n\
         gap 8\n\
         reserve 2\n\
         add-node\n\
         add-node 0\n\
         add-node 1\n\
         add-node 2\n\
         remove-edge 1 2\n\
         remove-node 1\n\
         refine 3\n\
         relabel\n\
         remove-edge 2 3\n\
         rebuild\n",
    );
}

/// The reserve-tail fast path (`refine`) across thread-count changes: the
/// serial and parallel relabel/rebuild sweeps must produce labelings the
/// audit and the oracle both accept, including refinements placed *between*
/// the switches.
#[test]
fn refine_across_thread_switches() {
    replay(
        "refine_across_thread_switches",
        "# tc-fuzz trace v1\n\
         gap 32\n\
         reserve 3\n\
         add-node\n\
         add-node 0\n\
         refine 1\n\
         set-threads 2\n\
         refine 1\n\
         relabel\n\
         refine 1\n\
         set-threads 1\n\
         rebuild\n\
         refine 1\n",
    );
}

/// Refinement-node straggler under subtree relocation. `refine 3` placed a
/// new node's number in node 3's reserve tail — numerically *inside* the
/// tree intervals of 3's cover ancestors, but with a cover parent chosen
/// from 3's sorted predecessor set (node 0, outside that chain). Removing
/// node 2 relocated the subtree rooted at 3, tombstoning only the cover
/// subtree's numbers: the refinement node stayed live inside the severed
/// ancestors' stale spans, so `successors` of ex-ancestors reported it
/// spuriously. The fix sweeps the relocated span for live non-member
/// numbers and moves those stragglers to fresh point labels.
#[test]
fn refinement_straggler_in_relocated_span() {
    replay(
        "refinement_straggler_in_relocated_span",
        "# tc-fuzz trace v1\n\
         gap 8\n\
         reserve 2\n\
         add-node\n\
         add-node\n\
         add-node 1\n\
         add-node 2 0\n\
         refine 3\n\
         remove-node 2\n",
    );
}

/// Same shape, severed by a tree-arc removal instead of a node removal:
/// `remove-edge 1 2` detaches and relocates 2's subtree while the
/// refinement node's number still sits in the vacated span.
#[test]
fn refinement_straggler_after_tree_arc_removal() {
    replay(
        "refinement_straggler_after_tree_arc_removal",
        "# tc-fuzz trace v1\n\
         gap 8\n\
         reserve 2\n\
         add-node\n\
         add-node\n\
         add-node 1\n\
         add-node 2 0\n\
         refine 3\n\
         remove-edge 1 2\n",
    );
}

/// Removing a *non-tree* arc into a refinement node. Node 3 refines node 2
/// (predecessors 0 and 1, sorted: cover parent 0, tree parent of 2 is 1);
/// its number comes from 2's reserve tail, inside node 1's tree interval.
/// Coverage of a refinement node by span inclusion is justified only by
/// the parent arcs present at refinement time — deleting `1 -> 3` cannot
/// shrink 1's tree interval, so the closure kept reporting `1 -> 3` after
/// the arc (and every path) was gone. The fix relocates a point-labeled
/// destination out of every span before the non-tree recompute, making its
/// coverage purely arc-derived.
#[test]
fn nontree_arc_removal_into_refinement_node() {
    replay(
        "nontree_arc_removal_into_refinement_node",
        "# tc-fuzz trace v1\n\
         gap 8\n\
         reserve 2\n\
         add-node\n\
         add-node\n\
         add-node 1 0\n\
         refine 2\n\
         remove-edge 1 3\n",
    );
}

/// End-to-end sanity of the shrinking pipeline itself: a trace that fails
/// before the first op (invalid gap/reserve pairing) must shrink to the
/// empty op list, and the shrunk trace must serialize, reparse and fail
/// identically — the loop a future reproducer will travel before landing
/// in this file.
#[test]
fn shrinker_roundtrips_failing_traces() {
    let failing = OpTrace::parse(
        "# tc-fuzz trace v1\n\
         gap 4\n\
         reserve 2\n\
         add-node\n\
         add-node 0\n\
         relabel\n",
    )
    .unwrap();
    let opts = CheckOptions::default();
    let shrunk = shrink(&failing, &opts);
    let violation = shrunk.violation.expect("invalid config must fail");
    assert!(shrunk.trace.ops.is_empty(), "kept {:?}", shrunk.trace.ops);
    let reparsed = OpTrace::parse(&shrunk.trace.to_text()).unwrap();
    let again = run_trace_catching(&reparsed, &opts).unwrap_err();
    assert_eq!(again.kind, violation.kind);
}
