//! Reproductions of the paper's worked figures as executable assertions:
//! Fig 3.1 (tree labeling), Fig 3.2/3.3 (DAG labeling), Fig 3.6/3.7 (worst
//! case and hub rewrite), Fig 3.8 (order dependence of merging), and
//! Fig 4.1/4.2 (gapped numbering and incremental updates).

use tc_core::{ClosureConfig, CompressedClosure, TreeCover};
use tc_graph::{generators, DiGraph, NodeId};
use tc_interval::Interval;

/// Fig 3.1 — §3.1's tree labeling: postorder numbers and the index = lowest
/// postorder number among descendants; "a compression scheme for trees that
/// requires O(n) storage … and can answer reachability queries with only one
/// range comparison" (Lemma 1).
#[test]
fn fig_3_1_tree_labeling() {
    // A three-level tree.
    let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
    let c = ClosureConfig::new().gap(1).build(&g).unwrap();

    // Postorder: 3,4,1,5,2,0 -> 1..=6.
    assert_eq!(c.post_number(NodeId(3)), 1);
    assert_eq!(c.post_number(NodeId(4)), 2);
    assert_eq!(c.post_number(NodeId(1)), 3);
    assert_eq!(c.post_number(NodeId(5)), 4);
    assert_eq!(c.post_number(NodeId(2)), 5);
    assert_eq!(c.post_number(NodeId(0)), 6);

    // Index = lowest postorder among descendants (leaf: own number).
    assert_eq!(c.tree_interval(NodeId(3)), Interval::new(1, 1));
    assert_eq!(c.tree_interval(NodeId(1)), Interval::new(1, 3));
    assert_eq!(c.tree_interval(NodeId(2)), Interval::new(4, 5));
    assert_eq!(c.tree_interval(NodeId(0)), Interval::new(1, 6));

    // O(n) storage: exactly one interval per node.
    assert_eq!(c.total_intervals(), 6);

    // Lemma 1: there is a path a ->* b iff low(a) <= post(b) <= post(a).
    for a in g.nodes() {
        let iv = c.tree_interval(a);
        for b in g.nodes() {
            let post_b = c.post_number(b);
            assert_eq!(
                iv.contains(post_b),
                tc_graph::traverse::reaches(&g, a, b),
                "Lemma 1 violated for ({a:?},{b:?})"
            );
        }
    }
}

/// Fig 3.2/3.3 — the DAG scheme: tree intervals from a tree cover, plus
/// inherited non-tree intervals with subsumption discard.
#[test]
fn fig_3_2_dag_labeling() {
    // A diamond with an extra sink: tree cover keeps one parent per node;
    // the other arcs become non-tree.
    let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (2, 4)]);
    let c = ClosureConfig::new().gap(1).build(&g).unwrap();

    // Node 3's tree parent is 1 (tie-break to smaller id) so node 2 carries
    // a non-tree interval for 3's subtree.
    assert_eq!(c.cover().parent(NodeId(3)), Some(NodeId(1)));
    assert_eq!(c.intervals(NodeId(2)).count(), 2);
    // Node 0 reaches everything through its tree interval alone: the
    // inherited copies are all subsumed and discarded.
    assert_eq!(c.intervals(NodeId(0)).count(), 1);
    c.verify().unwrap();
}

/// Fig 3.6/3.7 — the bipartite worst case needs (n+1)²/4 intervals; adding
/// one intermediary node brings it down to O(n).
#[test]
fn fig_3_6_and_3_7_worst_case_and_hub() {
    for m in [3usize, 5, 8] {
        let n = 2 * m + 1;
        let flat = ClosureConfig::new()
            .gap(1)
            .build(&generators::bipartite_worst(m + 1, m))
            .unwrap();
        assert_eq!(
            flat.total_intervals(),
            (n + 1) * (n + 1) / 4,
            "worst-case formula for m={m}"
        );
        let hub = ClosureConfig::new()
            .gap(1)
            .build(&generators::bipartite_with_hub(m + 1, m))
            .unwrap();
        assert_eq!(
            hub.total_intervals(),
            (m + 2) + 2 * (n - m - 1),
            "hub formula for m={m}"
        );
    }
}

/// Fig 3.8 — adjacent-interval merging is order-dependent: two structurally
/// equivalent graphs compress differently depending on sibling order.
#[test]
fn fig_3_8_merging_is_order_dependent() {
    // The paper's shape: a diamond a -> {c, d} -> b where b's tree parent
    // is one of c/d and the other keeps a non-tree arc to b. Whether the
    // inherited interval for b can merge with the non-parent's own interval
    // depends purely on which sibling comes first in postorder.
    //
    // Version 1: siblings ordered (c, d), b under c.
    // Postorder: b=1, c=2, d=3, a=4. Node d holds [3,3] and inherits [1,1]
    // — NOT adjacent, no merge: 5 intervals total.
    let g1 = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)]);
    let cover1 = TreeCover::from_parents(
        &g1,
        vec![None, Some(NodeId(0)), Some(NodeId(0)), Some(NodeId(1))],
    );
    let merged1 = ClosureConfig::new()
        .gap(1)
        .merge_adjacent(true)
        .build_with_cover(&g1, cover1)
        .unwrap();
    merged1.verify().unwrap();
    assert_eq!(merged1.total_intervals(), 5);

    // Version 2: the structurally equivalent graph with c and d
    // interchanged (node ids swapped), b under the second sibling.
    // Postorder: d=1, b=2, c=3, a=4. Node d holds [1,1] and inherits [2,2]
    // — adjacent, they merge into [1,2]: 4 intervals total.
    let g2 = DiGraph::from_edges([(0, 1), (0, 2), (2, 3), (1, 3)]);
    let cover2 = TreeCover::from_parents(
        &g2,
        vec![None, Some(NodeId(0)), Some(NodeId(0)), Some(NodeId(2))],
    );
    let merged2 = ClosureConfig::new()
        .gap(1)
        .merge_adjacent(true)
        .build_with_cover(&g2, cover2)
        .unwrap();
    merged2.verify().unwrap();
    assert_eq!(merged2.total_intervals(), 4);

    // Without merging the two orders are indistinguishable — "Two adjacent
    // intervals count as two intervals for purposes of the following
    // algorithm, lemmas, and theorem."
    let plain1 = ClosureConfig::new().gap(1).build(&g1).unwrap();
    let plain2 = ClosureConfig::new().gap(1).build(&g2).unwrap();
    assert_eq!(plain1.total_intervals(), plain2.total_intervals());
}

/// Fig 4.1 — gapped postorder numbers and midpoint insertion: "the addition
/// of node x and the tree arc (b,x) results in the postorder number 35 and
/// the interval [31,35] … the addition of node y and the tree arc (c,y)
/// results in the postorder number 45 and the interval [41,45]".
#[test]
fn fig_4_1_gapped_insertion() {
    // Tree shaped so b's owned region is (30, 40) and c's is (40, 50):
    // three leaves then b then c: d(10) e(20) f(30) under b(40)? Simpler:
    // build a -> {b, c}, b -> {d, e, f}: postorder d=10 e=20 f=30 b=40 c=50
    // a=60. b owns (30, 40); c owns (40, 50).
    let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (1, 4), (1, 5)]);
    let mut c = ClosureConfig::new().gap(10).build(&g).unwrap();
    assert_eq!(c.post_number(NodeId(1)), 40);
    assert_eq!(c.post_number(NodeId(2)), 50);

    let x = c.add_node_with_parents(&[NodeId(1)]).unwrap();
    assert_eq!(c.post_number(x), 35, "midpoint of b's region (30, 40)");
    assert_eq!(c.tree_interval(x), Interval::new(31, 35));

    let y = c.add_node_with_parents(&[NodeId(2)]).unwrap();
    assert_eq!(c.post_number(y), 45, "midpoint of c's region (40, 50)");
    assert_eq!(c.tree_interval(y), Interval::new(41, 45));

    // "No change is required in any other part of the graph."
    assert_eq!(c.post_number(NodeId(3)), 10);
    assert_eq!(c.tree_interval(NodeId(1)), Interval::new(1, 40));
    c.verify().unwrap();
}

/// Fig 4.2 — a non-tree arc whose propagated interval is subsumed
/// everywhere costs nothing beyond the first node: "[11,20] is subsumed by
/// the interval [1,4] associated with b and hence no new interval is added
/// to b, a or d".
#[test]
fn fig_4_2_subsumption_stops_propagation() {
    // a -> b -> {e, x-to-be}; e -> h. x gets a non-tree arc to h.
    let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 3)]);
    let mut c = ClosureConfig::new().gap(10).build(&g).unwrap();
    let x = c.add_node_with_parents(&[NodeId(1)]).unwrap();

    let before: Vec<usize> = (0..4).map(|i| c.intervals(NodeId(i)).count()).collect();
    c.add_edge(x, NodeId(3)).unwrap();
    // x itself gains h's interval…
    assert!(c.reaches(x, NodeId(3)));
    assert_eq!(c.intervals(x).count(), 2);
    // …but b (=1) and a (=0) already subsumed it via their tree intervals.
    assert_eq!(c.intervals(NodeId(1)).count(), before[1]);
    assert_eq!(c.intervals(NodeId(0)).count(), before[0]);
    c.verify().unwrap();
}

/// §3.3: "of the 495,000 possible arcs in a 1000 node acyclic graph,
/// [most] were already present in the closure" — at high degree the closure
/// saturates and the compressed closure undercuts the *original graph*.
#[test]
fn compressed_closure_beats_original_graph_at_high_degree() {
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 400,
        avg_out_degree: 40.0,
        seed: 2,
    });
    let c = CompressedClosure::build(&g).unwrap();
    let stats = c.stats();
    assert!(
        stats.compressed_units() < stats.graph_arcs,
        "compressed {} >= graph {}",
        stats.compressed_units(),
        stats.graph_arcs
    );
    // And the closure itself is much larger than both.
    assert!(stats.closure_size > 10 * stats.compressed_units());
}
