//! Property-based tests (proptest) for the paper's lemmas and theorems on
//! randomized graph structures.

use proptest::prelude::*;
use tc_baselines::ChainIndex;
use tc_core::bruteforce::exhaustive_min_intervals;
use tc_core::{ClosureConfig, CompressedClosure};
use tc_graph::{topo, DiGraph, NodeId};
use tc_interval::{Interval, IntervalSet};

/// Strategy: an arbitrary DAG as (node count, edge mask bits over the
/// upper-triangular pairs).
fn arb_dag(max_nodes: usize) -> impl Strategy<Value = DiGraph> {
    (2..=max_nodes).prop_flat_map(|n| {
        let bits = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), bits).prop_map(move |edges| {
            let mut g = DiGraph::with_nodes(n);
            let mut bit = 0usize;
            for i in 0..n as u32 {
                for j in (i + 1)..n as u32 {
                    if edges[bit] {
                        g.add_edge(NodeId(i), NodeId(j));
                    }
                    bit += 1;
                }
            }
            g
        })
    })
}

proptest! {
    /// The closure agrees with DFS ground truth on arbitrary DAGs, for all
    /// gaps and with merging on or off.
    #[test]
    fn closure_matches_dfs(g in arb_dag(10), gap in 1u64..64, merge in any::<bool>()) {
        let c = ClosureConfig::new().gap(gap).merge_adjacent(merge).build(&g).unwrap();
        c.verify().unwrap();
    }

    /// Lemma 1: within the tree cover, reachability is exactly tree-interval
    /// containment.
    #[test]
    fn lemma_1_tree_interval_containment(g in arb_dag(10)) {
        let c = ClosureConfig::new().gap(1).build(&g).unwrap();
        // Restrict the graph to tree arcs only.
        let mut tree_only = DiGraph::with_nodes(g.node_count());
        for v in g.nodes() {
            if let Some(p) = c.cover().parent(v) {
                tree_only.add_edge(p, v);
            }
        }
        for a in g.nodes() {
            let iv = c.tree_interval(a);
            for b in g.nodes() {
                prop_assert_eq!(
                    iv.contains(c.post_number(b)),
                    tc_graph::traverse::reaches(&tree_only, a, b)
                );
            }
        }
    }

    /// Lemma 4: the number of non-tree intervals at a node i equals |N_i|,
    /// the set of nodes j reached via at least one non-tree arc with no
    /// tree-path from another member of N_i.
    #[test]
    fn lemma_4_non_tree_interval_count(g in arb_dag(9)) {
        let c = ClosureConfig::new().gap(1).build(&g).unwrap();
        // Paths "containing one or more non-tree arcs": reach j from i in
        // the full graph through a walk that is not all-tree. Compute, per
        // node i, the set of such j, then prune members tree-reachable from
        // other members.
        let n = g.node_count();
        // tree_reach[a][b]: a ->* b via tree arcs only.
        let mut tree_only = DiGraph::with_nodes(n);
        for v in g.nodes() {
            if let Some(p) = c.cover().parent(v) {
                tree_only.add_edge(p, v);
            }
        }
        let tree_reach: Vec<_> = g.nodes().map(|v| tc_graph::traverse::reachable_set(&tree_only, v)).collect();
        let full_reach: Vec<_> = g.nodes().map(|v| tc_graph::traverse::reachable_set(&g, v)).collect();

        for i in g.nodes() {
            // N_i candidates: j reachable from i, not tree-reachable from i
            // ... careful: a path with a non-tree arc may exist even if j is
            // also tree-reachable; but then j's interval is subsumed by i's
            // own tree interval, which Lemma 4's condition (ii) handles with
            // k = i? The lemma's N_i excludes such j because i itself...
            // The operative set: j reached via some non-tree-containing path.
            let mut candidates: Vec<NodeId> = Vec::new();
            for j in g.nodes() {
                if j == i { continue; }
                if !full_reach[i.index()].contains(j.index()) { continue; }
                // Does some path i ->* j use a non-tree arc? True unless the
                // ONLY paths are all-tree; equivalently there is an arc
                // (u, v) on some i-j path that is non-tree. Check: exists
                // non-tree arc (u,v) with i ->* u and v ->* j.
                let via_non_tree = g.edges().any(|(u, v)| {
                    !c.cover().is_tree_arc(u, v)
                        && full_reach[i.index()].contains(u.index())
                        && full_reach[v.index()].contains(j.index())
                });
                if via_non_tree {
                    candidates.push(j);
                }
            }
            // Condition (ii): drop j if some other k in N_i tree-reaches j;
            // also drop j if i itself tree-reaches j (its interval is
            // subsumed by i's own tree interval).
            let surviving: Vec<NodeId> = candidates
                .iter()
                .copied()
                .filter(|&j| !tree_reach[i.index()].contains(j.index()))
                .filter(|&j| {
                    !candidates.iter().any(|&k| k != j && tree_reach[k.index()].contains(j.index()))
                })
                .collect();
            let non_tree_at_i = c.intervals(i).count() - 1;
            prop_assert_eq!(
                non_tree_at_i,
                surviving.len(),
                "Lemma 4 at {:?}: intervals {:?}",
                i,
                c.intervals(i)
            );
        }
    }

    /// Lemma 3: "If an interval [i1,i2] subsumes another interval [j1,j2],
    /// then there is a path from i2 to j2 consisting solely of tree arcs" —
    /// tree-interval subsumption coincides with tree ancestry.
    #[test]
    fn lemma_3_subsumption_is_tree_ancestry(g in arb_dag(10)) {
        let c = ClosureConfig::new().gap(1).build(&g).unwrap();
        for a in g.nodes() {
            for b in g.nodes() {
                let subsumes = c.tree_interval(a).subsumes(c.tree_interval(b));
                prop_assert_eq!(
                    subsumes,
                    c.cover().is_tree_ancestor(a, b),
                    "({:?},{:?})", a, b
                );
            }
        }
    }

    /// Theorem 1: Alg1's interval count equals the brute-force minimum over
    /// all tree covers.
    #[test]
    fn theorem_1_alg1_is_optimal(g in arb_dag(7)) {
        if let Some(brute) = exhaustive_min_intervals(&g, 20_000) {
            let alg1 = CompressedClosure::build(&g).unwrap().total_intervals();
            prop_assert_eq!(alg1, brute.min_intervals);
        }
    }

    /// Theorem 2: tree-cover storage never exceeds the best chain-cover
    /// storage (entries and intervals both cost two numbers each).
    #[test]
    fn theorem_2_tree_beats_chains(g in arb_dag(12)) {
        let tree = ClosureConfig::new().gap(1).build(&g).unwrap();
        let chain = ChainIndex::build_minimum(&g).unwrap();
        prop_assert!(tree.total_intervals() <= chain.entry_count());
    }

    /// Interval-set invariants under arbitrary insertions.
    #[test]
    fn interval_set_invariants(ivs in proptest::collection::vec((0u64..200, 0u64..60), 0..40)) {
        let mut set = IntervalSet::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        for (lo, width) in ivs {
            set.insert(Interval::new(lo, lo + width));
            reference.push((lo, lo + width));
            prop_assert!(set.check_invariants());
        }
        // Coverage must equal the union of all inserted intervals.
        for p in 0..280u64 {
            let expect = reference.iter().any(|&(lo, hi)| lo <= p && p <= hi);
            prop_assert_eq!(set.contains_point(p), expect, "point {}", p);
        }
        // Merging preserves coverage and only shrinks the count.
        let before = set.count();
        set.merge_adjacent();
        prop_assert!(set.count() <= before);
        for p in 0..280u64 {
            let expect = reference.iter().any(|&(lo, hi)| lo <= p && p <= hi);
            prop_assert_eq!(set.contains_point(p), expect, "post-merge point {}", p);
        }
    }

    /// Successor decode round-trips the closure rows exactly.
    #[test]
    fn successors_match_rows(g in arb_dag(10), gap in 1u64..32) {
        let c = ClosureConfig::new().gap(gap).build(&g).unwrap();
        for v in g.nodes() {
            let mut got = c.successors(v);
            got.sort_unstable();
            let mut expect: Vec<NodeId> = tc_graph::traverse::reachable_set(&g, v)
                .iter().map(NodeId::from_index).collect();
            expect.sort_unstable();
            prop_assert_eq!(&got, &expect);
            prop_assert_eq!(c.successor_count(v), expect.len());
        }
    }

    /// Update equivalence: applying a random edge-addition sequence
    /// incrementally matches building the final graph from scratch.
    #[test]
    fn incremental_adds_match_batch_build(
        n in 3usize..10,
        ops in proptest::collection::vec((0u32..10, 0u32..10), 1..25),
        gap in 2u64..32,
    ) {
        let mut g = DiGraph::with_nodes(n);
        let mut c = ClosureConfig::new().gap(gap).build(&g).unwrap();
        for (a, b) in ops {
            let (a, b) = (a % n as u32, b % n as u32);
            if a == b { continue; }
            let (src, dst) = (NodeId(a), NodeId(b));
            if c.reaches(dst, src) {
                continue; // would create a cycle
            }
            c.add_edge(src, dst).unwrap();
            g.add_edge(src, dst);
        }
        let fresh = CompressedClosure::build(&g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(c.reaches(u, v), fresh.reaches(u, v));
            }
        }
    }

    /// Topological sorters agree with each other and with validity.
    #[test]
    fn topo_sorts_are_valid(g in arb_dag(12)) {
        let kahn = topo::topo_sort(&g).unwrap();
        let dfs = topo::topo_sort_dfs(&g).unwrap();
        prop_assert!(topo::is_topo_order(&g, &kahn));
        prop_assert!(topo::is_topo_order(&g, &dfs));
    }

    /// Serialization round-trips arbitrary closures bit-for-bit.
    #[test]
    fn codec_roundtrip(g in arb_dag(10), gap in 2u64..64, reserve in 0u64..4) {
        prop_assume!(gap > 2 * reserve);
        let c = ClosureConfig::new().gap(gap).reserve(reserve).build(&g).unwrap();
        let bytes = c.to_bytes();
        let back = CompressedClosure::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.to_bytes(), bytes);
        back.verify().unwrap();
    }

    /// The pooled-range layout answers identically to the flat layout, and
    /// its accounting identity holds.
    #[test]
    fn pooled_matches_flat(g in arb_dag(10)) {
        let c = ClosureConfig::new().gap(1).build(&g).unwrap();
        let p = tc_core::pooled::PooledClosure::from_closure(&c);
        prop_assert_eq!(p.flat_storage_units(), 2 * c.total_intervals());
        prop_assert_eq!(p.ref_count(), c.total_intervals());
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(p.reaches(u, v), c.reaches(u, v));
            }
        }
    }

    /// The bidirectional closure's predecessor decode equals the forward
    /// closure's predecessor scan.
    #[test]
    fn bidir_predecessors_match_scan(g in arb_dag(10)) {
        let bi = tc_core::bidir::BiClosure::build(&g).unwrap();
        for v in g.nodes() {
            let mut fast = bi.predecessors(v);
            fast.sort_unstable();
            let mut scan = bi.forward().predecessors(v);
            scan.sort_unstable();
            prop_assert_eq!(fast, scan);
        }
        bi.verify().unwrap();
    }

    /// Level-parallel builds are *identical* to serial builds — same tree
    /// cover, same postorder numbers, bit-identical interval sets — on
    /// arbitrary DAGs across the gap/reserve/merge configuration space (see
    /// DESIGN.md, "Parallel construction").
    #[test]
    fn parallel_build_identical_to_serial(
        g in arb_dag(12),
        gap in 2u64..64,
        reserve in 0u64..4,
        merge in any::<bool>(),
        threads in 2usize..6,
    ) {
        prop_assume!(gap > 2 * reserve);
        let config = ClosureConfig::new().gap(gap).reserve(reserve).merge_adjacent(merge);
        let serial = config.threads(1).build(&g).unwrap();
        let par = config.threads(threads).build(&g).unwrap();
        for v in g.nodes() {
            prop_assert_eq!(serial.cover().parent(v), par.cover().parent(v), "parent of {:?}", v);
            prop_assert_eq!(serial.post_number(v), par.post_number(v), "post of {:?}", v);
            prop_assert_eq!(serial.intervals(v), par.intervals(v), "intervals of {:?}", v);
        }
    }

    /// Batch queries agree with pointwise queries over the full node square,
    /// at any thread count.
    #[test]
    fn reaches_batch_matches_pointwise(g in arb_dag(12), threads in 1usize..5) {
        let c = ClosureConfig::new().threads(threads).build(&g).unwrap();
        let pairs: Vec<(NodeId, NodeId)> = g
            .nodes()
            .flat_map(|u| g.nodes().map(move |v| (u, v)))
            .collect();
        let batch = c.reaches_batch(&pairs);
        prop_assert_eq!(batch.len(), pairs.len());
        for (&(u, v), &got) in pairs.iter().zip(&batch) {
            prop_assert_eq!(got, c.reaches(u, v), "batch answer for ({:?},{:?})", u, v);
        }
    }

    /// A frozen query plane answers every query identically to the mutable
    /// closure it was snapshotted from, across the gap/merge configuration
    /// space (dead numbers and merged intervals exercise rank compression).
    #[test]
    fn frozen_plane_matches_mutable(g in arb_dag(10), gap in 1u64..64, merge in any::<bool>()) {
        let mut c = ClosureConfig::new().gap(gap).merge_adjacent(merge).build(&g).unwrap();
        let pairs: Vec<_> = g.nodes().flat_map(|v| g.nodes().map(move |w| (v, w))).collect();
        let mutable: Vec<_> = g
            .nodes()
            .map(|v| (c.successors(v), c.predecessors(v), c.successor_count(v)))
            .collect();
        // The hoisted mutable batch path must agree with per-pair probes.
        let mutable_batch = c.reaches_batch(&pairs);
        for (&(v, w), &got) in pairs.iter().zip(&mutable_batch) {
            prop_assert_eq!(
                got,
                mutable[v.index()].0.contains(&w),
                "mutable reaches_batch({:?},{:?})", v, w
            );
        }
        c.freeze();
        prop_assert!(c.is_frozen());
        c.verify().unwrap();
        for v in g.nodes() {
            let (succ, pred, count) = &mutable[v.index()];
            prop_assert_eq!(&c.successors(v), succ, "successors({:?})", v);
            prop_assert_eq!(&c.predecessors(v), pred, "predecessors({:?})", v);
            prop_assert_eq!(c.successor_count(v), *count, "successor_count({:?})", v);
            for w in g.nodes() {
                prop_assert_eq!(
                    c.reaches(v, w),
                    succ.contains(&w),
                    "frozen reaches({:?},{:?})", v, w
                );
            }
        }
        // Frozen batch answers match the mutable batch bit for bit.
        prop_assert_eq!(c.reaches_batch(&pairs), mutable_batch, "frozen reaches_batch");
    }

    /// Scoped deletion recompute is *identical* to the global sweep — not
    /// just reachability-equivalent, but the same interval sets node for
    /// node — over random DAGs, random deletion sequences (arc and node
    /// removals), serial and parallel, with merging on or off.
    #[test]
    fn scoped_deletes_match_global_sweep(
        g in arb_dag(12),
        dels in proptest::collection::vec((any::<u16>(), 0u32..12, 0u32..12), 1..20),
        gap in 2u64..32,
        merge in any::<bool>(),
        threads in 1usize..4,
    ) {
        let config = ClosureConfig::new().gap(gap).merge_adjacent(merge).threads(threads);
        let mut scoped = config.scoped_deletes(true).build(&g).unwrap();
        let mut global = config.scoped_deletes(false).build(&g).unwrap();
        for (pick, a, b) in dels {
            let n = g.node_count() as u32;
            let (a, b) = (NodeId(a % n), NodeId(b % n));
            if pick % 4 == 0 {
                // Node removal: always applicable (idempotent on isolated
                // nodes); ids stay stable, the node just loses its arcs.
                scoped.remove_node(a).unwrap();
                global.remove_node(a).unwrap();
            } else {
                // Arc removal: steer the random pair onto a real arc of the
                // *current* relation when one exists.
                let (src, dst) = if scoped.graph().has_edge(a, b) {
                    (a, b)
                } else {
                    match scoped.graph().edges().nth(pick as usize % scoped.graph().edge_count().max(1)) {
                        Some(e) => e,
                        None => continue,
                    }
                };
                scoped.remove_edge(src, dst).unwrap();
                global.remove_edge(src, dst).unwrap();
            }
            for v in g.nodes() {
                prop_assert_eq!(
                    scoped.intervals(v),
                    global.intervals(v),
                    "intervals of {:?} diverge after deletions", v
                );
            }
        }
        scoped.verify().unwrap();
        global.verify().unwrap();
    }

    /// `find_path` returns a genuine arc-by-arc witness exactly when
    /// reachability holds.
    #[test]
    fn find_path_is_sound_and_complete(g in arb_dag(10)) {
        let c = CompressedClosure::build(&g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                match c.find_path(u, v) {
                    Some(path) => {
                        prop_assert_eq!(path[0], u);
                        prop_assert_eq!(*path.last().unwrap(), v);
                        prop_assert!(path.windows(2).all(|w| g.has_edge(w[0], w[1])));
                    }
                    None => prop_assert!(!tc_graph::traverse::reaches(&g, u, v)),
                }
            }
        }
    }
}

/// Strategy: a multi-component DAG assembled from 1–3 independent pieces,
/// each an arbitrary upper-triangular DAG — the shape the WCC partitioner
/// splits cleanly, before churn stitches components together.
fn arb_components() -> impl Strategy<Value = DiGraph> {
    proptest::collection::vec(arb_dag(5), 1..=3).prop_map(|parts| {
        let mut g = DiGraph::new();
        for part in parts {
            let base = g.node_count() as u32;
            for _ in 0..part.node_count() {
                g.add_node();
            }
            for (u, v) in part.edges() {
                g.add_edge(NodeId(base + u.0), NodeId(base + v.0));
            }
        }
        g
    })
}

/// Every answer the sharded closure gives — point probes, the batch path,
/// decoded successor and predecessor sets — must equal the DFS closure of
/// `g` (and therefore the unsharded closure, which `verify` pins to the
/// same ground truth elsewhere).
fn assert_sharded_matches(sc: &tc_core::ShardedClosure, flat: &CompressedClosure, g: &DiGraph) {
    let rows = tc_graph::traverse::closure_rows(g);
    let mut pairs = Vec::new();
    for u in g.nodes() {
        for v in g.nodes() {
            pairs.push((u, v));
            prop_assert_eq!(
                sc.reaches(u, v),
                rows[u.index()].contains(v.index()),
                "sharded reaches({u:?},{v:?})"
            );
        }
    }
    prop_assert_eq!(sc.reaches_batch(&pairs), flat.reaches_batch(&pairs));
    for v in g.nodes() {
        let got: Vec<usize> = sc.successors(v).iter().map(|u| u.index()).collect();
        let want: Vec<usize> = rows[v.index()].iter().collect();
        prop_assert_eq!(got, want, "sharded successors({v:?})");
        let got: Vec<usize> = sc.predecessors(v).iter().map(|u| u.index()).collect();
        let want: Vec<usize> =
            (0..g.node_count()).filter(|&u| rows[u].contains(v.index())).collect();
        prop_assert_eq!(got, want, "sharded predecessors({v:?})");
    }
}

proptest! {
    /// The sharded closure is observationally identical to the unsharded
    /// one on random multi-component DAGs, at every shard count.
    #[test]
    fn sharded_closure_matches_unsharded(g in arb_components(), shards in 1usize..5) {
        let flat = CompressedClosure::build(&g).unwrap();
        let sc = tc_core::ShardedClosure::build(ClosureConfig::new(), &g, shards).unwrap();
        sc.audit().unwrap();
        assert_sharded_matches(&sc, &flat, &g);
    }

    /// Equivalence survives update churn that stitches shards together and
    /// tears them apart again: random edge inserts (cross-shard included),
    /// edge deletes, and leaf inserts, applied to both layers in lockstep.
    #[test]
    fn sharded_closure_survives_cross_shard_churn(
        g in arb_components(),
        shards in 2usize..5,
        ops in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..16),
    ) {
        let mut mirror = g.clone();
        let mut flat = CompressedClosure::build(&g).unwrap();
        let mut sc = tc_core::ShardedClosure::build(ClosureConfig::new(), &g, shards).unwrap();
        for (kind, a, b) in ops {
            let n = mirror.node_count() as u32;
            let (u, v) = (NodeId(a % n), NodeId(b % n));
            match kind % 3 {
                0 => {
                    // Insert u -> v unless invalid; rejections must agree.
                    if u == v || mirror.has_edge(u, v)
                        || tc_graph::traverse::reaches(&mirror, v, u)
                    {
                        continue;
                    }
                    flat.add_edge(u, v).unwrap();
                    sc.add_edge(u, v).unwrap();
                    mirror.add_edge(u, v);
                }
                1 => {
                    if !mirror.has_edge(u, v) {
                        continue;
                    }
                    flat.remove_edge(u, v).unwrap();
                    sc.remove_edge(u, v).unwrap();
                    mirror.remove_edge(u, v);
                }
                _ => {
                    // New leaf under two (possibly equal, possibly
                    // cross-shard) parents.
                    let parents = [u, v];
                    let zf = flat.add_node_with_parents(&parents).unwrap();
                    let zs = sc.add_node_with_parents(&parents).unwrap();
                    prop_assert_eq!(zf, zs);
                    let m = mirror.add_node();
                    prop_assert_eq!(m, zs);
                    mirror.add_edge(u, zs);
                    mirror.add_edge(v, zs);
                }
            }
        }
        sc.audit().unwrap();
        assert_sharded_matches(&sc, &flat, &mirror);
    }
}

/// Every answer the out-of-core plane gives — point probes, the batch
/// path, decoded successor and predecessor sets, counts — must be
/// bit-identical to the resident [`tc_core::QueryPlane`] frozen from the
/// same labeling, regardless of how small the buffer pool is.
fn assert_paged_matches(paged: &tc_core::PagedPlane, c: &CompressedClosure) {
    let mut mem = c.clone();
    mem.set_paged_pool(0);
    mem.freeze();
    let plane = mem.plane().expect("resident freeze");
    prop_assert_eq!(paged.node_count(), plane.node_count());
    prop_assert_eq!(paged.total_intervals(), plane.total_intervals());
    let nodes: Vec<NodeId> = (0..c.node_count() as u32).map(NodeId).collect();
    let mut pairs = Vec::new();
    for &u in &nodes {
        prop_assert_eq!(paged.successors(u), plane.successors(u), "successors({:?})", u);
        prop_assert_eq!(paged.predecessors(u), plane.predecessors(u), "predecessors({:?})", u);
        prop_assert_eq!(paged.successor_count(u), plane.successor_count(u));
        for &v in &nodes {
            pairs.push((u, v));
            prop_assert_eq!(paged.reaches(u, v), plane.reaches(u, v), "reaches({:?},{:?})", u, v);
        }
    }
    let want: Vec<bool> = pairs.iter().map(|&(u, v)| plane.reaches(u, v)).collect();
    prop_assert_eq!(paged.reaches_batch(&pairs), want);
    paged.verify_payload().unwrap();
}

proptest! {
    /// The paged plane is observationally identical to the resident plane
    /// on arbitrary DAGs, across gaps, reserves, and buffer-pool sizes —
    /// including 1- and 2-frame pools that force an eviction on nearly
    /// every probe.
    #[test]
    fn paged_plane_matches_resident_plane(
        g in arb_dag(10),
        // Labeling::assign requires gap > 2 * reserve.
        gap in 8u64..64,
        reserve in 0u64..4,
        pool in 1usize..6,
    ) {
        let c = ClosureConfig::new().gap(gap).reserve(reserve).build(&g).unwrap();
        let bytes = c.to_paged_bytes();
        let paged = tc_core::PagedPlane::open_from_bytes(&bytes, pool).unwrap();
        assert_paged_matches(&paged, &c);
    }

    /// Equivalence survives update churn before the freeze: the plane
    /// streamed to disk mid-history answers exactly like a resident freeze
    /// of the same state, tombstones and reserve tails included.
    #[test]
    fn paged_plane_matches_after_churn(
        g in arb_dag(8),
        ops in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..12),
        pool in 1usize..4,
    ) {
        let mut mirror = g.clone();
        let mut c = ClosureConfig::new().reserve(2).build(&g).unwrap();
        for (kind, a, b) in ops {
            let n = mirror.node_count() as u32;
            let (u, v) = (NodeId(a % n), NodeId(b % n));
            match kind % 3 {
                0 => {
                    if u == v || mirror.has_edge(u, v)
                        || tc_graph::traverse::reaches(&mirror, v, u)
                    {
                        continue;
                    }
                    c.add_edge(u, v).unwrap();
                    mirror.add_edge(u, v);
                }
                1 => {
                    if !mirror.has_edge(u, v) {
                        continue;
                    }
                    c.remove_edge(u, v).unwrap();
                    mirror.remove_edge(u, v);
                }
                _ => {
                    let z = c.add_node_with_parents(&[u, v]).unwrap();
                    let m = mirror.add_node();
                    prop_assert_eq!(m, z);
                    mirror.add_edge(u, z);
                    mirror.add_edge(v, z);
                }
            }
        }
        let bytes = c.to_paged_bytes();
        let paged = tc_core::PagedPlane::open_from_bytes(&bytes, pool).unwrap();
        assert_paged_matches(&paged, &c);
    }
}

/// Freezes `c` with the hybrid oracle at `threshold` and checks every
/// query surface — point probes via the batch path, successor decodes and
/// counts, predecessors — against the mutable truth, plus the paged image
/// of the same configuration (HYB1 overlay riding the PLN1 section)
/// through an eviction-heavy 2-frame pool. Exactly the over-threshold rows
/// must have switched representation. Leaves the closure thawed.
fn assert_hybrid_matches(c: &mut CompressedClosure, threshold: usize) {
    let nodes: Vec<NodeId> = (0..c.node_count() as u32).map(NodeId).collect();
    let mutable: Vec<_> = nodes
        .iter()
        .map(|&v| (c.successors(v), c.predecessors(v)))
        .collect();
    let pairs: Vec<_> = nodes
        .iter()
        .flat_map(|&u| nodes.iter().map(move |&v| (u, v)))
        .collect();
    let want: Vec<bool> = pairs
        .iter()
        .map(|&(u, v)| mutable[u.index()].0.contains(&v))
        .collect();
    let over = c
        .merged_interval_counts()
        .iter()
        .filter(|&&k| k > threshold)
        .count();

    c.set_hybrid_threshold(threshold);
    c.freeze();
    c.verify().unwrap();
    let plane = c.plane().expect("just frozen");
    prop_assert_eq!(plane.bitset_rows(), over, "row selection at threshold {}", threshold);
    for (ix, &v) in nodes.iter().enumerate() {
        prop_assert_eq!(&c.successors(v), &mutable[ix].0, "successors({:?})", v);
        prop_assert_eq!(&c.predecessors(v), &mutable[ix].1, "predecessors({:?})", v);
        prop_assert_eq!(c.successor_count(v), mutable[ix].0.len());
    }
    prop_assert_eq!(c.reaches_batch(&pairs), want.clone(), "hybrid reaches_batch");

    let paged = tc_core::PagedPlane::open_from_bytes(&c.to_paged_bytes(), 2).unwrap();
    prop_assert_eq!(paged.reaches_batch(&pairs), want);
    for (ix, &v) in nodes.iter().enumerate() {
        prop_assert_eq!(paged.successors(v), mutable[ix].0.clone(), "paged successors({:?})", v);
        prop_assert_eq!(paged.successor_count(v), mutable[ix].0.len());
    }
    c.thaw();
}

/// Maps a proptest selector onto the three interesting threshold regimes:
/// 0 (every non-trivial row goes bitset), `usize::MAX` (pure interval,
/// the oracle disarmed), or a small mid value that splits the rows.
fn threshold_from(sel: usize) -> usize {
    match sel {
        0 => 0,
        7 => usize::MAX,
        mid => mid,
    }
}

proptest! {
    /// Hybrid == pure-interval == mutable on the dense-layered adversary,
    /// across the whole threshold spectrum.
    #[test]
    fn hybrid_matches_pure_on_dense_layered(
        layers in 1usize..5, width in 1usize..6, degree in 1usize..4,
        seed in any::<u64>(), sel in 0usize..8,
    ) {
        let g = tc_graph::generators::dense_layered(layers, width, degree, seed);
        let mut c = ClosureConfig::new().build(&g).unwrap();
        assert_hybrid_matches(&mut c, threshold_from(sel));
    }

    /// Same equivalence on the high-path-width adversary, whose scattered
    /// singleton intervals hit the bitset builder's worst fill pattern.
    #[test]
    fn hybrid_matches_pure_on_long_path_width(
        chains in 1usize..6, chain_len in 1usize..5, cross in 0usize..12,
        seed in any::<u64>(), sel in 0usize..8,
    ) {
        let g = tc_graph::generators::long_path_width(chains, chain_len, cross, seed);
        let mut c = ClosureConfig::new().build(&g).unwrap();
        assert_hybrid_matches(&mut c, threshold_from(sel));
    }

    /// The random-insertion-order adversary: the same dense-layered arcs
    /// replayed one at a time in seeded random order deny the tree cover
    /// its topological sweep, so labels fragment far past the bulk build.
    /// Every threshold regime must still answer identically (one closure,
    /// refrozen per regime).
    #[test]
    fn hybrid_matches_pure_after_random_order_insertion(
        layers in 1usize..4, width in 1usize..5, degree in 1usize..3,
        seed in any::<u64>(),
    ) {
        let g = tc_graph::generators::dense_layered(layers, width, degree, seed);
        let mut c = ClosureConfig::new()
            .build(&DiGraph::with_nodes(g.node_count()))
            .unwrap();
        for (u, v) in tc_graph::generators::shuffled_edges(&g, seed ^ 1) {
            c.add_edge(u, v).unwrap();
        }
        for threshold in [0, 2, usize::MAX] {
            assert_hybrid_matches(&mut c, threshold);
        }
    }
}

// --------------------------------------------------------------------
// Knowledge-base properties: the taxonomy codec, the subsumption order,
// and the rule engine's incremental maintenance, each against an oracle
// that shares no code with the implementation under test.

/// Concept name at (layer, slot) for the downhill fact generators below.
fn kb_name(layer: usize, slot: usize) -> String {
    format!("l{layer}n{slot}")
}

/// Strategy: IS-A arcs pointing strictly downhill through a small layer
/// stack — `(general_layer, general_slot, specific_layer, specific_slot)`
/// with `general_layer < specific_layer`, so no insertion order can form a
/// subsumption cycle.
fn arb_downhill_arcs(max: usize) -> impl Strategy<Value = Vec<(usize, usize, usize, usize)>> {
    proptest::collection::vec((1usize..4, 0usize..4, 0usize..4, 0usize..4), 1..=max).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(spec, i, gen_sel, j)| (gen_sel % spec, j, spec, i))
                .collect()
        },
    )
}

/// Builds a taxonomy from downhill arcs, creating concepts on first use.
fn taxonomy_from_arcs(arcs: &[(usize, usize, usize, usize)]) -> tc_kb::Taxonomy {
    let mut t = tc_kb::Taxonomy::new();
    for &(gl, gs, sl, ss) in arcs {
        for n in [kb_name(gl, gs), kb_name(sl, ss)] {
            if t.id(&n).is_err() {
                t.add_root(&n).expect("fresh concept");
            }
        }
        // Downhill by construction: only a duplicate arc can be rejected.
        let _ = t.add_isa(&kb_name(gl, gs), &kb_name(sl, ss));
    }
    t
}

proptest! {
    /// `to_bytes` / `from_bytes` is the identity on the whole observable
    /// surface: concept order, structural verification, and every pairwise
    /// subsumption answer.
    #[test]
    fn taxonomy_codec_roundtrips(arcs in arb_downhill_arcs(24)) {
        let t = taxonomy_from_arcs(&arcs);
        let back = tc_kb::Taxonomy::from_bytes(&t.to_bytes())
            .expect("clean snapshot decodes");
        back.verify().expect("decoded taxonomy verifies");
        prop_assert_eq!(t.len(), back.len());
        let names: Vec<&str> = t.concepts().collect();
        let back_names: Vec<&str> = back.concepts().collect();
        prop_assert_eq!(&names, &back_names);
        for a in &names {
            for b in &names {
                prop_assert_eq!(
                    t.subsumes(a, b).expect("known concepts"),
                    back.subsumes(a, b).expect("known concepts"),
                    "subsumes({}, {}) changed across the codec", a, b
                );
            }
        }
    }

    /// The interval-compressed subsumption order equals a from-scratch
    /// reachability oracle over plain adjacency sets (reflexive, per the
    /// closure's `reaches`).
    #[test]
    fn subsumption_matches_set_oracle(arcs in arb_downhill_arcs(24)) {
        let t = taxonomy_from_arcs(&arcs);
        let mut direct: std::collections::BTreeMap<String, std::collections::BTreeSet<String>> =
            std::collections::BTreeMap::new();
        for &(gl, gs, sl, ss) in &arcs {
            direct.entry(kb_name(gl, gs)).or_default().insert(kb_name(sl, ss));
        }
        let names: Vec<String> = t.concepts().map(str::to_owned).collect();
        for a in &names {
            // Depth-first reachability from `a` over the raw arc sets.
            let mut seen = std::collections::BTreeSet::new();
            let mut stack = vec![a.clone()];
            while let Some(n) = stack.pop() {
                if seen.insert(n.clone()) {
                    if let Some(kids) = direct.get(&n) {
                        stack.extend(kids.iter().cloned());
                    }
                }
            }
            for b in &names {
                prop_assert_eq!(
                    t.subsumes(a, b).expect("known concepts"),
                    seen.contains(b),
                    "subsumes({}, {}) disagrees with the set oracle", a, b
                );
            }
        }
    }

    /// Semi-naive forward chaining plus DRed retraction leaves exactly the
    /// fact base a naive from-scratch re-derivation would build, across
    /// random downhill assert/retract scripts over mixed relations.
    #[test]
    fn rule_engine_matches_naive_rederivation(
        ops in proptest::collection::vec(
            ((any::<bool>(), any::<bool>()), (1usize..4, 0usize..4), (0usize..4, 0usize..4)),
            1..40,
        )
    ) {
        use tc_kb::{AssertOutcome, KnowledgeBase, Pred};
        let mut kb = KnowledgeBase::new();
        kb.define_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)").expect("rule parses");
        kb.define_rule("share: partof(X, Y) :- isa(X, Z), partof(Z, Y)").expect("rule parses");
        let mut live: Vec<(Pred, String, String)> = Vec::new();
        for ((retract, is_isa), (spec, i), (gen_sel, j)) in ops {
            if retract && !live.is_empty() {
                let ix = (spec * 13 + i * 7 + j) % live.len();
                let (p, a, b) = live.remove(ix);
                kb.retract_fact(p, &a, &b).expect("live fact retracts");
            } else {
                let pred = if is_isa { Pred::IsA } else { Pred::PartOf };
                let fact = (pred, kb_name(spec, i), kb_name(gen_sel % spec, j));
                let out = kb.assert_fact(pred, &fact.1, &fact.2).expect("downhill assert");
                prop_assert!(
                    !matches!(out, AssertOutcome::CycleRejected),
                    "downhill assert was cycle-rejected"
                );
                if !live.contains(&fact) {
                    live.push(fact);
                }
            }
        }
        prop_assert_eq!(kb.stats().cycle_rejected, 0);
        prop_assert_eq!(kb.stats().derive_failed, 0);
        if let Err(e) = kb.check_against_naive() {
            panic!("incremental fact base diverged from naive re-derivation: {e}");
        }
    }
}
