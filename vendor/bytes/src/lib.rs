//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds with no network access, so the small [`Buf`] /
//! [`BufMut`] surface `tc-store` uses for page images is provided here:
//! little-endian integer reads over `&[u8]` (self-advancing) and writes onto
//! `Vec<u8>`. Semantics match upstream for this subset, including panics on
//! underflow.

#![forbid(unsafe_code)]

/// Sequential big-endian-free reader over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Sequential writer onto a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn roundtrip_all_widths() {
        let mut v: Vec<u8> = Vec::new();
        v.put_u8(0xAB);
        v.put_u16_le(0x1234);
        v.put_u32_le(0xDEAD_BEEF);
        v.put_u64_le(0x0102_0304_0506_0708);
        v.put_slice(b"xyz");

        let mut r = v.as_slice();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.chunk(), b"xyz");
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
