//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds with no network access, so the benchmark files keep
//! their upstream-shaped definitions (`criterion_group!`, `benchmark_group`,
//! `bench_with_input`, `iter_batched`, …) while this crate supplies a small
//! honest timing harness: each benchmark is warmed up once, then run in
//! batches until ~200 ms of samples accumulate, and the mean wall-clock time
//! per iteration is printed. There is no statistical analysis, HTML report,
//! or saved baseline — run the real criterion locally if you need those.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// How batch setup costs relate to measurement; all variants behave the same
/// in this harness (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier: `function-name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one id.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    /// Total measured time and iteration count, accumulated by `iter*`.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Runs `routine` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let mut batch = 1u64;
        while self.elapsed < TARGET {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }

    /// Runs `routine` over fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        while self.elapsed < TARGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label:<50} (no samples)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iters);
        println!(
            "{label:<50} {:>12} ns/iter ({} iters)",
            per_iter, self.iters
        );
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }

    /// Defines a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }
}

/// A named group of benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Defines a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Defines a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher::new();
    f(&mut b);
    b.report(label);
}

/// Collects benchmark functions into one group runner, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups, like upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 64]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert!(setups > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("with-input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
    }
}
