//! Offline stand-in for the `rand` crate.
//!
//! This workspace must build with no network access (the registry mirror is
//! unreachable in the build environment), so the handful of `rand` APIs the
//! crates actually use are reimplemented here behind the same names:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random_range`],
//! [`Rng::random_bool`], [`seq::SliceRandom::shuffle`] and
//! [`seq::IndexedRandom::choose`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, fast, and statistically solid for the synthetic-workload
//! generation and randomized testing this workspace does. It is **not** the
//! upstream `rand` stream: byte-for-byte output differs, but every consumer
//! in this repository only relies on determinism and uniformity.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0, 1]");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample itself, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` where `1 <= span <= 2^64`, without the
/// worst of the modulo bias (widening multiply, Lemire's method).
fn below(rng: &mut (impl RngCore + ?Sized), span: u128) -> u64 {
    debug_assert!(span >= 1);
    if span > u64::MAX as u128 {
        return rng.next_u64(); // the full 64-bit range
    }
    (((rng.next_u64() as u128) * span) >> 64) as u64
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + below(rng, span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection.
    pub trait IndexedRandom {
        /// The element type.
        type Output;
        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn uniformity_over_small_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
