//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds with no network access, so this crate provides the
//! subset of proptest's API its property tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`] / [`collection::btree_set`], [`any`], and the
//! [`proptest!`] / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * cases are drawn by plain random sampling — there is **no shrinking**;
//!   failures print the panicking assertion with its context instead of a
//!   minimized counterexample;
//! * the per-test case count defaults to 64 and is controlled by the
//!   `PROPTEST_CASES` environment variable (upstream's knob of the same
//!   name);
//! * seeds derive deterministically from the test's name, so every run of a
//!   given test explores the same inputs — reproducible by construction.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256++ generator used to drive sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an arbitrary byte string (the test name) via FNV-1a and
    /// SplitMix64 expansion.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw below `span` (`1 <= span <= 2^64`).
    fn below(&mut self, span: u128) -> u64 {
        debug_assert!(span >= 1);
        if span > u64::MAX as u128 {
            return self.next_u64();
        }
        (((self.next_u64() as u128) * span) >> 64) as u64
    }
}

/// How many cases each `proptest!` test runs (the `PROPTEST_CASES`
/// environment variable, defaulting to 64).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Types with a canonical "arbitrary value" strategy (the subset [`any`]
/// supports).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification: an exact count or a range of counts.
    pub trait IntoSizeRange {
        /// Inclusive (min, max) element counts.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s of `elem` values.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min + 1) as u128;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A vector whose length lies in `size` and whose elements come from
    /// `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    /// Strategy for `BTreeSet`s of `elem` values.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.max - self.min + 1) as u128;
            let target = self.min + rng.below(span) as usize;
            let mut set = BTreeSet::new();
            // Collisions discard draws; cap the extra attempts above the
            // minimum so tiny element domains cannot loop forever.
            let mut attempts = 0usize;
            while set.len() < target && attempts < 20 * target + 100 {
                set.insert(self.elem.sample(rng));
                attempts += 1;
            }
            while set.len() < self.min {
                set.insert(self.elem.sample(rng));
            }
            set
        }
    }

    /// A set whose size lies in `size` and whose elements come from `elem`.
    /// The element domain must have at least `size` minimum distinct values.
    pub fn btree_set<S>(elem: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { elem, min, max }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`case_count`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pt_cases = $crate::case_count();
            let mut __pt_rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..__pt_cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __pt_rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 3u32..10, (a, b) in (0u64..5, 0i32..=3)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((0..=3).contains(&b));
        }

        #[test]
        fn maps_compose(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..100, n).prop_map(move |xs| (n, xs)))) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn sets_respect_bounds(s in crate::collection::btree_set(0u64..1000, 2..30)) {
            prop_assert!(s.len() >= 2 && s.len() < 30);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("abc");
        let mut b = crate::TestRng::deterministic("abc");
        let mut c = crate::TestRng::deterministic("abd");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}
