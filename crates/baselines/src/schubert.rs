//! Schubert-style multi-hierarchy interval tagging (§5, \[28\]).
//!
//! "Schubert et al generalized their scheme somewhat to work for the case of
//! overlapping hierarchies (not general directed acyclic graphs). Each
//! hierarchy is treated independently and nodes are assigned intervals
//! separately for each hierarchy. Thus, each node is assigned as many
//! intervals as the number of hierarchies, and intervals associated with a
//! node are differentiated by tagging them with the corresponding hierarchy
//! identifiers. Hierarchies are taken as given; the decomposition of a graph
//! into hierarchies is not addressed."
//!
//! Since the decomposition is "not addressed" in the original, this module
//! supplies a greedy one (each forest takes as many remaining arcs as it can
//! while keeping in-degree ≤ 1) and implements the published query power
//! honestly: a query answers *yes* only for paths lying within a single
//! hierarchy, and [`SchubertIndex::is_complete`] reports whether that
//! captures all of the graph's reachability.

use tc_graph::{topo, DiGraph, NodeId};

use crate::ReachabilityIndex;

/// One tree/forest hierarchy with Schubert's preorder interval labels:
/// `[preorder, highest preorder among descendants]`.
#[derive(Debug, Clone)]
struct Hierarchy {
    pre: Vec<u32>,
    max_desc: Vec<u32>,
}

/// The per-hierarchy interval index of Schubert et al.
#[derive(Debug, Clone)]
pub struct SchubertIndex {
    hierarchies: Vec<Hierarchy>,
    node_count: usize,
}

impl SchubertIndex {
    /// Decomposes `g` into forests greedily and labels each independently.
    pub fn build(g: &DiGraph) -> Result<Self, topo::CycleError> {
        topo::topo_sort(g)?; // the scheme presumes acyclic input
        let n = g.node_count();

        // Greedy forest decomposition over the arc set.
        let mut remaining: Vec<(NodeId, NodeId)> = g.edges().collect();
        let mut hierarchies = Vec::new();
        while !remaining.is_empty() {
            let mut parent: Vec<Option<NodeId>> = vec![None; n];
            remaining.retain(|&(s, d)| {
                if parent[d.index()].is_none() {
                    parent[d.index()] = Some(s);
                    false
                } else {
                    true
                }
            });
            hierarchies.push(label_forest(n, &parent));
        }
        if hierarchies.is_empty() {
            // Edgeless graph: a single trivial hierarchy of n roots.
            hierarchies.push(label_forest(n, &vec![None; n]));
        }
        Ok(SchubertIndex {
            hierarchies,
            node_count: n,
        })
    }

    /// Number of hierarchies the greedy decomposition produced (the maximum
    /// in-degree of the graph).
    pub fn hierarchy_count(&self) -> usize {
        self.hierarchies.len()
    }

    /// Whether single-hierarchy queries capture *all* reachability of `g` —
    /// generally false for DAGs with paths alternating between hierarchies,
    /// which is exactly the limitation §5 points out.
    pub fn is_complete(&self, g: &DiGraph) -> bool {
        g.nodes().all(|u| {
            let truth = tc_graph::traverse::reachable_set(g, u);
            g.nodes()
                .all(|v| self.reaches(u, v) == truth.contains(v.index()))
        })
    }
}

fn label_forest(n: usize, parent: &[Option<NodeId>]) -> Hierarchy {
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (ix, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[p.index()].push(ix as u32);
        }
    }
    let mut pre = vec![0u32; n];
    let mut max_desc = vec![0u32; n];
    let mut counter = 0u32;
    for root in 0..n {
        if parent[root].is_some() {
            continue;
        }
        // Iterative preorder; max_desc fills on frame pop.
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        pre[root] = counter;
        counter += 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < children[node].len() {
                let child = children[node][*next] as usize;
                *next += 1;
                pre[child] = counter;
                counter += 1;
                stack.push((child, 0));
            } else {
                max_desc[node] = children[node]
                    .iter()
                    .map(|&c| max_desc[c as usize])
                    .max()
                    .unwrap_or(pre[node])
                    .max(pre[node]);
                stack.pop();
            }
        }
    }
    Hierarchy { pre, max_desc }
}

impl ReachabilityIndex for SchubertIndex {
    fn name(&self) -> &'static str {
        "schubert-hierarchies"
    }

    /// True iff some single hierarchy contains a tree path `src → dst`.
    fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        self.hierarchies.iter().any(|h| {
            let p = h.pre[dst.index()];
            h.pre[src.index()] <= p && p <= h.max_desc[src.index()]
        })
    }

    /// Two numbers per node per hierarchy, as in \[28\].
    fn storage_units(&self) -> usize {
        2 * self.node_count * self.hierarchies.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::generators;

    #[test]
    fn single_tree_is_exact() {
        // On a tree the scheme coincides with ours and is complete.
        let g = generators::balanced_tree(2, 3);
        let ix = SchubertIndex::build(&g).unwrap();
        assert_eq!(ix.hierarchy_count(), 1);
        assert!(ix.is_complete(&g));
        assert_eq!(ix.storage_units(), 2 * g.node_count());
    }

    #[test]
    fn diamond_needs_two_hierarchies() {
        let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)]);
        let ix = SchubertIndex::build(&g).unwrap();
        assert_eq!(ix.hierarchy_count(), 2);
        // Both single-hierarchy paths to 3 exist, so the diamond happens to
        // be complete.
        assert!(ix.is_complete(&g));
        assert!(ix.reaches(NodeId(0), NodeId(3)));
        assert!(!ix.reaches(NodeId(1), NodeId(2)));
    }

    #[test]
    fn cross_hierarchy_paths_are_missed() {
        // 0 -> 1 and 2 -> 1 put (2,1) in hierarchy 2; with 1 -> 3 in
        // hierarchy 1, the path 2 -> 1 -> 3 alternates hierarchies...
        // actually greedy may still catch it; build a case that provably
        // alternates: b -> c in h2 because c already has a parent in h1,
        // and c -> d in h1; then b -> d needs h2-then-h1.
        let g = DiGraph::from_edges([
            (0, 2), // h1: c's parent is a
            (1, 2), // h2: b -> c
            (2, 3), // h1: c -> d
        ]);
        let ix = SchubertIndex::build(&g).unwrap();
        assert!(ix.reaches(NodeId(0), NodeId(3)), "within hierarchy 1");
        assert!(ix.reaches(NodeId(1), NodeId(2)), "within hierarchy 2");
        assert!(
            !ix.reaches(NodeId(1), NodeId(3)),
            "cross-hierarchy path is invisible to the published scheme"
        );
        assert!(!ix.is_complete(&g));
    }

    #[test]
    fn never_reports_false_positives() {
        for seed in 0..5 {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 30,
                avg_out_degree: 2.0,
                seed,
            });
            let ix = SchubertIndex::build(&g).unwrap();
            for u in g.nodes() {
                let truth = tc_graph::traverse::reachable_set(&g, u);
                for v in g.nodes() {
                    if ix.reaches(u, v) {
                        assert!(truth.contains(v.index()), "false positive ({u:?},{v:?})");
                    }
                }
            }
        }
    }

    #[test]
    fn hierarchy_count_tracks_max_in_degree() {
        let g = generators::bipartite_worst(4, 3);
        let ix = SchubertIndex::build(&g).unwrap();
        assert_eq!(ix.hierarchy_count(), 4);
    }

    #[test]
    fn edgeless_graph() {
        let g = DiGraph::with_nodes(4);
        let ix = SchubertIndex::build(&g).unwrap();
        assert_eq!(ix.hierarchy_count(), 1);
        assert!(ix.reaches(NodeId(2), NodeId(2)));
        assert!(!ix.reaches(NodeId(0), NodeId(1)));
        assert!(ix.is_complete(&g));
    }
}
