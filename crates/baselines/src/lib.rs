//! Comparator reachability indexes.
//!
//! The paper positions interval compression against a spectrum of
//! alternatives; this crate implements all of them, from scratch, behind the
//! common [`ReachabilityIndex`] trait so experiments and tests can swap them
//! freely:
//!
//! * [`FullClosure`] — the materialized transitive closure as explicit
//!   successor lists ("linked lists or arrays of descendants", §2.2); the
//!   storage yardstick of Figures 3.9–3.11.
//! * [`ReachMatrix`] — the "2-dimensional Boolean array" of §2.2, as packed
//!   bitset rows (with Warshall's algorithm for cyclic inputs).
//! * [`InverseClosure`] — stores the *non*-reachable topologically
//!   consistent pairs, the alternative §3.3 measures in Fig 3.10.
//! * [`chain`] — chain-decomposition compression [Jagadish 1988], the
//!   subject of Theorem 2 (tree covers never need more storage).
//! * [`SchubertIndex`] — the per-hierarchy interval tagging of Schubert et
//!   al. \[28\] discussed in §5.
//! * [`DfsOracle`] — on-the-fly pointer chasing, "the current approach" the
//!   paper wants to beat at query time (§2.1).
//! * [`ItalianoIndex`] — the incremental descendant-tree structure of
//!   Italiano \[17\] (§5): O(1) queries, amortized-efficient arc insertion,
//!   but "requires more storage than the complete transitive closure".

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chain;
mod full;
mod hk;
mod inverse;
mod italiano;
mod matrix;
mod onthefly;
mod schubert;

pub use chain::{ChainCover, ChainIndex};
pub use full::FullClosure;
pub use hk::hopcroft_karp;
pub use inverse::InverseClosure;
pub use italiano::ItalianoIndex;
pub use matrix::ReachMatrix;
pub use onthefly::DfsOracle;
pub use schubert::SchubertIndex;

use tc_graph::NodeId;

/// A queryable reachability index with the paper's storage accounting.
pub trait ReachabilityIndex {
    /// Human-readable name for experiment tables.
    fn name(&self) -> &'static str;

    /// Whether `src` reaches `dst` (reflexive).
    fn reaches(&self, src: NodeId, dst: NodeId) -> bool;

    /// Storage in the units of §3.3 (list entries, matrix bits are counted
    /// as entries/64, interval endpoints, etc. — each implementation
    /// documents its accounting).
    fn storage_units(&self) -> usize;
}
