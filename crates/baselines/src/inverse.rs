//! The inverse transitive closure (§3.3, Fig 3.10).
//!
//! "When the transitive closure includes most arcs in the graph, one should
//! store the inverse, storing tuples only for source-destination pairs
//! between which a path cannot be found … If a topological ordering of the
//! graph is stored as well, then one can use the topological ordering to
//! identify the ½n² arcs that are possible according to this ordering."

use tc_graph::{topo, traverse, DiGraph, NodeId};

use crate::ReachabilityIndex;

/// The inverse closure with respect to one topological order: the set of
/// ordered pairs `(u, v)` with `rank(u) < rank(v)` that are **not** in the
/// transitive closure.
///
/// Queries: `u` reaches `v` iff `rank(u) < rank(v)` and `(u, v)` is absent
/// from the stored set (plus reflexivity). The paper notes the practical
/// drawback — "such a scheme makes incremental updates more complex as the
/// topological sort may also have to be incrementally updated" — which is
/// why this index is measurement-only here.
#[derive(Debug, Clone)]
pub struct InverseClosure {
    rank: Vec<usize>,
    /// Sorted non-reachable pairs, as `(rank(u), rank(v))`.
    missing: Vec<(u32, u32)>,
}

impl InverseClosure {
    /// Builds the inverse closure of an acyclic `g`.
    pub fn build(g: &DiGraph) -> Result<Self, topo::CycleError> {
        let rank = topo::topo_rank(g)?;
        let rows = traverse::closure_rows(g);
        let mut missing = Vec::new();
        for u in g.nodes() {
            let ru = rank[u.index()] as u32;
            for v in g.nodes() {
                if rank[u.index()] < rank[v.index()] && !rows[u.index()].contains(v.index()) {
                    missing.push((ru, rank[v.index()] as u32));
                }
            }
        }
        missing.sort_unstable();
        Ok(InverseClosure { rank, missing })
    }

    /// Number of stored (non-reachable) pairs.
    pub fn missing_pairs(&self) -> usize {
        self.missing.len()
    }
}

impl ReachabilityIndex for InverseClosure {
    fn name(&self) -> &'static str {
        "inverse-closure"
    }

    fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return true;
        }
        let (rs, rd) = (self.rank[src.index()] as u32, self.rank[dst.index()] as u32);
        rs < rd && self.missing.binary_search(&(rs, rd)).is_err()
    }

    /// Stored pairs plus the topological ordering itself (one entry per
    /// node), which queries cannot work without.
    fn storage_units(&self) -> usize {
        self.missing.len() + self.rank.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::generators;

    #[test]
    fn diamond_inverse() {
        let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)]);
        let inv = InverseClosure::build(&g).unwrap();
        assert!(inv.reaches(NodeId(0), NodeId(3)));
        assert!(inv.reaches(NodeId(2), NodeId(2)));
        assert!(!inv.reaches(NodeId(1), NodeId(2)));
        assert!(!inv.reaches(NodeId(3), NodeId(0)));
        // Topo-consistent pairs: 6; reachable pairs: 5 -> 1 missing (1,2) or
        // (2,1) depending on the order chosen.
        assert_eq!(inv.missing_pairs(), 1);
    }

    #[test]
    fn dense_graph_has_tiny_inverse() {
        // Total order: closure covers every consistent pair -> inverse empty.
        let n = 20;
        let mut g = DiGraph::with_nodes(n);
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        let inv = InverseClosure::build(&g).unwrap();
        assert_eq!(inv.missing_pairs(), 0);
        assert_eq!(inv.storage_units(), n);
    }

    #[test]
    fn matches_dfs_on_random_dags() {
        for seed in 0..5 {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 40,
                avg_out_degree: 2.0,
                seed,
            });
            let inv = InverseClosure::build(&g).unwrap();
            for u in g.nodes() {
                let truth = traverse::reachable_set(&g, u);
                for v in g.nodes() {
                    assert_eq!(inv.reaches(u, v), truth.contains(v.index()), "({u:?},{v:?})");
                }
            }
        }
    }

    #[test]
    fn cyclic_rejected() {
        let g = DiGraph::from_edges([(0, 1), (1, 0)]);
        assert!(InverseClosure::build(&g).is_err());
    }

    #[test]
    fn edgeless_graph_stores_all_pairs() {
        let g = DiGraph::with_nodes(5);
        let inv = InverseClosure::build(&g).unwrap();
        assert_eq!(inv.missing_pairs(), 5 * 4 / 2);
    }
}
