//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used to compute *minimum* chain decompositions via Dilworth's theorem
//! (minimum chains = n − maximum matching over the closure's comparability
//! pairs), so Theorem 2 is tested against the best possible chain cover,
//! not just a greedy one.

/// Computes a maximum matching in a bipartite graph.
///
/// `adj[u]` lists the right-side vertices adjacent to left vertex `u`.
/// Returns `(match_left, size)` where `match_left[u]` is the right vertex
/// matched to `u`, if any.
pub fn hopcroft_karp(
    left_n: usize,
    right_n: usize,
    adj: &[Vec<usize>],
) -> (Vec<Option<usize>>, usize) {
    assert_eq!(adj.len(), left_n);
    const INF: u32 = u32::MAX;
    let mut match_l: Vec<Option<usize>> = vec![None; left_n];
    let mut match_r: Vec<Option<usize>> = vec![None; right_n];
    let mut dist = vec![INF; left_n];
    let mut size = 0usize;

    loop {
        // BFS layering from free left vertices.
        let mut queue = std::collections::VecDeque::new();
        for u in 0..left_n {
            if match_l[u].is_none() {
                dist[u] = 0;
                queue.push_back(u);
            } else {
                dist[u] = INF;
            }
        }
        let mut found_augmenting_layer = false;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                match match_r[v] {
                    None => found_augmenting_layer = true,
                    Some(w) => {
                        if dist[w] == INF {
                            dist[w] = dist[u] + 1;
                            queue.push_back(w);
                        }
                    }
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }

        // DFS phase along the level graph.
        fn try_augment(
            u: usize,
            adj: &[Vec<usize>],
            dist: &mut [u32],
            match_l: &mut [Option<usize>],
            match_r: &mut [Option<usize>],
        ) -> bool {
            for ix in 0..adj[u].len() {
                let v = adj[u][ix];
                let ok = match match_r[v] {
                    None => true,
                    Some(w) => {
                        dist[w] == dist[u] + 1
                            && try_augment(w, adj, dist, match_l, match_r)
                    }
                };
                if ok {
                    match_l[u] = Some(v);
                    match_r[v] = Some(u);
                    return true;
                }
            }
            dist[u] = u32::MAX;
            false
        }

        for u in 0..left_n {
            if match_l[u].is_none()
                && try_augment(u, adj, &mut dist, &mut match_l, &mut match_r)
            {
                size += 1;
            }
        }
    }
    (match_l, size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching() {
        // K(3,3): perfect matching of size 3.
        let adj = vec![vec![0, 1, 2]; 3];
        let (m, size) = hopcroft_karp(3, 3, &adj);
        assert_eq!(size, 3);
        let mut rights: Vec<usize> = m.into_iter().flatten().collect();
        rights.sort_unstable();
        assert_eq!(rights, vec![0, 1, 2]);
    }

    #[test]
    fn forced_augmenting_path() {
        // 0-{0}, 1-{0,1}: greedy could match 1-0 and strand 0; HK must find 2.
        let adj = vec![vec![0], vec![0, 1]];
        let (_, size) = hopcroft_karp(2, 2, &adj);
        assert_eq!(size, 2);
    }

    #[test]
    fn no_edges_no_matching() {
        let adj = vec![vec![], vec![]];
        let (m, size) = hopcroft_karp(2, 3, &adj);
        assert_eq!(size, 0);
        assert!(m.iter().all(Option::is_none));
    }

    #[test]
    fn asymmetric_sides() {
        // 4 left vertices compete for 2 right vertices.
        let adj = vec![vec![0], vec![0], vec![1], vec![1]];
        let (_, size) = hopcroft_karp(4, 2, &adj);
        assert_eq!(size, 2);
    }

    #[test]
    fn long_alternating_chain() {
        // Chain structure that requires augmenting through several layers.
        let adj = vec![vec![0], vec![0, 1], vec![1, 2], vec![2, 3]];
        let (_, size) = hopcroft_karp(4, 4, &adj);
        assert_eq!(size, 4);
    }
}
