//! The fully materialized transitive closure as successor lists.

use tc_graph::{traverse, BitSet, DiGraph, NodeId};

use crate::ReachabilityIndex;

/// Explicit successor lists for every node — the naive materialization whose
/// storage the paper's figures use as the 1.0 reference ("The total storage
/// required was computed as the number of successors at each node", §3.3).
///
/// Queries are a binary search of the (sorted) successor list.
#[derive(Debug, Clone)]
pub struct FullClosure {
    /// Sorted irreflexive successor lists.
    lists: Vec<Vec<NodeId>>,
}

impl FullClosure {
    /// Materializes the closure of `g` (cycles allowed).
    pub fn build(g: &DiGraph) -> Self {
        let rows = traverse::closure_rows(g);
        let lists = rows
            .iter()
            .enumerate()
            .map(|(ix, row)| {
                row.iter()
                    .filter(|&v| v != ix)
                    .map(NodeId::from_index)
                    .collect()
            })
            .collect();
        FullClosure { lists }
    }

    /// Builds from precomputed closure rows (shared with other baselines).
    pub fn from_rows(rows: &[BitSet]) -> Self {
        let lists = rows
            .iter()
            .enumerate()
            .map(|(ix, row)| {
                row.iter()
                    .filter(|&v| v != ix)
                    .map(NodeId::from_index)
                    .collect()
            })
            .collect();
        FullClosure { lists }
    }

    /// The (irreflexive) successor list of `node`.
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        &self.lists[node.index()]
    }

    /// Total closure size (sum of list lengths) — the paper's `|closure|`.
    pub fn size(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.lists.len()
    }
}

impl ReachabilityIndex for FullClosure {
    fn name(&self) -> &'static str {
        "full-closure"
    }

    fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        src == dst || self.lists[src.index()].binary_search(&dst).is_ok()
    }

    fn storage_units(&self) -> usize {
        self.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn materializes_all_pairs() {
        let c = FullClosure::build(&diamond());
        assert!(c.reaches(NodeId(0), NodeId(3)));
        assert!(c.reaches(NodeId(1), NodeId(1)), "reflexive");
        assert!(!c.reaches(NodeId(1), NodeId(2)));
        assert_eq!(c.successors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(c.size(), (3 + 1 + 1));
        assert_eq!(c.storage_units(), 5);
    }

    #[test]
    fn handles_cycles() {
        let g = DiGraph::from_edges([(0, 1), (1, 0), (1, 2)]);
        let c = FullClosure::build(&g);
        assert!(c.reaches(NodeId(0), NodeId(1)));
        assert!(c.reaches(NodeId(1), NodeId(0)));
        assert!(c.reaches(NodeId(0), NodeId(2)));
        assert!(!c.reaches(NodeId(2), NodeId(1)));
        // 0 -> {1,2}, 1 -> {0,2}, 2 -> {} = 4 entries.
        assert_eq!(c.size(), 4);
    }

    #[test]
    fn from_rows_matches_build() {
        let g = diamond();
        let rows = traverse::closure_rows(&g);
        let a = FullClosure::build(&g);
        let b = FullClosure::from_rows(&rows);
        for u in g.nodes() {
            assert_eq!(a.successors(u), b.successors(u));
        }
    }
}
