//! The boolean reachability matrix.

use tc_graph::{traverse, BitSet, DiGraph, NodeId};

use crate::ReachabilityIndex;

/// The "2-dimensional Boolean array" of §2.2: one packed bitset row per
/// node. O(1) queries, Θ(n²) bits of storage regardless of density — the
/// representation the paper rejects for large sparse relations.
#[derive(Debug, Clone)]
pub struct ReachMatrix {
    rows: Vec<BitSet>,
}

impl ReachMatrix {
    /// Builds the (reflexive) reachability matrix of `g`. Acyclic graphs use
    /// a reverse-topological OR-sweep; cyclic graphs fall back through the
    /// SCC-aware row computation.
    pub fn build(g: &DiGraph) -> Self {
        ReachMatrix {
            rows: traverse::closure_rows(g),
        }
    }

    /// Builds by Warshall's classical O(n³/64) algorithm — kept as an
    /// independently-derived oracle for cross-checking the sweep.
    pub fn build_warshall(g: &DiGraph) -> Self {
        let n = g.node_count();
        let mut rows: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
        for v in g.nodes() {
            rows[v.index()].insert(v.index());
            for &s in g.successors(v) {
                rows[v.index()].insert(s.index());
            }
        }
        for k in 0..n {
            let k_row = rows[k].clone();
            for row in rows.iter_mut() {
                if row.contains(k) {
                    row.union_with(&k_row);
                }
            }
        }
        ReachMatrix { rows }
    }

    /// The reachability row of `node` (includes the node itself).
    pub fn row(&self, node: NodeId) -> &BitSet {
        &self.rows[node.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of irreflexive reachable pairs.
    pub fn pair_count(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum::<usize>() - self.rows.len()
    }
}

impl ReachabilityIndex for ReachMatrix {
    fn name(&self) -> &'static str {
        "bit-matrix"
    }

    fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        self.rows[src.index()].contains(dst.index())
    }

    /// n²/64 words — the matrix costs the same no matter how sparse the
    /// relation is.
    fn storage_units(&self) -> usize {
        let n = self.rows.len();
        (n * n).div_ceil(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_and_warshall_agree() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (3, 1), (2, 4)]);
        let a = ReachMatrix::build(&g);
        let b = ReachMatrix::build_warshall(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(a.reaches(u, v), b.reaches(u, v), "({u:?},{v:?})");
            }
        }
    }

    #[test]
    fn warshall_handles_cycles() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let m = ReachMatrix::build_warshall(&g);
        assert!(m.reaches(NodeId(2), NodeId(1)));
        assert!(m.reaches(NodeId(0), NodeId(3)));
        assert!(!m.reaches(NodeId(3), NodeId(0)));
        let sweep = ReachMatrix::build(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(m.reaches(u, v), sweep.reaches(u, v));
            }
        }
    }

    #[test]
    fn storage_is_quadratic_and_density_independent() {
        let sparse = ReachMatrix::build(&DiGraph::with_nodes(128));
        let mut g = DiGraph::with_nodes(128);
        for i in 0..127 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        let dense = ReachMatrix::build(&g);
        assert_eq!(sparse.storage_units(), dense.storage_units());
        assert_eq!(sparse.storage_units(), 128 * 128 / 64);
        assert_eq!(sparse.pair_count(), 0);
        assert_eq!(dense.pair_count(), 127 * 128 / 2);
    }
}
