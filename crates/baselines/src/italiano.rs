//! Italiano's incremental transitive-closure structure (§5, [17]).
//!
//! "Tree-like data structures that have a low amortized cost for incremental
//! updates of transitive closure have been developed in [17]. However, this
//! scheme is not targetted towards compression and requires more storage
//! than the complete transitive closure."
//!
//! For every node `u` the structure keeps a spanning tree `Desc(u)` of the
//! nodes reachable from `u`, encoded as an n×n matrix of parent pointers.
//! Queries are O(1); inserting an arc melds descendant trees with amortized
//! cost O(n) over any sequence of insertions. Deletions are not supported
//! (that is the published structure's limitation, and one of the paper's
//! arguments for the interval scheme).

use tc_graph::{DiGraph, NodeId};

use crate::ReachabilityIndex;

const NONE: u32 = u32::MAX;

/// Italiano's descendant-tree reachability index (insert-only).
#[derive(Debug, Clone)]
pub struct ItalianoIndex {
    n: usize,
    /// `parent[u * n + v]` — parent of `v` in `Desc(u)`, `NONE` if `v` is
    /// not reachable from `u` (the diagonal holds `u` itself, parent `u`).
    parent: Vec<u32>,
    /// Children adjacency of each `Desc(u)` tree, for the meld walk.
    children: Vec<Vec<Vec<u32>>>,
    edges: usize,
}

impl ItalianoIndex {
    /// Creates the structure over `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        let mut parent = vec![NONE; n * n];
        let children = vec![vec![Vec::new(); n]; n];
        for u in 0..n {
            parent[u * n + u] = u as u32; // u trivially reaches itself
        }
        ItalianoIndex {
            n,
            parent,
            children,
            edges: 0,
        }
    }

    /// Builds the structure by inserting every arc of `g`.
    pub fn build(g: &DiGraph) -> Self {
        let mut ix = Self::new(g.node_count());
        for (s, d) in g.edges() {
            ix.insert_edge(s, d);
        }
        ix
    }

    /// Number of arcs inserted so far.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    #[inline]
    fn has(&self, u: usize, v: usize) -> bool {
        self.parent[u * self.n + v] != NONE
    }

    /// Inserts the arc `i -> j`, updating every affected descendant tree.
    pub fn insert_edge(&mut self, i: NodeId, j: NodeId) {
        let (i, j) = (i.index(), j.index());
        assert!(i < self.n && j < self.n, "node out of range");
        self.edges += 1;
        // For every u that reaches i but not yet j, graft (a copy of) j's
        // descendant tree under i in Desc(u).
        for u in 0..self.n {
            if self.has(u, i) && !self.has(u, j) {
                self.meld(u, i, j);
            }
        }
    }

    /// Grafts `Desc(j)` into `Desc(u)` at attachment point `i` (classic
    /// Italiano meld): walk `Desc(j)`, adding every node `u` cannot yet
    /// reach.
    fn meld(&mut self, u: usize, i: usize, j: usize) {
        let n = self.n;
        self.parent[u * n + j] = i as u32;
        self.children[u][i].push(j as u32);
        let mut stack = vec![j];
        while let Some(v) = stack.pop() {
            // Walk v's children in j's own descendant tree.
            for ix in 0..self.children[j][v].len() {
                let w = self.children[j][v][ix] as usize;
                if !self.has(u, w) {
                    self.parent[u * n + w] = v as u32;
                    self.children[u][v].push(w as u32);
                    stack.push(w);
                }
            }
        }
    }

    /// Number of non-empty parent entries (≈ size of the full closure plus
    /// the diagonal).
    pub fn occupied_entries(&self) -> usize {
        self.parent.iter().filter(|&&p| p != NONE).count()
    }
}

impl ReachabilityIndex for ItalianoIndex {
    fn name(&self) -> &'static str {
        "italiano-desc-trees"
    }

    fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        self.has(src.index(), dst.index())
    }

    /// The full n×n pointer matrix — "more storage than the complete
    /// transitive closure".
    fn storage_units(&self) -> usize {
        self.n * self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::generators;

    #[test]
    fn incremental_inserts_match_dfs() {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 30,
            avg_out_degree: 2.0,
            seed: 4,
        });
        let ix = ItalianoIndex::build(&g);
        for u in g.nodes() {
            let truth = tc_graph::traverse::reachable_set(&g, u);
            for v in g.nodes() {
                assert_eq!(ix.reaches(u, v), truth.contains(v.index()), "({u:?},{v:?})");
            }
        }
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (0, 3), (1, 3)];
        let forward = {
            let mut ix = ItalianoIndex::new(4);
            for &(a, b) in &edges {
                ix.insert_edge(NodeId(a), NodeId(b));
            }
            ix
        };
        let backward = {
            let mut ix = ItalianoIndex::new(4);
            for &(a, b) in edges.iter().rev() {
                ix.insert_edge(NodeId(a), NodeId(b));
            }
            ix
        };
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(
                    forward.reaches(NodeId(u), NodeId(v)),
                    backward.reaches(NodeId(u), NodeId(v))
                );
            }
        }
    }

    #[test]
    fn duplicate_and_redundant_edges_are_harmless() {
        let mut ix = ItalianoIndex::new(3);
        ix.insert_edge(NodeId(0), NodeId(1));
        ix.insert_edge(NodeId(1), NodeId(2));
        let before = ix.occupied_entries();
        ix.insert_edge(NodeId(0), NodeId(2)); // already derivable
        ix.insert_edge(NodeId(0), NodeId(1)); // duplicate
        assert_eq!(ix.occupied_entries(), before);
        assert!(ix.reaches(NodeId(0), NodeId(2)));
    }

    #[test]
    fn storage_exceeds_closure_size() {
        let g = generators::chain(10);
        let ix = ItalianoIndex::build(&g);
        let closure_pairs = 10 * 9 / 2;
        assert!(ix.storage_units() >= closure_pairs);
        assert_eq!(ix.occupied_entries(), closure_pairs + 10);
    }

    #[test]
    fn reflexive_from_the_start() {
        let ix = ItalianoIndex::new(5);
        for v in 0..5u32 {
            assert!(ix.reaches(NodeId(v), NodeId(v)));
        }
        assert!(!ix.reaches(NodeId(0), NodeId(1)));
    }
}
