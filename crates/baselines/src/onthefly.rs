//! On-the-fly DFS reachability — "simple pointer chasing in the underlying
//! data structure, the current approach" (§2.1).

use std::cell::RefCell;

use tc_graph::{BitSet, DiGraph, NodeId};

use crate::ReachabilityIndex;

/// Answers reachability by traversing the graph at query time. Stores
/// nothing beyond the relation itself; every query costs O(V + E) in the
/// worst case. The visited bitset and stack are reused across queries to
/// keep the comparison against indexed schemes about *algorithm*, not
/// allocator traffic.
pub struct DfsOracle {
    graph: DiGraph,
    scratch: RefCell<(BitSet, Vec<NodeId>)>,
}

impl DfsOracle {
    /// Wraps a graph for on-the-fly querying.
    pub fn new(graph: DiGraph) -> Self {
        let n = graph.node_count();
        DfsOracle {
            graph,
            scratch: RefCell::new((BitSet::new(n), Vec::with_capacity(n))),
        }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }
}

impl ReachabilityIndex for DfsOracle {
    fn name(&self) -> &'static str {
        "dfs-on-the-fly"
    }

    fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return true;
        }
        let mut scratch = self.scratch.borrow_mut();
        let (visited, stack) = &mut *scratch;
        visited.clear();
        stack.clear();
        visited.insert(src.index());
        stack.push(src);
        while let Some(node) = stack.pop() {
            for &succ in self.graph.successors(node) {
                if succ == dst {
                    return true;
                }
                if visited.insert(succ.index()) {
                    stack.push(succ);
                }
            }
        }
        false
    }

    /// Just the adjacency lists — the base relation itself.
    fn storage_units(&self) -> usize {
        self.graph.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_match_graph_reachability() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (3, 1), (2, 4)]);
        let oracle = DfsOracle::new(g.clone());
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    oracle.reaches(u, v),
                    tc_graph::traverse::reaches(&g, u, v),
                    "({u:?},{v:?})"
                );
            }
        }
        assert_eq!(oracle.storage_units(), 4);
    }

    #[test]
    fn scratch_reuse_does_not_leak_state() {
        let g = DiGraph::from_edges([(0, 1), (2, 3)]);
        let oracle = DfsOracle::new(g);
        assert!(oracle.reaches(NodeId(0), NodeId(1)));
        assert!(!oracle.reaches(NodeId(0), NodeId(3)));
        assert!(oracle.reaches(NodeId(2), NodeId(3)));
        assert!(!oracle.reaches(NodeId(2), NodeId(1)));
    }

    #[test]
    fn works_on_cycles() {
        let g = DiGraph::from_edges([(0, 1), (1, 0), (1, 2)]);
        let oracle = DfsOracle::new(g);
        assert!(oracle.reaches(NodeId(1), NodeId(0)));
        assert!(oracle.reaches(NodeId(0), NodeId(2)));
        assert!(!oracle.reaches(NodeId(2), NodeId(0)));
    }
}
