//! Chain-decomposition transitive-closure compression (§5, Theorem 2).
//!
//! "A transitive closure compression technique based on chain decomposition
//! of graphs was proposed in \[18\]. Each node is indexed with a chain number,
//! and its sequence number in the chain. At each node, one need store only
//! the earliest node in a chain (the one with the lowest sequence number)
//! that can be reached from it, and deduce that later nodes in the chain are
//! reachable."
//!
//! Theorem 2 states the interval scheme never needs more storage than the
//! *best* chain compression (without chain reduction); this module provides
//! both a greedy decomposition and the true minimum (Dilworth via
//! Hopcroft–Karp over the closure's comparability pairs) so the theorem can
//! be checked empirically against the strongest opponent.
//!
//! The paper's footnote 6 notes a further *chain reduction* variant of [18]
//! that "leaves some nodes uncovered by chains"; Theorem 2 explicitly
//! excludes it ("We do not consider the additional compression offered by
//! chain reduction in Thm 2"), and so does this module.

use tc_graph::{topo, traverse, BitSet, DiGraph, NodeId};

use crate::hk::hopcroft_karp;
use crate::ReachabilityIndex;

/// A decomposition of a DAG's nodes into chains: within a chain, each node
/// reaches all later nodes.
#[derive(Debug, Clone)]
pub struct ChainCover {
    /// `chain_of[v]` — the chain holding `v`.
    pub chain_of: Vec<u32>,
    /// `seq_of[v]` — `v`'s position within its chain (0-based).
    pub seq_of: Vec<u32>,
    /// The chains themselves, each a list of nodes in chain order.
    pub chains: Vec<Vec<NodeId>>,
}

impl ChainCover {
    /// Greedy decomposition: walk the nodes in topological order, appending
    /// each to the first chain whose tail reaches it, opening a new chain
    /// otherwise. Fast and usually close to minimal on sparse DAGs.
    pub fn greedy(g: &DiGraph, rows: &[BitSet]) -> Result<Self, topo::CycleError> {
        let order = topo::topo_sort(g)?;
        let mut chains: Vec<Vec<NodeId>> = Vec::new();
        let mut chain_of = vec![0u32; g.node_count()];
        let mut seq_of = vec![0u32; g.node_count()];
        for &v in &order {
            let slot = chains
                .iter()
                .position(|c| rows[c.last().unwrap().index()].contains(v.index()));
            let c = match slot {
                Some(c) => c,
                None => {
                    chains.push(Vec::new());
                    chains.len() - 1
                }
            };
            chain_of[v.index()] = c as u32;
            seq_of[v.index()] = chains[c].len() as u32;
            chains[c].push(v);
        }
        Ok(ChainCover {
            chain_of,
            seq_of,
            chains,
        })
    }

    /// Minimum decomposition (Dilworth): minimum chains = n − maximum
    /// matching over the strict comparability pairs of the closure.
    pub fn minimum(g: &DiGraph, rows: &[BitSet]) -> Result<Self, topo::CycleError> {
        topo::topo_sort(g)?; // reject cyclic inputs up front
        let n = g.node_count();
        let adj: Vec<Vec<usize>> = rows
            .iter()
            .enumerate()
            .map(|(u, row)| row.iter().filter(|&v| v != u).collect())
            .collect();
        let (match_l, _) = hopcroft_karp(n, n, &adj);

        // Chains follow matched-successor links from unmatched-on-the-right
        // heads.
        let mut has_pred = vec![false; n];
        for m in match_l.iter().flatten() {
            has_pred[*m] = true;
        }
        let mut chains = Vec::new();
        let mut chain_of = vec![0u32; n];
        let mut seq_of = vec![0u32; n];
        for (head, _) in has_pred.iter().enumerate().filter(|(_, &p)| !p) {
            let c = chains.len();
            let mut chain = Vec::new();
            let mut cur = Some(head);
            while let Some(v) = cur {
                chain_of[v] = c as u32;
                seq_of[v] = chain.len() as u32;
                chain.push(NodeId::from_index(v));
                cur = match_l[v];
            }
            chains.push(chain);
        }
        Ok(ChainCover {
            chain_of,
            seq_of,
            chains,
        })
    }

    /// Number of chains.
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Validates that each chain is totally ordered by reachability.
    pub fn check(&self, rows: &[BitSet]) -> bool {
        self.chains.iter().all(|chain| {
            chain
                .windows(2)
                .all(|w| rows[w[0].index()].contains(w[1].index()))
        })
    }
}

/// The queryable chain-compression index of \[18\].
#[derive(Debug, Clone)]
pub struct ChainIndex {
    cover: ChainCover,
    /// Per node, sorted `(chain, earliest reachable seq)` entries.
    entries: Vec<Vec<(u32, u32)>>,
}

impl ChainIndex {
    /// Builds the index over a given chain cover.
    pub fn build(g: &DiGraph, cover: ChainCover) -> Self {
        let rows = traverse::closure_rows(g);
        Self::from_rows(&rows, cover)
    }

    /// Builds the index from precomputed closure rows.
    pub fn from_rows(rows: &[BitSet], cover: ChainCover) -> Self {
        let n = rows.len();
        let chains = cover.chain_count();
        let mut entries = Vec::with_capacity(n);
        let mut earliest: Vec<u32> = Vec::new();
        for row in rows.iter().take(n) {
            earliest.clear();
            earliest.resize(chains, u32::MAX);
            for v in row.iter() {
                let c = cover.chain_of[v] as usize;
                earliest[c] = earliest[c].min(cover.seq_of[v]);
            }
            let mut list: Vec<(u32, u32)> = earliest
                .iter()
                .enumerate()
                .filter(|(_, &s)| s != u32::MAX)
                .map(|(c, &s)| (c as u32, s))
                .collect();
            list.sort_unstable();
            entries.push(list);
        }
        ChainIndex { cover, entries }
    }

    /// Convenience: build with the greedy cover.
    pub fn build_greedy(g: &DiGraph) -> Result<Self, topo::CycleError> {
        let rows = traverse::closure_rows(g);
        let cover = ChainCover::greedy(g, &rows)?;
        Ok(Self::from_rows(&rows, cover))
    }

    /// Convenience: build with the minimum (Dilworth) cover.
    pub fn build_minimum(g: &DiGraph) -> Result<Self, topo::CycleError> {
        let rows = traverse::closure_rows(g);
        let cover = ChainCover::minimum(g, &rows)?;
        Ok(Self::from_rows(&rows, cover))
    }

    /// The underlying cover.
    pub fn cover(&self) -> &ChainCover {
        &self.cover
    }

    /// Total number of `(chain, seq)` entries across all nodes — the unit
    /// Theorem 2 compares against the interval count.
    pub fn entry_count(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }
}

impl ReachabilityIndex for ChainIndex {
    fn name(&self) -> &'static str {
        "chain-compression"
    }

    fn reaches(&self, src: NodeId, dst: NodeId) -> bool {
        let c = self.cover.chain_of[dst.index()];
        let list = &self.entries[src.index()];
        match list.binary_search_by_key(&c, |&(chain, _)| chain) {
            Ok(pos) => list[pos].1 <= self.cover.seq_of[dst.index()],
            Err(_) => false,
        }
    }

    /// Two numbers per entry (chain id + sequence number), mirroring the
    /// two endpoints per interval counted for the compressed closure.
    fn storage_units(&self) -> usize {
        2 * self.entry_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::generators;

    fn diamond() -> DiGraph {
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn greedy_cover_is_valid() {
        let g = diamond();
        let rows = traverse::closure_rows(&g);
        let cover = ChainCover::greedy(&g, &rows).unwrap();
        assert!(cover.check(&rows));
        // Diamond width is 2: greedy should find 2 chains here.
        assert_eq!(cover.chain_count(), 2);
    }

    #[test]
    fn minimum_cover_achieves_width() {
        let g = diamond();
        let rows = traverse::closure_rows(&g);
        let cover = ChainCover::minimum(&g, &rows).unwrap();
        assert!(cover.check(&rows));
        assert_eq!(cover.chain_count(), 2, "diamond has width 2");
        // An antichain of k isolated nodes needs k chains.
        let iso = DiGraph::with_nodes(5);
        let rows = traverse::closure_rows(&iso);
        assert_eq!(ChainCover::minimum(&iso, &rows).unwrap().chain_count(), 5);
    }

    #[test]
    fn minimum_never_worse_than_greedy() {
        for seed in 0..8 {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 30,
                avg_out_degree: 2.0,
                seed,
            });
            let rows = traverse::closure_rows(&g);
            let greedy = ChainCover::greedy(&g, &rows).unwrap();
            let min = ChainCover::minimum(&g, &rows).unwrap();
            assert!(min.chain_count() <= greedy.chain_count(), "seed {seed}");
            assert!(min.check(&rows));
        }
    }

    #[test]
    fn index_queries_match_dfs() {
        for seed in 0..5 {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 35,
                avg_out_degree: 2.5,
                seed,
            });
            for index in [
                ChainIndex::build_greedy(&g).unwrap(),
                ChainIndex::build_minimum(&g).unwrap(),
            ] {
                for u in g.nodes() {
                    let truth = traverse::reachable_set(&g, u);
                    for v in g.nodes() {
                        assert_eq!(
                            index.reaches(u, v),
                            truth.contains(v.index()),
                            "{} seed {seed} ({u:?},{v:?})",
                            index.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chain_storage_on_a_chain_graph_is_linear() {
        // A pure chain compresses perfectly in both schemes.
        let g = generators::chain(20);
        let index = ChainIndex::build_minimum(&g).unwrap();
        assert_eq!(index.cover().chain_count(), 1);
        assert_eq!(index.entry_count(), 20, "one self-entry per node");
    }

    #[test]
    fn tree_is_bad_for_chains() {
        // Theorem 2's separating example: a bushy tree has width ~ leaf
        // count, so chains blow up where intervals stay linear.
        let g = generators::balanced_tree(2, 4); // 31 nodes, 16 leaves
        let index = ChainIndex::build_minimum(&g).unwrap();
        assert_eq!(index.cover().chain_count(), 16);
        assert!(index.entry_count() > g.node_count() * 2);
    }

    #[test]
    fn cyclic_rejected() {
        let g = DiGraph::from_edges([(0, 1), (1, 0)]);
        assert!(ChainIndex::build_greedy(&g).is_err());
        assert!(ChainIndex::build_minimum(&g).is_err());
    }
}
