//! Relational operators over binary relations.
//!
//! The building blocks of the α-extended relational algebra the paper plans
//! to host the compressed closure in ("we are planning to incorporate these
//! techniques in prototype systems based on α-extended relational algebra",
//! §6): selection, union, composition (the join underlying transitive
//! closure iteration), and inversion.

use crate::{BinaryRelation, Symbol};

/// Selection: the sub-relation whose tuples satisfy `pred`.
pub fn select(
    r: &BinaryRelation,
    mut pred: impl FnMut(Symbol, Symbol) -> bool,
) -> BinaryRelation {
    r.iter().filter(|&(s, d)| pred(s, d)).collect()
}

/// Union of two relations.
pub fn union(a: &BinaryRelation, b: &BinaryRelation) -> BinaryRelation {
    a.iter().chain(b.iter()).collect()
}

/// Composition `a ∘ b`: `(x, z)` such that `(x, y) ∈ a` and `(y, z) ∈ b`.
/// `R ∘ R` is one step of the naive transitive-closure iteration — the
/// expensive operation materialization avoids at query time.
pub fn compose(a: &BinaryRelation, b: &BinaryRelation) -> BinaryRelation {
    let mut out = BinaryRelation::new();
    for (x, y) in a.iter() {
        for z in b.with_source(y) {
            out.insert(x, z);
        }
    }
    out
}

/// Inverse: `(y, x)` for every `(x, y)`.
pub fn inverse(r: &BinaryRelation) -> BinaryRelation {
    r.iter().map(|(s, d)| (d, s)).collect()
}

/// The α-join of §6's "α-extended relational algebra": joins a relation
/// through the *transitive closure* of the view's base relation —
/// `(x, z)` such that `x →* y` in the materialized closure and
/// `(y, z) ∈ s`. With the closure materialized this is a per-tuple decode
/// instead of a recursive fixpoint.
pub fn alpha_join(view: &crate::TcView, s: &BinaryRelation) -> BinaryRelation {
    let mut out = BinaryRelation::new();
    for (y, z) in s.iter() {
        // Everyone reaching y (including y itself) pairs with z.
        for x in view.ancestor_syms_inclusive(y) {
            out.insert(x, z);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u32) -> Symbol {
        Symbol(v)
    }

    fn rel(pairs: &[(u32, u32)]) -> BinaryRelation {
        pairs.iter().map(|&(a, b)| (s(a), s(b))).collect()
    }

    #[test]
    fn select_filters() {
        let r = rel(&[(0, 1), (1, 2), (2, 3)]);
        let picked = select(&r, |src, _| src.0 >= 1);
        assert_eq!(picked, rel(&[(1, 2), (2, 3)]));
    }

    #[test]
    fn union_merges_and_dedupes() {
        let a = rel(&[(0, 1), (1, 2)]);
        let b = rel(&[(1, 2), (2, 3)]);
        assert_eq!(union(&a, &b), rel(&[(0, 1), (1, 2), (2, 3)]));
    }

    #[test]
    fn compose_is_one_closure_step() {
        let r = rel(&[(0, 1), (1, 2), (2, 3)]);
        let rr = compose(&r, &r);
        assert_eq!(rr, rel(&[(0, 2), (1, 3)]));
        // Iterating compose-and-union converges to the closure.
        let mut closure = r.clone();
        loop {
            let next = union(&closure, &compose(&closure, &r));
            if next == closure {
                break;
            }
            closure = next;
        }
        assert_eq!(closure, rel(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]));
    }

    #[test]
    fn alpha_join_joins_through_the_closure() {
        use crate::TcView;
        // Managers: a -> b -> c (a manages b manages c); `assigned`:
        // c works on project p, b on q.
        let mut view = TcView::new();
        view.insert("a", "b").unwrap();
        view.insert("b", "c").unwrap();
        let sym = |n: &str| view.symbols().lookup(n).unwrap();
        let assigned: BinaryRelation =
            [(sym("c"), Symbol(100)), (sym("b"), Symbol(200))].into_iter().collect();
        let joined = alpha_join(&view, &assigned);
        // Everyone above (and including) c is answerable for p=100.
        assert!(joined.contains(sym("a"), Symbol(100)));
        assert!(joined.contains(sym("b"), Symbol(100)));
        assert!(joined.contains(sym("c"), Symbol(100)));
        // Only a and b for q=200.
        assert!(joined.contains(sym("a"), Symbol(200)));
        assert!(joined.contains(sym("b"), Symbol(200)));
        assert!(!joined.contains(sym("c"), Symbol(200)));
        assert_eq!(joined.len(), 5);
    }

    #[test]
    fn alpha_join_matches_naive_fixpoint_composition() {
        use crate::TcView;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let names: Vec<String> = (0..8).map(|i| format!("v{i}")).collect();
        let mut view = TcView::new();
        for _ in 0..12 {
            let a = &names[rng.random_range(0..names.len())];
            let b = &names[rng.random_range(0..names.len())];
            let _ = view.insert(a, b);
        }
        // s: random second relation over the same symbols.
        let n = view.symbols().len() as u32;
        let s: BinaryRelation = (0..10)
            .map(|_| (Symbol(rng.random_range(0..n)), Symbol(rng.random_range(0..n))))
            .collect();
        // Naive: reflexive closure of base, composed with s.
        let mut closure = view.base().clone();
        loop {
            let next = union(&closure, &compose(&closure, view.base()));
            if next == closure { break; }
            closure = next;
        }
        for i in 0..n {
            closure.insert(Symbol(i), Symbol(i)); // α is reflexive
        }
        let expect = compose(&closure, &s);
        assert_eq!(alpha_join(&view, &s), expect);
    }

    #[test]
    fn inverse_swaps() {
        let r = rel(&[(0, 1), (2, 1)]);
        assert_eq!(inverse(&r), rel(&[(1, 0), (1, 2)]));
    }
}
