//! The materialized transitive-closure view.

use std::fmt;

use tc_core::{ClosureConfig, CompressedClosure, UpdateError};
use tc_graph::{DiGraph, NodeId};

use crate::{BinaryRelation, Symbol, SymbolTable};

/// Errors from view operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewError {
    /// A named value has never been seen by the view.
    UnknownValue(String),
    /// The tuple would make the relation cyclic, which the acyclic view
    /// rejects (wrap with SCC condensation for cyclic relations).
    WouldCreateCycle(String, String),
    /// The tuple to delete is not in the base relation.
    NoSuchTuple(String, String),
}

impl fmt::Display for ViewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewError::UnknownValue(name) => write!(f, "unknown value {name:?}"),
            ViewError::WouldCreateCycle(s, d) => {
                write!(f, "tuple ({s:?}, {d:?}) would create a cycle")
            }
            ViewError::NoSuchTuple(s, d) => write!(f, "no tuple ({s:?}, {d:?})"),
        }
    }
}

impl std::error::Error for ViewError {}

/// A materialized, incrementally-maintained transitive-closure view over a
/// named binary relation — the α-operator as a lookup structure.
///
/// ```
/// use tc_relation::TcView;
///
/// let mut parts = TcView::new();
/// parts.insert("wing", "flap").unwrap();
/// parts.insert("flap", "actuator").unwrap();
/// assert!(parts.reaches("wing", "actuator").unwrap());
/// assert_eq!(parts.descendants("wing").unwrap().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TcView {
    symbols: SymbolTable,
    base: BinaryRelation,
    closure: CompressedClosure,
}

impl Default for TcView {
    fn default() -> Self {
        Self::new()
    }
}

impl TcView {
    /// Creates an empty view with the default closure configuration.
    pub fn new() -> Self {
        Self::with_config(ClosureConfig::default())
    }

    /// Creates an empty view with an explicit closure configuration.
    pub fn with_config(config: ClosureConfig) -> Self {
        TcView {
            symbols: SymbolTable::new(),
            base: BinaryRelation::new(),
            closure: config
                .build(&DiGraph::new())
                .expect("empty graph is acyclic"),
        }
    }

    /// Interns a value, materializing a node for it. Idempotent.
    pub fn add_value(&mut self, name: &str) -> Symbol {
        let sym = self.symbols.intern(name);
        // Symbols are dense in first-seen order, matching node ids.
        if sym.index() >= self.closure.node_count() {
            let node = self
                .closure
                .add_node_with_parents(&[])
                .expect("root insertion cannot fail");
            debug_assert_eq!(node.index(), sym.index());
        }
        sym
    }

    /// Inserts the tuple `(src, dst)`, updating the materialized closure
    /// incrementally. Unknown values are interned on the fly. Returns
    /// `true` if the tuple was new.
    ///
    /// When `dst` has never been seen, it is created directly as a tree
    /// child of `src` — the paper's constant-work "addition of a tree arc"
    /// path, which keeps incrementally-grown hierarchies compressing like
    /// batch-built ones. Arcs between existing values take the non-tree
    /// path with subsumption-pruned propagation.
    pub fn insert(&mut self, src: &str, dst: &str) -> Result<bool, ViewError> {
        let s = self.add_value(src);
        if src != dst && self.symbols.lookup(dst).is_none() {
            let d = self.symbols.intern(dst);
            let dnode = self
                .closure
                .add_node_with_parents(&[node(s)])
                .expect("fresh leaf insertion cannot fail");
            debug_assert_eq!(dnode.index(), d.index());
            return Ok(self.base.insert(s, d));
        }
        let d = self.add_value(dst);
        if s == d || self.base.contains(s, d) {
            return Ok(self.base.insert(s, d));
        }
        match self.closure.add_edge(node(s), node(d)) {
            Ok(_) => Ok(self.base.insert(s, d)),
            Err(UpdateError::WouldCreateCycle { .. }) => Err(ViewError::WouldCreateCycle(
                src.to_string(),
                dst.to_string(),
            )),
            Err(other) => unreachable!("unexpected closure error: {other}"),
        }
    }

    /// Deletes the tuple `(src, dst)`, updating the closure.
    pub fn remove(&mut self, src: &str, dst: &str) -> Result<(), ViewError> {
        let s = self
            .symbols
            .lookup(src)
            .ok_or_else(|| ViewError::UnknownValue(src.to_string()))?;
        let d = self
            .symbols
            .lookup(dst)
            .ok_or_else(|| ViewError::UnknownValue(dst.to_string()))?;
        if !self.base.remove(s, d) {
            return Err(ViewError::NoSuchTuple(src.to_string(), dst.to_string()));
        }
        self.closure
            .remove_edge(node(s), node(d))
            .expect("base and closure are in sync");
        Ok(())
    }

    /// Transitive reachability by lookup: is `(src, dst)` in the closure of
    /// the base relation? Reflexive.
    pub fn reaches(&self, src: &str, dst: &str) -> Result<bool, ViewError> {
        let s = self.sym(src)?;
        let d = self.sym(dst)?;
        Ok(self.closure.reaches(node(s), node(d)))
    }

    /// All values transitively reachable from `src` (excluding itself),
    /// decoded from the compressed closure.
    pub fn descendants(&self, src: &str) -> Result<Vec<&str>, ViewError> {
        let s = self.sym(src)?;
        Ok(self
            .closure
            .successors(node(s))
            .into_iter()
            .filter(|&v| v.index() != s.index())
            .map(|v| self.symbols.name(Symbol(v.0)))
            .collect())
    }

    /// All values that transitively reach `dst` (excluding itself).
    pub fn ancestors(&self, dst: &str) -> Result<Vec<&str>, ViewError> {
        let d = self.sym(dst)?;
        Ok(self
            .closure
            .predecessors(node(d))
            .into_iter()
            .filter(|&v| v.index() != d.index())
            .map(|v| self.symbols.name(Symbol(v.0)))
            .collect())
    }

    /// The base relation.
    pub fn base(&self) -> &BinaryRelation {
        &self.base
    }

    /// The materialized closure.
    pub fn closure(&self) -> &CompressedClosure {
        &self.closure
    }

    /// The symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Rebuilds the closure from scratch with a fresh optimal tree cover
    /// (after heavy update churn).
    pub fn rebuild(&mut self) {
        self.closure.rebuild();
    }

    /// Exhaustively checks view/closure consistency (tests only: O(n·m)).
    pub fn verify(&self) -> Result<(), String> {
        self.closure.verify()
    }

    fn sym(&self, name: &str) -> Result<Symbol, ViewError> {
        self.symbols
            .lookup(name)
            .ok_or_else(|| ViewError::UnknownValue(name.to_string()))
    }

    /// Symbols that reach `of` through the closure, including `of` itself
    /// (the α-join's inner loop). Returns nothing for a symbol the view has
    /// never seen.
    pub(crate) fn ancestor_syms_inclusive(&self, of: Symbol) -> Vec<Symbol> {
        if of.index() >= self.closure.node_count() {
            return Vec::new();
        }
        self.closure
            .predecessors(node(of))
            .into_iter()
            .map(|v| Symbol(v.0))
            .collect()
    }
}

fn node(sym: Symbol) -> NodeId {
    NodeId(sym.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts_view() -> TcView {
        let mut v = TcView::new();
        for (a, b) in [
            ("plane", "wing"),
            ("plane", "fuselage"),
            ("wing", "flap"),
            ("flap", "actuator"),
            ("fuselage", "door"),
        ] {
            v.insert(a, b).unwrap();
        }
        v
    }

    #[test]
    fn closure_queries_by_name() {
        let v = parts_view();
        assert!(v.reaches("plane", "actuator").unwrap());
        assert!(v.reaches("wing", "flap").unwrap());
        assert!(!v.reaches("wing", "door").unwrap());
        assert!(v.reaches("door", "door").unwrap(), "reflexive");
        v.verify().unwrap();
    }

    #[test]
    fn descendants_and_ancestors() {
        let v = parts_view();
        let mut desc = v.descendants("wing").unwrap();
        desc.sort_unstable();
        assert_eq!(desc, vec!["actuator", "flap"]);
        let mut anc = v.ancestors("actuator").unwrap();
        anc.sort_unstable();
        assert_eq!(anc, vec!["flap", "plane", "wing"]);
    }

    #[test]
    fn unknown_values_error() {
        let v = parts_view();
        assert_eq!(
            v.reaches("plane", "warp-drive"),
            Err(ViewError::UnknownValue("warp-drive".to_string()))
        );
        assert!(v.descendants("warp-drive").is_err());
    }

    #[test]
    fn duplicate_and_self_tuples() {
        let mut v = parts_view();
        assert!(!v.insert("plane", "wing").unwrap(), "duplicate");
        // Self tuple is stored in the base but is a no-op for reachability.
        assert!(v.insert("wing", "wing").unwrap());
        assert!(v.reaches("wing", "wing").unwrap());
        v.verify().unwrap();
    }

    #[test]
    fn cycle_rejected() {
        let mut v = parts_view();
        assert_eq!(
            v.insert("actuator", "plane"),
            Err(ViewError::WouldCreateCycle(
                "actuator".to_string(),
                "plane".to_string()
            ))
        );
        // The failed insert must not corrupt the view.
        v.verify().unwrap();
        assert!(!v.base().contains(
            v.symbols().lookup("actuator").unwrap(),
            v.symbols().lookup("plane").unwrap()
        ));
    }

    #[test]
    fn deletion_updates_view() {
        let mut v = parts_view();
        v.remove("wing", "flap").unwrap();
        assert!(!v.reaches("plane", "actuator").unwrap());
        assert!(v.reaches("flap", "actuator").unwrap());
        assert_eq!(
            v.remove("wing", "flap"),
            Err(ViewError::NoSuchTuple("wing".to_string(), "flap".to_string()))
        );
        v.verify().unwrap();
    }

    #[test]
    fn reinsertion_after_delete() {
        let mut v = parts_view();
        v.remove("wing", "flap").unwrap();
        v.insert("wing", "flap").unwrap();
        assert!(v.reaches("plane", "actuator").unwrap());
        v.verify().unwrap();
    }

    #[test]
    fn rebuild_preserves_queries() {
        let mut v = parts_view();
        v.rebuild();
        assert!(v.reaches("plane", "door").unwrap());
        v.verify().unwrap();
    }

    #[test]
    fn random_churn_stays_consistent() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        let names: Vec<String> = (0..15).map(|i| format!("v{i}")).collect();
        let mut v = TcView::with_config(ClosureConfig::new().gap(64));
        for step in 0..200 {
            let a = &names[rng.random_range(0..names.len())];
            let b = &names[rng.random_range(0..names.len())];
            if rng.random_bool(0.7) {
                let _ = v.insert(a, b); // cycles rejected, that's fine
            } else if v.symbols.lookup(a).is_some() && v.symbols.lookup(b).is_some() {
                let _ = v.remove(a, b);
            }
            if step % 50 == 49 {
                v.verify().unwrap_or_else(|e| panic!("step {step}: {e}"));
            }
        }
        v.verify().unwrap();
    }
}
