//! Binary relations as tuple sets.

use std::collections::BTreeSet;

use crate::Symbol;

/// A binary relation: a set of `(source, destination)` tuples over interned
/// symbols. "A binary relation, including a 'source' field and 'destination'
/// field defined over the same domain, corresponds to a graph" (§3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BinaryRelation {
    tuples: BTreeSet<(Symbol, Symbol)>,
}

impl BinaryRelation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a tuple; returns `true` if newly inserted.
    pub fn insert(&mut self, src: Symbol, dst: Symbol) -> bool {
        self.tuples.insert((src, dst))
    }

    /// Removes a tuple; returns `true` if it was present.
    pub fn remove(&mut self, src: Symbol, dst: Symbol) -> bool {
        self.tuples.remove(&(src, dst))
    }

    /// Membership test.
    pub fn contains(&self, src: Symbol, dst: Symbol) -> bool {
        self.tuples.contains(&(src, dst))
    }

    /// Number of tuples (the relation's cardinality — the paper's storage
    /// unit for the base relation).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, Symbol)> + '_ {
        self.tuples.iter().copied()
    }

    /// Tuples whose source is `src`.
    pub fn with_source(&self, src: Symbol) -> impl Iterator<Item = Symbol> + '_ {
        self.tuples
            .range((src, Symbol(0))..=(src, Symbol(u32::MAX)))
            .map(|&(_, d)| d)
    }
}

impl FromIterator<(Symbol, Symbol)> for BinaryRelation {
    fn from_iter<I: IntoIterator<Item = (Symbol, Symbol)>>(iter: I) -> Self {
        BinaryRelation {
            tuples: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u32) -> Symbol {
        Symbol(v)
    }

    #[test]
    fn insert_remove_contains() {
        let mut r = BinaryRelation::new();
        assert!(r.insert(s(0), s(1)));
        assert!(!r.insert(s(0), s(1)), "duplicate suppressed");
        assert!(r.contains(s(0), s(1)));
        assert!(r.remove(s(0), s(1)));
        assert!(!r.remove(s(0), s(1)));
        assert!(r.is_empty());
    }

    #[test]
    fn with_source_ranges() {
        let r: BinaryRelation = [(s(1), s(2)), (s(1), s(5)), (s(2), s(3)), (s(0), s(1))]
            .into_iter()
            .collect();
        let dests: Vec<Symbol> = r.with_source(s(1)).collect();
        assert_eq!(dests, vec![s(2), s(5)]);
        assert_eq!(r.with_source(s(9)).count(), 0);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn iteration_is_sorted() {
        let r: BinaryRelation = [(s(2), s(0)), (s(0), s(1))].into_iter().collect();
        let tuples: Vec<_> = r.iter().collect();
        assert_eq!(tuples, vec![(s(0), s(1)), (s(2), s(0))]);
    }
}
