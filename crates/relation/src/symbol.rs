//! String interning for relation domains.

use std::collections::HashMap;

/// An interned domain value: a dense index into a [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A two-way mapping between domain strings and dense [`Symbol`]s.
///
/// Symbols are handed out in first-seen order, so they double as
/// [`tc_graph::NodeId`]s in the graph built from a relation.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), sym);
        sym
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// The name behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics on a symbol from a different table.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(symbol, name)` pairs in intern order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(ix, name)| (Symbol(ix as u32), name.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("engine");
        let b = t.intern("engine");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn dense_in_first_seen_order() {
        let mut t = SymbolTable::new();
        assert_eq!(t.intern("a"), Symbol(0));
        assert_eq!(t.intern("b"), Symbol(1));
        assert_eq!(t.intern("a"), Symbol(0));
        assert_eq!(t.intern("c"), Symbol(2));
    }

    #[test]
    fn lookup_and_name() {
        let mut t = SymbolTable::new();
        let s = t.intern("piston");
        assert_eq!(t.lookup("piston"), Some(s));
        assert_eq!(t.lookup("absent"), None);
        assert_eq!(t.name(s), "piston");
    }

    #[test]
    fn iteration() {
        let mut t = SymbolTable::new();
        t.intern("x");
        t.intern("y");
        let pairs: Vec<(Symbol, &str)> = t.iter().collect();
        assert_eq!(pairs, vec![(Symbol(0), "x"), (Symbol(1), "y")]);
        assert!(!t.is_empty());
    }
}
