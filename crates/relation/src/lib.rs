//! Relational layer: binary relations and the materialized closure view.
//!
//! The paper's database motivation (§1–2): a binary relation — `part_of`,
//! `reports_to`, `prerequisite` — is stored as tuples; queries need its
//! transitive closure; "frequently accessed views are computed once and
//! stored so that future queries can be answered directly, by look up" (view
//! materialization), and "updates (at least additions) to the base relation
//! are not infrequent, so the incremental cost ... should be less than
//! recomputing the transitive closure".
//!
//! * [`SymbolTable`] — string interning so relations work over names while
//!   the machinery works over dense [`tc_graph::NodeId`]s.
//! * [`BinaryRelation`] — a set of `(source, destination)` tuples with
//!   relational operators (select, union, compose, inverse).
//! * [`TcView`] — the α-operator view: a [`tc_core::CompressedClosure`]
//!   kept incrementally consistent with the base relation under tuple
//!   inserts and deletes, answering `reaches`, `descendants-of`, and
//!   `ancestors-of` by lookup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod algebra;
mod relation;
mod symbol;
mod view;

pub use algebra::{alpha_join, compose, inverse, select, union};
pub use relation::BinaryRelation;
pub use symbol::{Symbol, SymbolTable};
pub use view::{TcView, ViewError};
