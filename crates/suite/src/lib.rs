//! Host package for the workspace-level integration tests (`tests/`) and
//! runnable examples (`examples/`). The library itself re-exports the
//! public crates so examples and tests have one import root.

#![forbid(unsafe_code)]

pub use tc_baselines as baselines;
pub use tc_core as core;
pub use tc_graph as graph;
pub use tc_interval as interval;
pub use tc_kb as kb;
pub use tc_relation as relation;
pub use tc_store as store;
