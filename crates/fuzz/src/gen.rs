//! Random op-sequence generation.
//!
//! The generator drives a real [`EngineState`] while it emits ops, so the
//! trace it returns is grounded in the exact states a replay will visit —
//! node ids in later ops always refer to nodes that exist (modulo the few
//! deliberately-invalid ops it mixes in), and refinement ops land on nodes
//! whose reserve tails are genuinely live. No checks run during generation
//! (that is the replay's job); a panic inside an op is swallowed and the
//! trace is returned truncated at the panicking op, so the caller's checked
//! replay rediscovers and attributes the crash.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::engine::EngineState;
use crate::ops::{FuzzConfig, Op, OpTrace};

/// Knobs for [`generate`].
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of ops to emit.
    pub ops: usize,
    /// RNG seed; same seed + same config = same trace.
    pub seed: u64,
    /// Mix `freeze`/`thaw` ops into the stream, so updates and oracle
    /// passes run against frozen query planes as well as mutable labels.
    /// Off by default to keep pre-existing seeds producing identical
    /// traces.
    pub freeze: bool,
    /// Mix `service-publish`/`service-query` ops into the stream, pinning
    /// serving-layer snapshots mid-churn and replaying queries against them
    /// later. Off by default for the same seed-stability reason.
    pub serve: bool,
    /// Skew the op mix toward `RemoveEdge`/`RemoveNode` interleaved with
    /// refines and relabels, so the deletion recompute paths (scoped and
    /// global) see as much churn as insertion does. Off by default for the
    /// same seed-stability reason.
    pub delete_bias: bool,
    /// Mix `paged-probe` ops into the stream, round-tripping the closure
    /// through the out-of-core `PLN1` format mid-churn and lockstep-
    /// comparing the paged answers. Off by default for the same
    /// seed-stability reason.
    pub paged: bool,
    /// The closure configuration the trace runs under.
    pub config: FuzzConfig,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            ops: 256,
            seed: 0,
            freeze: false,
            serve: false,
            delete_bias: false,
            paged: false,
            config: FuzzConfig::default(),
        }
    }
}

/// Emits one random op given the current relation state. Kind weights skew
/// toward growth (a shrinking relation fuzzes nothing) with a steady diet
/// of deletions, relabels and rebuilds to exercise tombstone churn.
fn next_op(
    rng: &mut StdRng,
    state: &EngineState,
    config: &FuzzConfig,
    freeze: bool,
    serve: bool,
    delete_bias: bool,
    paged: bool,
) -> Op {
    let n = state.mirror.node_count() as u32;
    if n == 0 {
        return Op::AddNode { parents: vec![] };
    }
    let any = |rng: &mut StdRng| rng.random_range(0..n);
    // Each knob is guarded before any RNG draw so that with the knob off,
    // existing seeds keep producing byte-identical traces.
    if freeze && rng.random_range(0..8u32) == 0 {
        return if rng.random_bool(0.7) { Op::Freeze } else { Op::Thaw };
    }
    // Publishes outnumber queries: a query checks the *pinned* view, so the
    // interesting sequences re-pin often and query while churn diverges.
    if serve && rng.random_range(0..10u32) == 0 {
        return if rng.random_bool(0.6) { Op::ServicePublish } else { Op::ServiceQuery };
    }
    // Paged probes are a full round trip plus an exhaustive comparison, so
    // they stay rare — enough to catch a divergence, cheap enough to leave
    // the update mix dominant.
    if paged && rng.random_range(0..12u32) == 0 {
        return Op::PagedProbe;
    }
    // Half of all ops become deletion-flavoured: arc and node removals
    // salted with refines and relabels, which are exactly the ops that
    // interact with quarantined point labels and tombstone churn.
    if delete_bias && rng.random_range(0..2u32) == 0 {
        return match rng.random_range(0..10u32) {
            0..=5 => {
                let edges: Vec<(u32, u32)> =
                    state.mirror.edges().map(|(s, d)| (s.0, d.0)).collect();
                match edges.choose(rng) {
                    Some(&(src, dst)) => Op::RemoveEdge { src, dst },
                    None => Op::AddEdge { src: any(rng), dst: any(rng) },
                }
            }
            6 | 7 => Op::RemoveNode { node: any(rng) },
            8 => {
                if config.reserve > 0 {
                    Op::Refine { child: any(rng) }
                } else {
                    Op::RemoveNode { node: any(rng) }
                }
            }
            _ => Op::Relabel,
        };
    }
    match rng.random_range(0..100u32) {
        // Node additions: roots, single-parent leaves, multi-parent joins —
        // occasionally with duplicate parents to exercise the dedup path.
        0..=34 => {
            let count = match rng.random_range(0..10u32) {
                0 => 0,
                1..=6 => 1,
                7 | 8 => 2,
                _ => 3,
            };
            let mut parents: Vec<u32> = (0..count).map(|_| any(rng)).collect();
            if !parents.is_empty() && rng.random_bool(0.1) {
                parents.push(parents[0]);
            }
            Op::AddNode { parents }
        }
        // Non-tree arcs; the engine skips self-loops, duplicates and cycles.
        35..=59 => Op::AddEdge { src: any(rng), dst: any(rng) },
        // Deletions target real arcs when any exist (random endpoints almost
        // never hit one of the O(n) arcs in a sparse relation).
        60..=74 => {
            let edges: Vec<(u32, u32)> =
                state.mirror.edges().map(|(s, d)| (s.0, d.0)).collect();
            match edges.choose(rng) {
                Some(&(src, dst)) => Op::RemoveEdge { src, dst },
                None => Op::AddEdge { src: any(rng), dst: any(rng) },
            }
        }
        75..=81 => Op::RemoveNode { node: any(rng) },
        // Refinement: pointless without a reserve, so re-roll into an arc.
        82..=91 => {
            if config.reserve > 0 {
                Op::Refine { child: any(rng) }
            } else {
                Op::AddEdge { src: any(rng), dst: any(rng) }
            }
        }
        92..=94 => Op::Relabel,
        95 | 96 => Op::Rebuild,
        // Thread-count flips cover the serial and parallel code paths of
        // batch queries, relabels and rebuilds within a single trace.
        _ => Op::SetThreads { threads: *[0usize, 1, 2, 4].choose(rng).expect("non-empty") },
    }
}

/// Generates `cfg.ops` random ops by simulating them against a live engine.
/// If an op panics mid-generation the trace is returned truncated at that
/// op (replaying it reproduces the panic); if the configuration itself is
/// invalid the trace is returned with no ops.
pub fn generate(cfg: &GenConfig) -> OpTrace {
    let mut trace = OpTrace { config: cfg.config, ops: Vec::with_capacity(cfg.ops) };
    let Ok(mut state) = EngineState::new(&cfg.config) else {
        return trace;
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _ in 0..cfg.ops {
        let op = next_op(
            &mut rng,
            &state,
            &cfg.config,
            cfg.freeze,
            cfg.serve,
            cfg.delete_bias,
            cfg.paged,
        );
        trace.ops.push(op.clone());
        let outcome = catch_unwind(AssertUnwindSafe(|| state.apply(&op)));
        match outcome {
            Ok(Ok(_)) => {}
            // An unexpected update error or a panic: stop here; the trace
            // ends at the offending op and the checked replay will classify
            // the failure.
            Ok(Err(_)) | Err(_) => break,
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_trace, CheckOptions};

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig { ops: 120, seed: 42, ..GenConfig::default() };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = GenConfig { seed: 43, ..cfg };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn generated_traces_mostly_apply() {
        let cfg = GenConfig {
            ops: 200,
            seed: 7,
            config: FuzzConfig {
                gap: 64,
                reserve: 4,
                merge: true,
                threads: 2,
                ..FuzzConfig::default()
            },
            ..GenConfig::default()
        };
        let trace = generate(&cfg);
        assert_eq!(trace.ops.len(), 200);
        let report = run_trace(&trace, &CheckOptions::default()).unwrap();
        // The generator grounds ops in real state, so the skip rate stays
        // low (duplicate arcs, cycle attempts, exhausted reserves).
        assert!(report.applied > 140, "only {} of 200 ops applied", report.applied);
        assert!(report.final_nodes > 20);
    }

    #[test]
    fn generated_traces_replay_from_text() {
        let cfg = GenConfig { ops: 80, seed: 11, ..GenConfig::default() };
        let trace = generate(&cfg);
        let reparsed = OpTrace::parse(&trace.to_text()).unwrap();
        assert_eq!(reparsed, trace);
        run_trace(&reparsed, &CheckOptions::default()).unwrap();
    }

    #[test]
    fn freeze_knob_mixes_in_freeze_ops_and_replays_clean() {
        let cfg = GenConfig {
            ops: 200,
            seed: 3,
            freeze: true,
            config: FuzzConfig { gap: 64, reserve: 4, ..FuzzConfig::default() },
            ..GenConfig::default()
        };
        let trace = generate(&cfg);
        let freezes = trace.ops.iter().filter(|op| matches!(op, Op::Freeze)).count();
        let thaws = trace.ops.iter().filter(|op| matches!(op, Op::Thaw)).count();
        assert!(freezes > 0, "no freeze ops in 200");
        assert!(thaws > 0, "no thaw ops in 200");
        run_trace(&trace, &CheckOptions::default()).unwrap();
        // The knob only adds ops; it never changes what off-knob seeds emit.
        let plain = generate(&GenConfig { freeze: false, ..cfg });
        assert!(plain.ops.iter().all(|op| !matches!(op, Op::Freeze | Op::Thaw)));
    }

    #[test]
    fn serve_knob_mixes_in_service_ops_and_replays_clean() {
        let cfg = GenConfig {
            ops: 200,
            seed: 5,
            serve: true,
            config: FuzzConfig { gap: 64, reserve: 4, ..FuzzConfig::default() },
            ..GenConfig::default()
        };
        let trace = generate(&cfg);
        let publishes = trace.ops.iter().filter(|op| matches!(op, Op::ServicePublish)).count();
        let queries = trace.ops.iter().filter(|op| matches!(op, Op::ServiceQuery)).count();
        assert!(publishes > 0, "no service-publish ops in 200");
        assert!(queries > 0, "no service-query ops in 200");
        run_trace(&trace, &CheckOptions::default()).unwrap();
        // The knob only adds ops; off-knob seeds are untouched.
        let plain = generate(&GenConfig { serve: false, ..cfg });
        assert!(plain.ops.iter().all(|op| !matches!(op, Op::ServicePublish | Op::ServiceQuery)));
    }

    #[test]
    fn paged_knob_mixes_in_paged_probes_and_replays_clean() {
        let cfg = GenConfig {
            ops: 200,
            seed: 13,
            paged: true,
            delete_bias: true, // tombstones + relocations feed the round trip
            config: FuzzConfig { gap: 64, reserve: 4, ..FuzzConfig::default() },
            ..GenConfig::default()
        };
        let trace = generate(&cfg);
        let probes = trace.ops.iter().filter(|op| matches!(op, Op::PagedProbe)).count();
        assert!(probes > 0, "no paged-probe ops in 200");
        run_trace(&trace, &CheckOptions::default()).unwrap();
        // The knob only adds ops; off-knob seeds are untouched.
        let plain = generate(&GenConfig { paged: false, ..cfg });
        assert!(plain.ops.iter().all(|op| !matches!(op, Op::PagedProbe)));
    }

    #[test]
    fn delete_bias_knob_skews_toward_removals_and_replays_clean() {
        let cfg = GenConfig {
            ops: 240,
            seed: 9,
            delete_bias: true,
            config: FuzzConfig { gap: 64, reserve: 4, ..FuzzConfig::default() },
            ..GenConfig::default()
        };
        let removals = |trace: &OpTrace| {
            trace
                .ops
                .iter()
                .filter(|op| matches!(op, Op::RemoveEdge { .. } | Op::RemoveNode { .. }))
                .count()
        };
        let biased = generate(&cfg);
        run_trace(&biased, &CheckOptions::default()).unwrap();
        let plain = generate(&GenConfig { delete_bias: false, ..cfg });
        run_trace(&plain, &CheckOptions::default()).unwrap();
        assert!(
            removals(&biased) > removals(&plain),
            "bias did not raise removal count: {} vs {}",
            removals(&biased),
            removals(&plain)
        );
        // Replaying the same biased seed through the global sweep must also
        // come out clean — the two deletion recomputes oracle each other.
        let global = OpTrace {
            config: FuzzConfig { scoped: false, ..biased.config },
            ops: biased.ops.clone(),
        };
        run_trace(&global, &CheckOptions::default()).unwrap();
    }

    #[test]
    fn hybrid_config_replays_clean_under_freeze_churn() {
        // Every freeze in these traces builds a hybrid plane; the per-step
        // audit and differential oracle cross-check it against the mutable
        // labels. Threshold 0 forces a bitset row on every node; threshold 2
        // mixes both representations in one plane.
        for hybrid in [0, 2] {
            let cfg = GenConfig {
                ops: 200,
                seed: 3,
                freeze: true,
                paged: true,
                config: FuzzConfig { gap: 64, reserve: 4, hybrid, ..FuzzConfig::default() },
                ..GenConfig::default()
            };
            let trace = generate(&cfg);
            assert!(trace.ops.iter().any(|op| matches!(op, Op::Freeze)));
            run_trace(&trace, &CheckOptions::default())
                .unwrap_or_else(|e| panic!("hybrid {hybrid}: {e}"));
            // The knob changes the closure config, never the op stream.
            let plain_cfg = GenConfig {
                config: FuzzConfig { hybrid: u64::MAX, ..cfg.config },
                ..cfg
            };
            assert_eq!(generate(&plain_cfg).ops, trace.ops);
        }
    }

    #[test]
    fn invalid_config_yields_empty_trace() {
        let cfg = GenConfig {
            ops: 10,
            seed: 0,
            config: FuzzConfig { gap: 1, reserve: 3, ..FuzzConfig::default() },
            ..GenConfig::default()
        };
        assert!(generate(&cfg).ops.is_empty());
    }
}
