//! Trace execution: the closure under test, a lockstep mirror graph, the
//! structural audit after every applied op, and the differential oracles.
//!
//! The engine holds two models of the same evolving relation:
//!
//! * the [`CompressedClosure`] under test, driven through its §4 update API;
//! * a plain [`DiGraph`] **mirror**, updated by trivially-correct edge-list
//!   surgery.
//!
//! Every applied op is followed (optionally) by
//! [`CompressedClosure::audit`]; periodically the closure's answers are
//! compared against a brute-force DFS closure of the mirror
//! ([`tc_graph::traverse::closure_rows`]) and against an independently
//! implemented chain-decomposition index ([`tc_baselines::ChainIndex`])
//! rebuilt from the mirror.
//!
//! ## Skip rules
//!
//! Ops whose operands are invalid in the current state are **skipped**
//! (state untouched) rather than treated as failures, under rules that are
//! pure functions of the mirror — this is what makes traces shrinkable:
//! deleting a prefix op can turn a later op into a skip, never into an
//! unreplayable trace.
//!
//! | op | skipped when |
//! |----|--------------|
//! | `add-node` | never (out-of-range parents are dropped from the list) |
//! | `add-edge` | endpoint out of range, self-loop, arc already present, or the arc would create a cycle |
//! | `remove-edge` | endpoint out of range or arc absent |
//! | `remove-node` | node out of range |
//! | `refine` | node out of range, or the closure reports `ReserveExhausted` |
//! | `relabel` / `rebuild` / `set-threads` | never |
//! | `freeze` / `thaw` | never |
//! | `service-publish` | never |
//! | `service-query` | nothing published yet |
//! | `paged-probe` | never |
//!
//! `freeze`/`thaw` never mutate the relation, but they count as *applied* so
//! the per-step audit (which cross-checks a frozen plane against the mutable
//! labeling) and subsequent oracle passes run against the flipped query
//! path — the whole point of fuzzing them.
//!
//! `refine` is the one rule that consults the closure rather than the
//! mirror: reserve-tail headroom is label state with no mirror analogue.
//! The outcome is still deterministic, so replay and shrinking stay sound.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use tc_baselines::{ChainIndex, ReachabilityIndex};
use tc_core::serve::{ServiceConfig, ServiceOp, ServiceSnapshot};
use tc_core::{
    CompressedClosure, PagedPlane, ShardedClosure, ShardedReader, ShardedService, UpdateError,
};
use tc_graph::{traverse, DiGraph, NodeId};

use crate::ops::{FuzzConfig, Op, OpTrace};

/// What the engine checks while replaying a trace.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Run [`CompressedClosure::audit`] after every applied op.
    pub audit_every_step: bool,
    /// Run the full differential oracle every this many applied ops
    /// (`0` = only once, after the final op).
    pub oracle_every: usize,
    /// Cross-check reachability against [`ChainIndex`] during oracle runs.
    pub baseline: bool,
    /// When `> 1`, drive a [`ShardedService`] with that many shards in
    /// lockstep with the closure under test: every op the engine *applies*
    /// is forwarded, flushed, and the scatter-gather answers are compared
    /// after each step (sampled) and at every oracle pass (exhaustively).
    pub shards: usize,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            audit_every_step: true,
            oracle_every: 64,
            baseline: true,
            shards: 1,
        }
    }
}

/// Why a trace failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The trace's configuration cannot build a closure.
    Config,
    /// An update call returned an error the skip rules say cannot happen.
    Update,
    /// [`CompressedClosure::audit`] rejected the structure.
    Audit,
    /// The closure's answers diverged from the DFS closure of the mirror.
    Oracle,
    /// The chain-decomposition baseline disagreed with the DFS closure
    /// (an oracle bug, not a closure bug — still worth a reproducer).
    Baseline,
    /// A pinned service snapshot's answers diverged from the DFS closure of
    /// the relation as it was when that snapshot was published.
    Service,
    /// The out-of-core `PLN1` round trip failed, or the paged plane's
    /// answers diverged from the closure under test.
    Paged,
    /// The lockstep [`ShardedService`] replica diverged from the closure
    /// under test (or its front end rejected / its writers skipped an op
    /// the reference engine applied).
    Sharded,
    /// The op (or a check after it) panicked.
    Panic,
}

/// A trace failure: which op, which check, and the details.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index of the op being executed when the failure surfaced (`None`
    /// for configuration failures before the first op).
    pub step: Option<usize>,
    /// The check that failed.
    pub kind: ViolationKind,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            Some(s) => write!(f, "step {s}: {:?}: {}", self.kind, self.detail),
            None => write!(f, "{:?}: {}", self.kind, self.detail),
        }
    }
}

/// Summary of a successful trace replay.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunReport {
    /// Ops that mutated state.
    pub applied: usize,
    /// Ops skipped under the documented rules.
    pub skipped: usize,
    /// Differential oracle passes performed.
    pub oracle_checks: usize,
    /// Node count at the end of the trace.
    pub final_nodes: usize,
    /// Edge count at the end of the trace.
    pub final_edges: usize,
}

/// A pinned serving-layer view: the snapshot [`Op::ServicePublish`]
/// captured plus the mirror relation as it was at that moment (the oracle
/// [`Op::ServiceQuery`] replays against).
pub struct PublishedView {
    /// The frozen snapshot, exactly as a service reader would pin it.
    pub snapshot: ServiceSnapshot,
    /// The relation at publish time.
    pub mirror: DiGraph,
}

/// The lockstep sharded replica: a [`ShardedService`] that receives
/// exactly the ops the reference engine applied, flushed after every
/// forward so its scatter-gather answers are comparable.
pub struct ShardedLockstep {
    service: ShardedService,
    reader: ShardedReader,
    /// Ops forwarded so far (seeds the sampling hash so consecutive
    /// quick checks probe different pairs).
    forwarded: u64,
}

/// Live replay state: the closure under test plus its mirror relation.
pub struct EngineState {
    /// The interval-compressed closure being fuzzed.
    pub closure: CompressedClosure,
    /// The trivially-maintained mirror of the same relation.
    pub mirror: DiGraph,
    /// The most recent [`Op::ServicePublish`] capture, if any.
    pub published: Option<PublishedView>,
    /// The lockstep sharded replica, when [`CheckOptions::shards`] > 1.
    pub sharded: Option<ShardedLockstep>,
}

impl EngineState {
    /// Starts from an empty relation under `config`.
    pub fn new(config: &FuzzConfig) -> Result<Self, Violation> {
        let cc = config.closure_config().map_err(|detail| Violation {
            step: None,
            kind: ViolationKind::Config,
            detail,
        })?;
        let mirror = DiGraph::new();
        let closure = cc.build(&mirror).expect("empty graph is acyclic");
        Ok(EngineState { closure, mirror, published: None, sharded: None })
    }

    /// Attaches a lockstep [`ShardedService`] replica with `shards` shards,
    /// seeded from the current relation. Every subsequently *applied* op is
    /// forwarded to it and the composed answers are compared.
    pub fn enable_sharding(&mut self, shards: usize, config: &FuzzConfig) -> Result<(), Violation> {
        let cc = config.closure_config().map_err(|detail| Violation {
            step: None,
            kind: ViolationKind::Config,
            detail,
        })?;
        let sc = ShardedClosure::build(cc, &self.mirror, shards).map_err(|e| Violation {
            step: None,
            kind: ViolationKind::Config,
            detail: format!("sharded build failed: {e:?}"),
        })?;
        let service = ShardedService::start(sc, ServiceConfig::new());
        let reader = service.reader();
        self.sharded = Some(ShardedLockstep { service, reader, forwarded: 0 });
        Ok(())
    }

    fn in_range(&self, id: u32) -> bool {
        (id as usize) < self.mirror.node_count()
    }

    /// Applies one op. `Ok(true)` = state mutated, `Ok(false)` = skipped,
    /// `Err` = the closure returned an error the skip rules rule out, or a
    /// service-snapshot check failed.
    pub fn apply(&mut self, op: &Op) -> Result<bool, (ViolationKind, String)> {
        let update = |detail: String| (ViolationKind::Update, detail);
        match op {
            Op::AddNode { parents } => {
                let valid: Vec<NodeId> = parents
                    .iter()
                    .filter(|&&p| self.in_range(p))
                    .map(|&p| NodeId(p))
                    .collect();
                let z = self
                    .closure
                    .add_node_with_parents(&valid)
                    .map_err(|e| update(format!("add_node_with_parents({valid:?}): {e}")))?;
                let m = self.mirror.add_node();
                debug_assert_eq!(z, m);
                for &p in &valid {
                    self.mirror.add_edge(p, z); // duplicates collapse
                }
                self.forward_sharded(ServiceOp::AddNode { parents: valid })?;
                Ok(true)
            }
            Op::AddEdge { src, dst } => {
                if !self.in_range(*src) || !self.in_range(*dst) || src == dst {
                    return Ok(false);
                }
                let (s, d) = (NodeId(*src), NodeId(*dst));
                if self.mirror.has_edge(s, d) || traverse::reaches(&self.mirror, d, s) {
                    return Ok(false);
                }
                let fresh = self
                    .closure
                    .add_edge(s, d)
                    .map_err(|e| update(format!("add_edge({s:?},{d:?}): {e}")))?;
                if !fresh {
                    return Err(update(format!(
                        "add_edge({s:?},{d:?}) reported a duplicate the mirror does not have"
                    )));
                }
                self.mirror.add_edge(s, d);
                self.forward_sharded(ServiceOp::AddEdge { src: s, dst: d })?;
                Ok(true)
            }
            Op::RemoveEdge { src, dst } => {
                if !self.in_range(*src) || !self.in_range(*dst) {
                    return Ok(false);
                }
                let (s, d) = (NodeId(*src), NodeId(*dst));
                if !self.mirror.has_edge(s, d) {
                    return Ok(false);
                }
                self.closure
                    .remove_edge(s, d)
                    .map_err(|e| update(format!("remove_edge({s:?},{d:?}): {e}")))?;
                self.mirror.remove_edge(s, d);
                self.forward_sharded(ServiceOp::RemoveEdge { src: s, dst: d })?;
                Ok(true)
            }
            Op::RemoveNode { node } => {
                if !self.in_range(*node) {
                    return Ok(false);
                }
                let v = NodeId(*node);
                self.closure
                    .remove_node(v)
                    .map_err(|e| update(format!("remove_node({v:?}): {e}")))?;
                // The closure quarantines the node (dense ids keep the slot,
                // reaching only itself); the mirror equivalent is stripping
                // every incident arc.
                for d in self.mirror.successors(v).to_vec() {
                    self.mirror.remove_edge(v, d);
                }
                for s in self.mirror.predecessors(v).to_vec() {
                    self.mirror.remove_edge(s, v);
                }
                self.forward_sharded(ServiceOp::RemoveNode { node: v })?;
                Ok(true)
            }
            Op::Refine { child } => {
                if !self.in_range(*child) {
                    return Ok(false);
                }
                let c = NodeId(*child);
                let parents: Vec<NodeId> = self.mirror.predecessors(c).to_vec();
                match self.closure.refine_insert(c, &parents) {
                    Ok(z) => {
                        let m = self.mirror.add_node();
                        debug_assert_eq!(z, m);
                        for &p in &parents {
                            self.mirror.add_edge(p, z);
                        }
                        self.mirror.add_edge(z, c);
                        // The sharded front end reads the predecessor list
                        // from its own mirror, which is exactly one op
                        // behind — i.e. the pre-refinement parents.
                        self.forward_sharded(ServiceOp::Refine { child: c })?;
                        Ok(true)
                    }
                    Err(UpdateError::ReserveExhausted(_)) => Ok(false),
                    Err(e) => Err(update(format!("refine_insert({c:?},{parents:?}): {e}"))),
                }
            }
            Op::Relabel => {
                self.closure.relabel();
                self.forward_sharded(ServiceOp::Relabel)?;
                Ok(true)
            }
            Op::Rebuild => {
                self.closure.rebuild();
                self.forward_sharded(ServiceOp::Rebuild)?;
                Ok(true)
            }
            Op::SetThreads { threads } => {
                self.closure.set_threads(*threads);
                Ok(true)
            }
            Op::Freeze => {
                self.closure.freeze();
                Ok(true)
            }
            Op::Thaw => {
                self.closure.thaw();
                Ok(true)
            }
            Op::ServicePublish => {
                self.published = Some(PublishedView {
                    snapshot: ServiceSnapshot::capture(&self.closure),
                    mirror: self.mirror.clone(),
                });
                Ok(true)
            }
            Op::ServiceQuery => match &self.published {
                None => Ok(false),
                Some(view) => {
                    check_published(view).map_err(|detail| (ViolationKind::Service, detail))?;
                    Ok(true)
                }
            },
            Op::PagedProbe => {
                self.check_paged().map_err(|detail| (ViolationKind::Paged, detail))?;
                Ok(true)
            }
        }
    }

    /// Round-trips the closure through the `PLN1` out-of-core format and
    /// compares the paged plane's answers — served through a 2-frame pool,
    /// so nearly every probe evicts — against the closure under test:
    /// every successor set, every predecessor set, every successor count,
    /// and the shared deterministic point-query sample.
    fn check_paged(&self) -> Result<(), String> {
        let bytes = self.closure.to_paged_bytes();
        let plane = PagedPlane::open_from_bytes(&bytes, 2)
            .map_err(|e| format!("open_from_bytes on a freshly written stream: {e}"))?;
        let n = self.mirror.node_count();
        if plane.node_count() != n {
            return Err(format!(
                "paged plane has {} nodes, closure has {n}",
                plane.node_count()
            ));
        }
        for v in 0..n as u32 {
            let node = NodeId(v);
            let mut got = plane.successors(node);
            got.sort_unstable_by_key(|u| u.index());
            let mut want = self.closure.successors(node);
            want.sort_unstable_by_key(|u| u.index());
            if got != want {
                return Err(format!(
                    "paged successors({v}) = {got:?}, closure says {want:?}"
                ));
            }
            if plane.successor_count(node) != want.len() {
                return Err(format!(
                    "paged successor_count({v}) = {}, closure says {}",
                    plane.successor_count(node),
                    want.len()
                ));
            }
            let got_preds = plane.predecessors(node);
            let mut want_preds = self.closure.predecessors(node);
            want_preds.sort_unstable();
            if got_preds != want_preds {
                return Err(format!(
                    "paged predecessors({v}) = {got_preds:?}, closure says {want_preds:?}"
                ));
            }
        }
        if n > 0 {
            let samples = (4 * n).min(1024);
            for k in 0..samples as u64 {
                let (s, d) = sample_pair(k, n);
                let got = plane.reaches(s, d);
                let want = self.closure.reaches(s, d);
                if got != want {
                    return Err(format!(
                        "paged reaches({s:?},{d:?}) = {got}, closure says {want}"
                    ));
                }
            }
        }
        plane
            .verify_payload()
            .map_err(|e| format!("verify_payload on a freshly written stream: {e}"))
    }

    /// Full differential pass: decoded successor sets and batched point
    /// queries against the DFS closure of the mirror, plus (optionally) the
    /// chain baseline. Returns an error string naming the first divergence.
    pub fn differential_check(&self, baseline: bool) -> Result<(), (ViolationKind, String)> {
        let n = self.mirror.node_count();
        let rows = traverse::closure_rows(&self.mirror);

        // Every successor set, decoded in full.
        for (v, row) in rows.iter().enumerate() {
            let mut got: Vec<usize> =
                self.closure.successors(NodeId(v as u32)).iter().map(|u| u.index()).collect();
            got.sort_unstable();
            let want: Vec<usize> = row.iter().collect();
            if got != want {
                let extra: Vec<usize> = got.iter().copied().filter(|u| !want.contains(u)).collect();
                let missing: Vec<usize> =
                    want.iter().copied().filter(|u| !got.contains(u)).collect();
                return Err((
                    ViolationKind::Oracle,
                    format!(
                        "successors({v}) diverge from DFS closure: spurious {extra:?}, missing {missing:?}"
                    ),
                ));
            }
        }

        // A deterministic sample of point queries through `reaches_batch`
        // (exercising the parallel chunking path) and the chain baseline.
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        if n > 0 {
            let samples = (4 * n).min(4096);
            for k in 0..samples as u64 {
                let s = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n;
                let d = (k.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 32) as usize % n;
                pairs.push((NodeId(s as u32), NodeId(d as u32)));
            }
        }
        let answers = self.closure.reaches_batch(&pairs);
        for (&(s, d), &got) in pairs.iter().zip(&answers) {
            let want = rows[s.index()].contains(d.index());
            if got != want {
                return Err((
                    ViolationKind::Oracle,
                    format!("reaches({s:?},{d:?}) = {got}, DFS closure says {want}"),
                ));
            }
        }

        if baseline {
            let chain = ChainIndex::build_greedy(&self.mirror)
                .map_err(|e| (ViolationKind::Baseline, format!("chain build failed: {e:?}")))?;
            for &(s, d) in &pairs {
                let got = chain.reaches(s, d);
                let want = rows[s.index()].contains(d.index());
                if got != want {
                    return Err((
                        ViolationKind::Baseline,
                        format!("chain baseline reaches({s:?},{d:?}) = {got}, DFS says {want}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Forwards one applied op to the lockstep sharded replica (no-op when
    /// sharding is off), flushes it, and runs a sampled comparison against
    /// the closure under test: the front end must reject nothing, the
    /// per-shard writers must skip nothing, and 32 point probes plus 4
    /// decoded successor sets must agree.
    fn forward_sharded(&mut self, op: ServiceOp) -> Result<(), (ViolationKind, String)> {
        let Some(ls) = self.sharded.as_mut() else {
            return Ok(());
        };
        let viol = |detail: String| (ViolationKind::Sharded, detail);
        ls.service.submit(op.clone()).expect("lockstep service closed mid-trace");
        ls.forwarded += 1;
        let stats = ls.service.flush();
        if stats.rejected != 0 {
            return Err(viol(format!(
                "front end rejected {} op(s) the reference engine applied (last forwarded: {op:?})",
                stats.rejected
            )));
        }
        if stats.skipped != 0 {
            return Err(viol(format!(
                "shard writers skipped {} op(s) behind the validating front end (last forwarded: {op:?})",
                stats.skipped
            )));
        }
        if let Some(v) = stats.audit_violation {
            return Err(viol(format!("per-shard audit after {op:?}: {v}")));
        }
        let n = self.mirror.node_count();
        if n == 0 {
            return Ok(());
        }
        let seed = ls.forwarded.wrapping_mul(131);
        for k in 0..32u64 {
            let (s, d) = sample_pair(seed.wrapping_add(k), n);
            let want = self.closure.reaches(s, d);
            let got = ls.reader.reaches(s, d);
            if got != want {
                return Err(viol(format!(
                    "after {op:?}: sharded reaches({s:?},{d:?}) = {got}, closure under test says {want}"
                )));
            }
        }
        for k in 0..4u64 {
            let (v, _) = sample_pair(seed.wrapping_add(64 + k), n);
            let mut got: Vec<NodeId> = ls.reader.successors(v);
            got.sort_unstable_by_key(|u| u.index());
            let mut want: Vec<NodeId> = self.closure.successors(v);
            want.sort_unstable_by_key(|u| u.index());
            if got != want {
                return Err(viol(format!(
                    "after {op:?}: sharded successors({v:?}) = {got:?}, closure under test says {want:?}"
                )));
            }
        }
        Ok(())
    }

    /// Exhaustive comparison of the lockstep sharded replica against the
    /// DFS closure of the mirror: every successor and predecessor set plus
    /// the same deterministic point-query sample as the live oracle, routed
    /// through the scatter-gather batch path. No-op when sharding is off.
    pub fn sharded_full_check(&mut self) -> Result<(), (ViolationKind, String)> {
        let Some(ls) = self.sharded.as_mut() else {
            return Ok(());
        };
        let viol = |detail: String| (ViolationKind::Sharded, detail);
        let n = self.mirror.node_count();
        let rows = traverse::closure_rows(&self.mirror);
        for (v, row) in rows.iter().enumerate() {
            let node = NodeId(v as u32);
            let mut got: Vec<usize> = ls.reader.successors(node).iter().map(|u| u.index()).collect();
            got.sort_unstable();
            let want: Vec<usize> = row.iter().collect();
            if got != want {
                return Err(viol(format!(
                    "sharded successors({v}) = {got:?}, DFS closure says {want:?}"
                )));
            }
            let mut preds: Vec<usize> =
                ls.reader.predecessors(node).iter().map(|u| u.index()).collect();
            preds.sort_unstable();
            let want_preds: Vec<usize> = (0..n).filter(|&u| rows[u].contains(v)).collect();
            if preds != want_preds {
                return Err(viol(format!(
                    "sharded predecessors({v}) = {preds:?}, DFS closure says {want_preds:?}"
                )));
            }
        }
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        if n > 0 {
            let samples = (4 * n).min(4096);
            for k in 0..samples as u64 {
                pairs.push(sample_pair(k, n));
            }
        }
        let answers = ls.reader.reaches_batch(&pairs);
        for (&(s, d), &got) in pairs.iter().zip(&answers) {
            let want = rows[s.index()].contains(d.index());
            if got != want {
                return Err(viol(format!(
                    "sharded batch reaches({s:?},{d:?}) = {got}, DFS closure says {want}"
                )));
            }
        }
        Ok(())
    }

    /// Shuts the lockstep replica down, auditing and verifying the
    /// reassembled offline [`ShardedClosure`]. No-op when sharding is off.
    pub fn finish_sharded(&mut self) -> Result<(), (ViolationKind, String)> {
        let Some(ls) = self.sharded.take() else {
            return Ok(());
        };
        let viol = |detail: String| (ViolationKind::Sharded, detail);
        let (stats, sc) = ls.service.shutdown();
        if stats.skipped != 0 {
            return Err(viol(format!("shard writers skipped {} op(s)", stats.skipped)));
        }
        if let Some(v) = stats.audit_violation {
            return Err(viol(format!("per-shard audit at shutdown: {v}")));
        }
        sc.audit().map_err(|e| viol(format!("reassembled sharded closure audit: {e}")))?;
        sc.verify().map_err(|e| viol(format!("reassembled sharded closure verify: {e}")))?;
        Ok(())
    }
}

/// The multiplicative-hash pair sample shared by every oracle.
fn sample_pair(k: u64, n: usize) -> (NodeId, NodeId) {
    let s = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n;
    let d = (k.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 32) as usize % n;
    (NodeId(s as u32), NodeId(d as u32))
}

/// Checks every answer a pinned service snapshot can give against the DFS
/// closure of the relation as it was at publish time: full successor and
/// predecessor sets, successor counts, and a deterministic sample of point
/// queries (the same multiplicative-hash sample as the live oracle).
fn check_published(view: &PublishedView) -> Result<(), String> {
    let snap = &view.snapshot;
    let n = view.mirror.node_count();
    if snap.node_count() != n {
        return Err(format!(
            "published snapshot has {} nodes, publish-time mirror has {n}",
            snap.node_count()
        ));
    }
    let rows = traverse::closure_rows(&view.mirror);
    for (v, row) in rows.iter().enumerate() {
        let node = NodeId(v as u32);
        let mut got: Vec<usize> = snap.successors(node).iter().map(|u| u.index()).collect();
        got.sort_unstable();
        let want: Vec<usize> = row.iter().collect();
        if got != want {
            return Err(format!("snapshot successors({v}) = {got:?}, publish-time DFS says {want:?}"));
        }
        if snap.successor_count(node) != want.len() {
            return Err(format!(
                "snapshot successor_count({v}) = {}, publish-time DFS says {}",
                snap.successor_count(node),
                want.len()
            ));
        }
        let preds: Vec<usize> = snap.predecessors(node).iter().map(|u| u.index()).collect();
        let want_preds: Vec<usize> = (0..n).filter(|&u| rows[u].contains(v)).collect();
        if preds != want_preds {
            return Err(format!(
                "snapshot predecessors({v}) = {preds:?}, publish-time DFS says {want_preds:?}"
            ));
        }
    }
    if n > 0 {
        let samples = (4 * n).min(4096);
        for k in 0..samples as u64 {
            let s = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n;
            let d = (k.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 32) as usize % n;
            let got = snap.reaches(NodeId(s as u32), NodeId(d as u32));
            let want = rows[s].contains(d);
            if got != want {
                return Err(format!(
                    "snapshot reaches({s},{d}) = {got}, publish-time DFS says {want}"
                ));
            }
        }
    }
    Ok(())
}

/// Replays `trace` with the given checks. Panics inside ops propagate —
/// use [`run_trace_catching`] when the trace may crash.
pub fn run_trace(trace: &OpTrace, opts: &CheckOptions) -> Result<RunReport, Violation> {
    run_trace_observed(trace, opts, |_| {})
}

/// [`run_trace`] with a progress callback invoked with each op index just
/// before that op executes — the hook [`run_trace_catching`] uses to
/// attribute panics to a step.
fn run_trace_observed(
    trace: &OpTrace,
    opts: &CheckOptions,
    mut before_step: impl FnMut(usize),
) -> Result<RunReport, Violation> {
    let mut state = EngineState::new(&trace.config)?;
    if opts.shards > 1 {
        state.enable_sharding(opts.shards, &trace.config)?;
    }
    let mut report = RunReport::default();
    let mut since_oracle = 0usize;
    for (step, op) in trace.ops.iter().enumerate() {
        before_step(step);
        let applied = state.apply(op).map_err(|(kind, detail)| Violation {
            step: Some(step),
            kind,
            detail,
        })?;
        if !applied {
            report.skipped += 1;
            continue;
        }
        report.applied += 1;
        if opts.audit_every_step {
            state.closure.audit().map_err(|detail| Violation {
                step: Some(step),
                kind: ViolationKind::Audit,
                detail,
            })?;
        }
        since_oracle += 1;
        if opts.oracle_every > 0 && since_oracle >= opts.oracle_every {
            since_oracle = 0;
            report.oracle_checks += 1;
            state.differential_check(opts.baseline).map_err(|(kind, detail)| Violation {
                step: Some(step),
                kind,
                detail,
            })?;
            state.sharded_full_check().map_err(|(kind, detail)| Violation {
                step: Some(step),
                kind,
                detail,
            })?;
        }
    }
    // Always one final differential pass (audit too, covering all-skipped
    // traces where the per-step audit never ran).
    let last = trace.ops.len().checked_sub(1);
    state.closure.audit().map_err(|detail| Violation {
        step: last,
        kind: ViolationKind::Audit,
        detail,
    })?;
    report.oracle_checks += 1;
    state
        .differential_check(opts.baseline)
        .map_err(|(kind, detail)| Violation { step: last, kind, detail })?;
    state
        .sharded_full_check()
        .map_err(|(kind, detail)| Violation { step: last, kind, detail })?;
    state
        .finish_sharded()
        .map_err(|(kind, detail)| Violation { step: last, kind, detail })?;
    report.final_nodes = state.mirror.node_count();
    report.final_edges = state.mirror.edge_count();
    Ok(report)
}

/// Replays `trace`, converting a panic anywhere in an op or its checks into
/// a [`ViolationKind::Panic`] violation attributed to the op that was
/// executing. The default panic hook still prints the panic message; callers
/// that expect crashes (the shrinker, the CLI) may want to install a quiet
/// hook first.
pub fn run_trace_catching(trace: &OpTrace, opts: &CheckOptions) -> Result<RunReport, Violation> {
    let progress = AtomicUsize::new(usize::MAX);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_trace_observed(trace, opts, |step| progress.store(step, Ordering::Relaxed))
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            let at = progress.load(Ordering::Relaxed);
            Err(Violation {
                step: (at != usize::MAX).then_some(at),
                kind: ViolationKind::Panic,
                detail: format!("panicked: {msg}"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{FuzzConfig, Op, OpTrace};

    fn trace(config: FuzzConfig, ops: Vec<Op>) -> OpTrace {
        OpTrace { config, ops }
    }

    #[test]
    fn empty_trace_passes() {
        let r = run_trace(&trace(FuzzConfig::default(), vec![]), &CheckOptions::default()).unwrap();
        assert_eq!(r.applied, 0);
        assert_eq!(r.final_nodes, 0);
    }

    #[test]
    fn diamond_lifecycle_passes() {
        let ops = vec![
            Op::AddNode { parents: vec![] },       // 0
            Op::AddNode { parents: vec![0] },      // 1
            Op::AddNode { parents: vec![0] },      // 2
            Op::AddNode { parents: vec![1, 2] },   // 3
            Op::AddEdge { src: 0, dst: 3 },        // transitive fact, but the direct arc is new
            Op::RemoveEdge { src: 1, dst: 3 },
            Op::RemoveNode { node: 2 },
            Op::Relabel,
            Op::Rebuild,
            Op::SetThreads { threads: 2 },
            Op::AddNode { parents: vec![3, 0, 3] }, // duplicate parent on purpose
        ];
        let r = run_trace(&trace(FuzzConfig::default(), ops), &CheckOptions::default()).unwrap();
        assert_eq!(r.final_nodes, 5);
        assert!(r.oracle_checks >= 1);
    }

    #[test]
    fn skip_rules_swallow_invalid_ops() {
        let ops = vec![
            Op::AddNode { parents: vec![7, 9] }, // out-of-range parents dropped -> root
            Op::AddEdge { src: 0, dst: 0 },      // self-loop: skip
            Op::AddEdge { src: 0, dst: 5 },      // out of range: skip
            Op::AddNode { parents: vec![0] },
            Op::AddEdge { src: 0, dst: 1 },      // already present: skip
            Op::AddEdge { src: 1, dst: 0 },      // would create a cycle: skip
            Op::RemoveEdge { src: 1, dst: 0 },   // absent: skip
            Op::RemoveNode { node: 33 },         // out of range: skip
            Op::Refine { child: 44 },            // out of range: skip
        ];
        let r = run_trace(&trace(FuzzConfig::default(), ops), &CheckOptions::default()).unwrap();
        assert_eq!(r.applied, 2);
        assert_eq!(r.skipped, 7);
    }

    #[test]
    fn refine_applies_with_reserve_and_skips_without() {
        let base = vec![
            Op::AddNode { parents: vec![] },
            Op::AddNode { parents: vec![0] },
            Op::Refine { child: 1 },
        ];
        let with = FuzzConfig { gap: 64, reserve: 4, ..FuzzConfig::default() };
        let r = run_trace(&trace(with, base.clone()), &CheckOptions::default()).unwrap();
        assert_eq!(r.final_nodes, 3);
        let without = FuzzConfig { gap: 64, reserve: 0, ..FuzzConfig::default() };
        let r = run_trace(&trace(without, base), &CheckOptions::default()).unwrap();
        assert_eq!(r.final_nodes, 2);
        assert_eq!(r.skipped, 1);
    }

    #[test]
    fn invalid_config_is_a_config_violation() {
        let bad = FuzzConfig { gap: 2, reserve: 1, ..FuzzConfig::default() };
        let v = run_trace(&trace(bad, vec![]), &CheckOptions::default()).unwrap_err();
        assert_eq!(v.kind, ViolationKind::Config);
        assert!(v.step.is_none());
    }

    #[test]
    fn catching_runner_attributes_panics() {
        // A panic injected through a poisoned op is hard to stage from the
        // outside; instead exercise the machinery directly on a healthy
        // trace (no panic -> identical result).
        let ops = vec![Op::AddNode { parents: vec![] }, Op::AddNode { parents: vec![0] }];
        let r = run_trace_catching(&trace(FuzzConfig::default(), ops), &CheckOptions::default())
            .unwrap();
        assert_eq!(r.applied, 2);
    }

    #[test]
    fn service_publish_pins_a_consistent_view() {
        let ops = vec![
            Op::AddNode { parents: vec![] },
            Op::AddNode { parents: vec![0] },
            Op::ServiceQuery, // nothing published yet: skip
            Op::ServicePublish,
            Op::AddNode { parents: vec![1] },
            Op::RemoveEdge { src: 0, dst: 1 },
            Op::ServiceQuery, // must answer from the 2-node publish-time view
            Op::ServicePublish,
            Op::ServiceQuery,
        ];
        let r = run_trace(&trace(FuzzConfig::default(), ops), &CheckOptions::default()).unwrap();
        assert_eq!(r.skipped, 1);
        assert_eq!(r.applied, 8);
    }

    #[test]
    fn sharded_lockstep_matches_on_a_churny_trace() {
        let ops = vec![
            Op::AddNode { parents: vec![] },     // 0
            Op::AddNode { parents: vec![] },     // 1 (second shard fills)
            Op::AddNode { parents: vec![0] },    // 2
            Op::AddNode { parents: vec![1] },    // 3
            Op::AddEdge { src: 2, dst: 3 },      // cross-shard arc
            Op::AddNode { parents: vec![2, 3] }, // cross-shard parents
            Op::AddEdge { src: 3, dst: 0 },      // would create a cycle: skip
            Op::RemoveEdge { src: 2, dst: 3 },
            Op::Relabel,
            Op::RemoveNode { node: 1 },
            Op::AddEdge { src: 0, dst: 3 },
            Op::Rebuild,
        ];
        let opts = CheckOptions { shards: 3, ..CheckOptions::default() };
        let r = run_trace(&trace(FuzzConfig::default(), ops), &opts).unwrap();
        assert_eq!(r.applied, 11);
        assert_eq!(r.skipped, 1);
    }

    #[test]
    fn sharded_lockstep_covers_refinement() {
        let cfg = FuzzConfig { gap: 64, reserve: 4, ..FuzzConfig::default() };
        let ops = vec![
            Op::AddNode { parents: vec![] },  // 0
            Op::AddNode { parents: vec![] },  // 1
            Op::AddNode { parents: vec![0] }, // 2
            Op::AddEdge { src: 1, dst: 2 },   // cross-shard arc; 2 now has two parents
            Op::Refine { child: 2 },          // interposes 3 between {0,1} and 2
            Op::AddNode { parents: vec![3] },
        ];
        let opts = CheckOptions { shards: 2, ..CheckOptions::default() };
        let r = run_trace(&trace(cfg, ops), &opts).unwrap();
        assert_eq!(r.applied, 6);
        assert_eq!(r.final_nodes, 5);
    }

    #[test]
    fn paged_probe_round_trips_through_every_state() {
        let cfg = FuzzConfig { gap: 32, reserve: 3, ..FuzzConfig::default() };
        let ops = vec![
            Op::PagedProbe, // empty relation: still round-trips
            Op::AddNode { parents: vec![] },
            Op::AddNode { parents: vec![0] },
            Op::AddNode { parents: vec![0] },
            Op::AddEdge { src: 1, dst: 2 },
            Op::PagedProbe,
            Op::Refine { child: 2 },
            Op::RemoveNode { node: 1 }, // tombstones
            Op::PagedProbe,
            Op::Freeze, // probe while a resident plane is live too
            Op::PagedProbe,
            Op::Relabel,
            Op::PagedProbe,
        ];
        let r = run_trace(&trace(cfg, ops), &CheckOptions::default()).unwrap();
        assert_eq!(r.skipped, 0);
        assert_eq!(r.final_nodes, 4);
    }

    #[test]
    fn quarantined_node_can_be_reused() {
        let ops = vec![
            Op::AddNode { parents: vec![] },
            Op::AddNode { parents: vec![0] },
            Op::RemoveNode { node: 0 },
            Op::AddEdge { src: 1, dst: 0 }, // resurrect the removed node as a leaf
            Op::AddNode { parents: vec![0] },
        ];
        let r = run_trace(&trace(FuzzConfig::default(), ops), &CheckOptions::default()).unwrap();
        assert_eq!(r.applied, 5);
        assert_eq!(r.final_nodes, 3);
    }
}
