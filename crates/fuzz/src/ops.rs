//! The fuzzer's op vocabulary and its serialized, replayable trace format.
//!
//! A trace is a [`FuzzConfig`] (the closure configuration the sequence runs
//! under) plus a list of [`Op`]s applied to an *initially empty* closure.
//! Ops reference nodes by the dense id the closure assigns them, so a trace
//! is fully deterministic: replaying it reproduces the exact same closure
//! states, including any failure. Ops whose operands are invalid at replay
//! time (unknown node, cycle, missing edge) are *skipped* by the engine
//! under fixed, documented rules — this keeps shrinking sound: deleting an
//! op from a failing trace never makes the remainder unreplayable.
//!
//! The text format is line-oriented so reproducers diff and review well:
//!
//! ```text
//! # tc-fuzz trace v1
//! gap 64
//! reserve 4
//! merge 0
//! threads 1
//! add-node
//! add-node 0
//! add-edge 1 0
//! remove-edge 1 0
//! refine 0
//! remove-node 1
//! relabel
//! rebuild
//! freeze
//! thaw
//! set-threads 2
//! service-publish
//! service-query
//! paged-probe
//! ```

use std::fmt;

use tc_core::ClosureConfig;

/// One update operation against the closure under test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `CompressedClosure::add_node_with_parents` — the listed parents may
    /// contain duplicates or out-of-range ids on purpose (exercising the
    /// dedup and validation paths); out-of-range ids are dropped at replay.
    AddNode {
        /// Parent ids for the new node (first valid one becomes the tree
        /// parent).
        parents: Vec<u32>,
    },
    /// `CompressedClosure::add_edge` (skipped when the arc exists, is a
    /// self-loop, or would create a cycle).
    AddEdge {
        /// Arc source.
        src: u32,
        /// Arc destination.
        dst: u32,
    },
    /// `CompressedClosure::remove_edge` (skipped when the arc is absent).
    RemoveEdge {
        /// Arc source.
        src: u32,
        /// Arc destination.
        dst: u32,
    },
    /// `CompressedClosure::remove_node` (skipped for out-of-range ids).
    RemoveNode {
        /// The node to remove.
        node: u32,
    },
    /// `CompressedClosure::refine_insert` with the node's current immediate
    /// predecessors (skipped when the reserve tail is exhausted).
    Refine {
        /// The node being refined.
        child: u32,
    },
    /// `CompressedClosure::relabel`.
    Relabel,
    /// `CompressedClosure::rebuild`.
    Rebuild,
    /// `CompressedClosure::freeze` — snapshots a read-optimized query plane;
    /// subsequent queries (and the per-step audit) run against it until the
    /// next update invalidates it. Never skipped.
    Freeze,
    /// `CompressedClosure::thaw` — drops the plane (a no-op when none is
    /// frozen). Never skipped.
    Thaw,
    /// `CompressedClosure::set_threads`.
    SetThreads {
        /// Worker-thread count (0 = one per CPU).
        threads: usize,
    },
    /// `ServiceSnapshot::capture` — pins the serving layer's published view
    /// of the current state (plus a mirror copy of the relation for the
    /// oracle); it stays pinned while the trace keeps mutating, exactly like
    /// a [`tc_core::ServiceReader`] holding an old snapshot. Never skipped.
    ServicePublish,
    /// Replays queries against the pinned published view and checks them
    /// against a DFS closure of the relation *as it was at publish time*
    /// (skipped when nothing has been published yet).
    ServiceQuery,
    /// Round-trips the current closure through the out-of-core `PLN1`
    /// format (`CompressedClosure::to_paged_bytes` →
    /// `PagedPlane::open_from_bytes` with an eviction-forcing 2-frame pool)
    /// and compares every paged answer against the closure under test.
    /// Never skipped; never mutates the relation but counts as applied.
    PagedProbe,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::AddNode { parents } => {
                write!(f, "add-node")?;
                for p in parents {
                    write!(f, " {p}")?;
                }
                Ok(())
            }
            Op::AddEdge { src, dst } => write!(f, "add-edge {src} {dst}"),
            Op::RemoveEdge { src, dst } => write!(f, "remove-edge {src} {dst}"),
            Op::RemoveNode { node } => write!(f, "remove-node {node}"),
            Op::Refine { child } => write!(f, "refine {child}"),
            Op::Relabel => write!(f, "relabel"),
            Op::Rebuild => write!(f, "rebuild"),
            Op::Freeze => write!(f, "freeze"),
            Op::Thaw => write!(f, "thaw"),
            Op::SetThreads { threads } => write!(f, "set-threads {threads}"),
            Op::ServicePublish => write!(f, "service-publish"),
            Op::ServiceQuery => write!(f, "service-query"),
            Op::PagedProbe => write!(f, "paged-probe"),
        }
    }
}

/// The closure configuration a trace runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Postorder-number spacing ([`ClosureConfig::gap`]).
    pub gap: u64,
    /// Refinement reserve ([`ClosureConfig::reserve`]).
    pub reserve: u64,
    /// Adjacent-interval merging ([`ClosureConfig::merge_adjacent`]).
    pub merge: bool,
    /// Initial worker-thread count ([`ClosureConfig::threads`]); traces can
    /// change it mid-run with [`Op::SetThreads`].
    pub threads: usize,
    /// Scoped deletion recompute ([`ClosureConfig::scoped_deletes`]).
    /// Defaults to on; running the same seed with it off replays every
    /// deletion through the historical global sweep, so the two settings
    /// serve as cross-check oracles of each other.
    pub scoped: bool,
    /// Hybrid bitset threshold ([`ClosureConfig::hybrid`]) applied to every
    /// freeze in the trace. `u64::MAX` (the default) keeps freezes
    /// pure-interval; any other value routes hot rows through bitset rows
    /// and cutoff labels, which the per-step audit and differential oracle
    /// then cross-check against the mutable labels.
    pub hybrid: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            gap: 64,
            reserve: 0,
            merge: false,
            threads: 1,
            scoped: true,
            hybrid: u64::MAX,
        }
    }
}

impl FuzzConfig {
    /// The equivalent [`ClosureConfig`], or an error message when the
    /// gap/reserve combination is invalid (`gap` must exceed `2 * reserve`).
    pub fn closure_config(&self) -> Result<ClosureConfig, String> {
        if self.gap == 0 || self.gap <= 2 * self.reserve {
            return Err(format!(
                "invalid fuzz config: gap {} must be positive and exceed 2 * reserve {}",
                self.gap, self.reserve
            ));
        }
        let mut config = ClosureConfig::new()
            .gap(self.gap)
            .reserve(self.reserve)
            .merge_adjacent(self.merge)
            .threads(self.threads)
            .scoped_deletes(self.scoped);
        if self.hybrid != u64::MAX {
            config = config.hybrid(self.hybrid as usize);
        }
        Ok(config)
    }
}

/// A full replayable trace: configuration plus op sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// The closure configuration the ops run under.
    pub config: FuzzConfig,
    /// The op sequence, applied to an initially empty closure.
    pub ops: Vec<Op>,
}

impl OpTrace {
    /// Serializes the trace in the line-oriented reproducer format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# tc-fuzz trace v1\n");
        out.push_str(&format!("gap {}\n", self.config.gap));
        out.push_str(&format!("reserve {}\n", self.config.reserve));
        out.push_str(&format!("merge {}\n", u8::from(self.config.merge)));
        out.push_str(&format!("threads {}\n", self.config.threads));
        // Written only off its default so pre-existing reproducers stay
        // byte-identical.
        if !self.config.scoped {
            out.push_str("scoped 0\n");
        }
        if self.config.hybrid != u64::MAX {
            out.push_str(&format!("hybrid {}\n", self.config.hybrid));
        }
        for op in &self.ops {
            out.push_str(&op.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a trace serialized by [`OpTrace::to_text`]. Header lines
    /// (`gap`/`reserve`/`merge`/`threads`/`scoped`/`hybrid <value>`) may appear in
    /// any order before the first op and default when absent; blank lines
    /// and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<OpTrace, String> {
        let mut config = FuzzConfig::default();
        let mut ops = Vec::new();
        let mut in_header = true;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tok = line.split_whitespace();
            let head = tok.next().expect("non-empty line has a token");
            let rest: Vec<&str> = tok.collect();
            let fail = |msg: &str| Err(format!("line {}: {msg}: {raw:?}", lineno + 1));
            let one = |rest: &[&str]| -> Result<u64, String> {
                match rest {
                    [v] => v.parse().map_err(|_| format!("line {}: bad number {v:?}", lineno + 1)),
                    _ => Err(format!("line {}: expected one operand: {raw:?}", lineno + 1)),
                }
            };
            let two = |rest: &[&str]| -> Result<(u32, u32), String> {
                match rest {
                    [a, b] => Ok((
                        a.parse().map_err(|_| format!("line {}: bad id {a:?}", lineno + 1))?,
                        b.parse().map_err(|_| format!("line {}: bad id {b:?}", lineno + 1))?,
                    )),
                    _ => Err(format!("line {}: expected two operands: {raw:?}", lineno + 1)),
                }
            };
            match head {
                "gap" | "reserve" | "merge" | "threads" | "scoped" | "hybrid" if in_header => {
                    let v = one(&rest)?;
                    match head {
                        "gap" => config.gap = v,
                        "reserve" => config.reserve = v,
                        "merge" => config.merge = v != 0,
                        "scoped" => config.scoped = v != 0,
                        "hybrid" => config.hybrid = v,
                        _ => config.threads = v as usize,
                    }
                }
                "add-node" => {
                    in_header = false;
                    let parents = rest
                        .iter()
                        .map(|p| p.parse().map_err(|_| format!("line {}: bad id {p:?}", lineno + 1)))
                        .collect::<Result<Vec<u32>, String>>()?;
                    ops.push(Op::AddNode { parents });
                }
                "add-edge" => {
                    in_header = false;
                    let (src, dst) = two(&rest)?;
                    ops.push(Op::AddEdge { src, dst });
                }
                "remove-edge" => {
                    in_header = false;
                    let (src, dst) = two(&rest)?;
                    ops.push(Op::RemoveEdge { src, dst });
                }
                "remove-node" => {
                    in_header = false;
                    ops.push(Op::RemoveNode { node: one(&rest)? as u32 });
                }
                "refine" => {
                    in_header = false;
                    ops.push(Op::Refine { child: one(&rest)? as u32 });
                }
                "relabel" => {
                    in_header = false;
                    ops.push(Op::Relabel);
                }
                "rebuild" => {
                    in_header = false;
                    ops.push(Op::Rebuild);
                }
                "freeze" => {
                    in_header = false;
                    ops.push(Op::Freeze);
                }
                "thaw" => {
                    in_header = false;
                    ops.push(Op::Thaw);
                }
                "set-threads" => {
                    in_header = false;
                    ops.push(Op::SetThreads { threads: one(&rest)? as usize });
                }
                "service-publish" => {
                    in_header = false;
                    ops.push(Op::ServicePublish);
                }
                "service-query" => {
                    in_header = false;
                    ops.push(Op::ServiceQuery);
                }
                "paged-probe" => {
                    in_header = false;
                    ops.push(Op::PagedProbe);
                }
                _ => return fail("unknown directive"),
            }
        }
        Ok(OpTrace { config, ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let trace = OpTrace {
            config: FuzzConfig {
                gap: 8,
                reserve: 2,
                merge: true,
                threads: 2,
                scoped: false,
                hybrid: 3,
            },
            ops: vec![
                Op::AddNode { parents: vec![] },
                Op::AddNode { parents: vec![0, 0, 1] },
                Op::AddEdge { src: 1, dst: 0 },
                Op::RemoveEdge { src: 1, dst: 0 },
                Op::Refine { child: 0 },
                Op::RemoveNode { node: 1 },
                Op::Relabel,
                Op::Rebuild,
                Op::Freeze,
                Op::Thaw,
                Op::SetThreads { threads: 0 },
                Op::ServicePublish,
                Op::ServiceQuery,
                Op::PagedProbe,
            ],
        };
        let text = trace.to_text();
        assert_eq!(OpTrace::parse(&text).unwrap(), trace);
    }

    #[test]
    fn defaults_and_comments() {
        let t = OpTrace::parse("# hi\n\nadd-node\nrelabel\n").unwrap();
        assert_eq!(t.config, FuzzConfig::default());
        assert_eq!(t.ops.len(), 2);
    }

    #[test]
    fn bad_lines_are_rejected() {
        assert!(OpTrace::parse("frobnicate 1").is_err());
        assert!(OpTrace::parse("add-edge 1").is_err());
        assert!(OpTrace::parse("remove-node x").is_err());
        // Header keys after the first op are no longer header fields.
        assert!(OpTrace::parse("add-node\ngap 4").is_err());
    }

    #[test]
    fn invalid_config_is_reported() {
        let t = OpTrace::parse("gap 4\nreserve 2\nadd-node\n").unwrap();
        assert!(t.config.closure_config().is_err());
        assert!(FuzzConfig::default().closure_config().is_ok());
    }
}
