//! # tc-fuzz — differential update-churn fuzzing for the compressed closure
//!
//! The §4 update paths of [`tc_core::CompressedClosure`] (gap insertion,
//! subtree relocation, tombstones, relabeling, reserve tails) interact in
//! ways no hand-written test matrix covers. This crate hammers them with
//! random op sequences and checks three independent sources of truth after
//! every step:
//!
//! * **Structural audit** — [`tc_core::CompressedClosure::audit`], an
//!   O(n + intervals) invariant sweep run after *every* applied op;
//! * **DFS oracle** — decoded successor sets and batched point queries
//!   compared against [`tc_graph::traverse::closure_rows`] over a
//!   trivially-maintained mirror graph;
//! * **Chain baseline** — the same point queries against an independently
//!   implemented chain-decomposition index ([`tc_baselines::ChainIndex`]),
//!   guarding against a bug shared by closure and DFS mirror bookkeeping.
//!
//! Failing sequences are minimized by [`shrink::shrink`] into a
//! line-oriented, replayable trace format ([`ops::OpTrace`]) suitable for
//! checking in as a regression test (see `tests/fuzz_regressions.rs` at the
//! workspace root) or replaying via `interval-tc fuzz --replay`.
//!
//! ```
//! use tc_fuzz::{generate, run_trace, CheckOptions, GenConfig};
//!
//! let trace = generate(&GenConfig { ops: 64, seed: 1, ..GenConfig::default() });
//! let report = run_trace(&trace, &CheckOptions::default()).expect("no violations");
//! assert!(report.applied > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod gen;
pub mod kb;
pub mod mutate;
pub mod ops;
pub mod shrink;

pub use engine::{
    run_trace, run_trace_catching, CheckOptions, EngineState, PublishedView, RunReport, Violation,
    ViolationKind,
};
pub use gen::{generate, GenConfig};
pub use kb::{run_kb_campaign, KbFuzzConfig, KbFuzzReport};
pub use mutate::{
    campaign, closure_campaign, mutate, paged_campaign, refix_checksum, taxonomy_campaign,
    CaseOutcome, MutationKind, MutationReport,
};
pub use ops::{FuzzConfig, Op, OpTrace};
pub use shrink::{shrink, ShrinkResult};
