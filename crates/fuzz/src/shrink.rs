//! Greedy minimization of failing traces.
//!
//! Given a trace whose checked replay fails, the shrinker searches for a
//! shorter trace that *still fails* (any violation counts — the minimal
//! reproducer for a crash sometimes surfaces as an audit violation first,
//! and either is a bug):
//!
//! 1. **Truncate** to the failing op: nothing after the violation step can
//!    matter.
//! 2. **Delta-debug** the prefix: repeatedly try deleting chunks of ops
//!    (halving the chunk size from `len/2` down to 1), keeping any deletion
//!    after which the trace still fails. The engine's skip rules make every
//!    candidate replayable, so deletion is always safe to *try*.
//! 3. **Simplify ops in place**: drop parents from `add-node` ops one at a
//!    time.
//!
//! Every candidate is replayed with [`run_trace_catching`], so shrinking a
//! panicking trace works; callers that shrink crashes may want to install
//! a quiet panic hook around the call to keep stderr readable.

use crate::engine::{run_trace_catching, CheckOptions, Violation};
use crate::ops::{Op, OpTrace};

/// Outcome of [`shrink`]: the smallest failing trace found and its
/// violation, plus how many candidate replays the search spent.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized trace (== the input when the input does not fail).
    pub trace: OpTrace,
    /// The violation the minimized trace produces (`None` when the input
    /// passed and there was nothing to shrink).
    pub violation: Option<Violation>,
    /// Candidate replays performed.
    pub attempts: usize,
}

fn fails(trace: &OpTrace, opts: &CheckOptions, attempts: &mut usize) -> Option<Violation> {
    *attempts += 1;
    run_trace_catching(trace, opts).err()
}

/// Minimizes `trace` while it keeps failing under `opts`.
pub fn shrink(trace: &OpTrace, opts: &CheckOptions) -> ShrinkResult {
    let mut attempts = 0usize;
    let Some(mut violation) = fails(trace, opts, &mut attempts) else {
        return ShrinkResult { trace: trace.clone(), violation: None, attempts };
    };
    let mut best = trace.clone();

    // 1. Truncate to the failing op.
    if let Some(step) = violation.step {
        if step + 1 < best.ops.len() {
            let mut cand = best.clone();
            cand.ops.truncate(step + 1);
            if let Some(v) = fails(&cand, opts, &mut attempts) {
                best = cand;
                violation = v;
            }
        }
    }

    // 2. Chunked deletion, largest chunks first.
    let mut chunk = (best.ops.len() / 2).max(1);
    loop {
        let mut any_removed = false;
        let mut start = 0usize;
        while start < best.ops.len() {
            let end = (start + chunk).min(best.ops.len());
            let mut cand = best.clone();
            cand.ops.drain(start..end);
            match fails(&cand, opts, &mut attempts) {
                Some(v) => {
                    // Keep the deletion; re-truncate to the (possibly
                    // earlier) failing op so later probes stay small.
                    best = cand;
                    if let Some(step) = v.step {
                        best.ops.truncate(step + 1);
                    }
                    violation = v;
                    any_removed = true;
                    // Do not advance: the window now holds fresh ops.
                }
                None => start = end,
            }
        }
        if !any_removed {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }

    // 3. Per-op simplification: drop add-node parents one at a time.
    let mut i = 0usize;
    while i < best.ops.len() {
        if let Op::AddNode { parents } = &best.ops[i] {
            let mut p = 0usize;
            let mut parents = parents.clone();
            while p < parents.len() {
                let mut cand = best.clone();
                let mut fewer = parents.clone();
                fewer.remove(p);
                cand.ops[i] = Op::AddNode { parents: fewer.clone() };
                if let Some(v) = fails(&cand, opts, &mut attempts) {
                    best = cand;
                    violation = v;
                    parents = fewer;
                } else {
                    p += 1;
                }
            }
        }
        i += 1;
    }

    ShrinkResult { trace: best, violation: Some(violation), attempts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_trace;
    use crate::ops::{FuzzConfig, Op, OpTrace};

    #[test]
    fn passing_trace_is_returned_unchanged() {
        let trace = OpTrace {
            config: FuzzConfig::default(),
            ops: vec![Op::AddNode { parents: vec![] }, Op::AddNode { parents: vec![0] }],
        };
        let r = shrink(&trace, &CheckOptions::default());
        assert!(r.violation.is_none());
        assert_eq!(r.trace, trace);
    }

    #[test]
    fn config_violation_shrinks_to_empty() {
        // An invalid gap/reserve pair fails before any op runs, so every
        // op is deletable.
        let trace = OpTrace {
            config: FuzzConfig { gap: 2, reserve: 1, ..FuzzConfig::default() },
            ops: vec![
                Op::AddNode { parents: vec![] },
                Op::Relabel,
                Op::AddNode { parents: vec![0] },
            ],
        };
        let r = shrink(&trace, &CheckOptions::default());
        assert!(r.violation.is_some());
        assert!(r.trace.ops.is_empty(), "kept {:?}", r.trace.ops);
    }

    #[test]
    fn shrunk_traces_still_replay_deterministically() {
        // Sanity: whatever the shrinker emits, a fresh replay produces the
        // same verdict.
        let trace = OpTrace {
            config: FuzzConfig { gap: 2, reserve: 1, ..FuzzConfig::default() },
            ops: vec![Op::Rebuild; 5],
        };
        let r = shrink(&trace, &CheckOptions::default());
        let replay = run_trace(&r.trace, &CheckOptions::default());
        assert_eq!(
            replay.is_err(),
            r.violation.is_some(),
            "shrunk trace verdict changed on replay"
        );
    }
}
