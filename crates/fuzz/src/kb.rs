//! Differential fuzzing for the rule-driven knowledge base.
//!
//! Hammers [`tc_kb::KnowledgeBase`] with random assert / retract / feature
//! churn and, at every quiescent checkpoint, runs the naive-re-derivation
//! differential gate: the incrementally maintained model (semi-naive
//! forward chaining on asserts, DRed over-delete/re-derive on retracts)
//! must match a from-scratch naive fixpoint over the surviving base facts,
//! arc-for-arc and successor-set-for-successor-set.
//!
//! Concept names are drawn from a layered namespace and every generated
//! fact points strictly downhill, so neither an assert nor a derived head
//! can be cycle-rejected — rejections make the final model depend on
//! arrival order, which a from-scratch replay cannot reproduce. The
//! campaign asserts `cycle_rejected == 0` at every step to keep the gate
//! meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tc_kb::{AssertOutcome, KnowledgeBase, Pred};

/// Shape of one knowledge-base churn campaign.
#[derive(Debug, Clone, Copy)]
pub struct KbFuzzConfig {
    /// Random operations to apply.
    pub steps: u64,
    /// Campaign seed (each derived case perturbs it deterministically).
    pub seed: u64,
    /// Layers in the concept namespace (≥ 2; facts point downhill).
    pub layers: usize,
    /// Concepts per layer.
    pub per_layer: usize,
    /// Run the differential gate every this many steps (and at the end).
    pub check_every: u64,
}

impl Default for KbFuzzConfig {
    fn default() -> Self {
        KbFuzzConfig {
            steps: 160,
            seed: 1,
            layers: 5,
            per_layer: 3,
            check_every: 40,
        }
    }
}

/// Tally of one knowledge-base churn campaign.
#[derive(Debug, Clone, Default)]
pub struct KbFuzzReport {
    /// Base facts asserted (Applied outcomes).
    pub asserts: u64,
    /// Base facts retracted.
    pub retracts: u64,
    /// Features attached.
    pub features: u64,
    /// Arcs derived by rules over the whole run (engine counter).
    pub derived: u64,
    /// Differential-gate checkpoints passed.
    pub checks: u64,
}

/// Runs one seeded churn campaign. `Err` carries the seed, step, and the
/// gate's divergence description — enough to replay deterministically.
pub fn run_kb_campaign(cfg: &KbFuzzConfig) -> Result<KbFuzzReport, String> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut kb = KnowledgeBase::new();
    kb.define_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)")
        .map_err(|e| e.to_string())?;
    kb.define_rule("lift: partof(X, Y) :- isa(X, Z), partof(Z, Y), feat(Z, hub)")
        .map_err(|e| e.to_string())?;
    let layers = cfg.layers.max(2);
    let per_layer = cfg.per_layer.max(1);
    let name = |layer: usize, i: usize| format!("l{layer}n{i}");
    let mut report = KbFuzzReport::default();
    let mut live: Vec<(Pred, String, String)> = Vec::new();
    let fail = |step: u64, what: &str, detail: String| {
        Err(format!(
            "seed {} step {step}: {what}: {detail}",
            cfg.seed
        ))
    };
    for step in 0..cfg.steps {
        let retract = !live.is_empty() && rng.random_bool(0.3);
        if retract {
            let ix = rng.random_range(0..live.len());
            let (p, a, b) = live.swap_remove(ix);
            kb.retract_fact(p, &a, &b)
                .map_err(|e| format!("seed {} step {step}: retract: {e}", cfg.seed))?;
            report.retracts += 1;
        } else {
            let la = rng.random_range(0..layers - 1);
            let lb = rng.random_range(la + 1..layers);
            let a = name(la, rng.random_range(0..per_layer));
            let b = name(lb, rng.random_range(0..per_layer));
            let pred = if rng.random_bool(0.5) {
                Pred::IsA
            } else {
                Pred::PartOf
            };
            match kb
                .assert_fact(pred, &a, &b)
                .map_err(|e| format!("seed {} step {step}: assert: {e}", cfg.seed))?
            {
                AssertOutcome::Applied => {
                    report.asserts += 1;
                    live.push((pred, a.clone(), b.clone()));
                }
                AssertOutcome::Noop => {
                    if !live.contains(&(pred, a.clone(), b.clone())) {
                        live.push((pred, a.clone(), b.clone()));
                    }
                }
                AssertOutcome::CycleRejected => {
                    return fail(step, "layered workload", "cycle-rejected".into());
                }
            }
            if rng.random_bool(0.15) {
                kb.add_feature(&a, "hub")
                    .map_err(|e| format!("seed {} step {step}: feature: {e}", cfg.seed))?;
                report.features += 1;
            }
        }
        if kb.stats().cycle_rejected != 0 {
            return fail(step, "gate precondition", "cycle_rejected != 0".into());
        }
        if kb.stats().derive_failed != 0 {
            return fail(step, "gate precondition", "derive_failed != 0".into());
        }
        if cfg.check_every > 0 && step % cfg.check_every == cfg.check_every - 1 {
            kb.check_against_naive()
                .map_err(|e| format!("seed {} step {step}: differential gate: {e}", cfg.seed))?;
            report.checks += 1;
        }
    }
    kb.check_against_naive()
        .map_err(|e| format!("seed {} final: differential gate: {e}", cfg.seed))?;
    report.checks += 1;
    report.derived = kb.stats().derived;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_campaign_passes_over_several_seeds() {
        for seed in 0..3u64 {
            let report = run_kb_campaign(&KbFuzzConfig {
                steps: 100,
                seed: seed * 31 + 7,
                check_every: 25,
                ..KbFuzzConfig::default()
            })
            .expect("differential gate must hold");
            assert!(report.checks >= 4);
            assert!(report.asserts > 0);
        }
    }

    #[test]
    fn kb_campaign_exercises_both_directions() {
        let report = run_kb_campaign(&KbFuzzConfig {
            steps: 200,
            seed: 99,
            check_every: 50,
            ..KbFuzzConfig::default()
        })
        .expect("campaign");
        assert!(report.retracts > 10, "retract path barely exercised");
        assert!(report.derived > 0, "rules never fired");
    }
}
