//! Mutation fuzzing for binary codecs.
//!
//! Complements the op-trace engine: instead of churning the *update* paths,
//! this corrupts serialized byte streams — bit flips, truncation,
//! length-field sabotage, span surgery — and asserts the decoder fails
//! *closed*: a structured decode error, never a panic and never an
//! allocation sized by a corrupted length field. Every interval-tc stream
//! ends in a FNV-1a trailer, so half of the cases re-fix the checksum after
//! mutating; without that, nearly every mutation dies at the trailer check
//! and the decoder's interior never gets exercised.
//!
//! The driver is generic over the decoder (`&[u8] -> CaseOutcome`), so the
//! same campaign runs against [`tc_core::CompressedClosure::from_bytes`]
//! and the server's dictionary codec.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tc_core::codec::fnv1a;

/// One family of corruption applied to a valid stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// 1–8 single-bit flips at random positions.
    BitFlips,
    /// Cut the stream to a random shorter length.
    Truncate,
    /// Overwrite a 4-byte window with `u32::MAX` — length-field sabotage.
    MaxU32,
    /// Overwrite an 8-byte window with `u64::MAX` — count-field sabotage.
    MaxU64,
    /// Zero a short span.
    ZeroSpan,
    /// Copy one span over another (duplicates records).
    DupSpan,
    /// Splice a span out entirely (shifts every later field).
    DeleteSpan,
}

const KINDS: [MutationKind; 7] = [
    MutationKind::BitFlips,
    MutationKind::Truncate,
    MutationKind::MaxU32,
    MutationKind::MaxU64,
    MutationKind::ZeroSpan,
    MutationKind::DupSpan,
    MutationKind::DeleteSpan,
];

/// Recomputes the trailing FNV-1a checksum over everything before it, so a
/// mutated stream passes the trailer check and reaches the decoder proper.
pub fn refix_checksum(bytes: &mut [u8]) {
    if bytes.len() < 8 {
        return;
    }
    let split = bytes.len() - 8;
    let sum = fnv1a(&bytes[..split]);
    bytes[split..].copy_from_slice(&sum.to_le_bytes());
}

/// Applies one random mutation to `base`, re-signing with `refix` half the
/// time so the decoder's interior — not an end-of-stream digest — has to
/// reject the result. Returns the mutated stream, the mutation family, and
/// whether the re-sign ran.
pub fn mutate_with(
    base: &[u8],
    rng: &mut StdRng,
    refix: &dyn Fn(&mut Vec<u8>),
) -> (Vec<u8>, MutationKind, bool) {
    let mut bytes = base.to_vec();
    let kind = KINDS[rng.random_range(0..KINDS.len())];
    let len = bytes.len();
    match kind {
        MutationKind::BitFlips => {
            for _ in 0..rng.random_range(1..=8) {
                let pos = rng.random_range(0..len);
                bytes[pos] ^= 1u8 << rng.random_range(0..8u32);
            }
        }
        MutationKind::Truncate => {
            bytes.truncate(rng.random_range(0..len));
        }
        MutationKind::MaxU32 => {
            let pos = rng.random_range(0..len.saturating_sub(4).max(1));
            let end = (pos + 4).min(len);
            bytes[pos..end].fill(0xFF);
        }
        MutationKind::MaxU64 => {
            let pos = rng.random_range(0..len.saturating_sub(8).max(1));
            let end = (pos + 8).min(len);
            bytes[pos..end].fill(0xFF);
        }
        MutationKind::ZeroSpan => {
            let pos = rng.random_range(0..len);
            let end = (pos + rng.random_range(1..=16usize)).min(len);
            bytes[pos..end].fill(0);
        }
        MutationKind::DupSpan => {
            let span = rng.random_range(1..=16.min(len));
            let src = rng.random_range(0..=len - span);
            let dst = rng.random_range(0..=len - span);
            let copy = bytes[src..src + span].to_vec();
            bytes[dst..dst + span].copy_from_slice(&copy);
        }
        MutationKind::DeleteSpan => {
            let span = rng.random_range(1..=16.min(len));
            let pos = rng.random_range(0..=len - span);
            bytes.drain(pos..pos + span);
        }
    }
    // Half the time, make the digest lie for the mutation so the decoder's
    // interior — not the checksum — has to reject the stream.
    let refixed = rng.random_bool(0.5);
    if refixed {
        refix(&mut bytes);
    }
    (bytes, kind, refixed)
}

/// [`mutate_with`] re-signing the trailing FNV-1a — the right refix for
/// every `ITC1`-style stream whose last 8 bytes are the digest.
pub fn mutate(base: &[u8], rng: &mut StdRng) -> (Vec<u8>, MutationKind, bool) {
    mutate_with(base, rng, &|bytes| refix_checksum(bytes))
}

/// What one decode attempt did with a mutated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The decoder returned a structured error — the expected behaviour.
    Rejected,
    /// The decoder accepted the stream and the result passed its semantic
    /// check (e.g. the mutation only touched a benign config byte).
    OkClean,
    /// The decoder accepted the stream but the result failed its semantic
    /// check — silent corruption that only a deep verify catches.
    OkCorrupt,
}

/// Tally of a mutation campaign. The hard pass criterion is
/// [`MutationReport::panics`]` == 0`: a decoder must never panic on
/// attacker-controlled bytes, however mangled.
#[derive(Debug, Clone, Default)]
pub struct MutationReport {
    /// Mutated streams attempted.
    pub cases: u64,
    /// Cases the decoder rejected with a structured error.
    pub rejected: u64,
    /// Cases that decoded and passed the semantic check.
    pub ok_clean: u64,
    /// Cases that decoded but failed the semantic check.
    pub ok_corrupt: u64,
    /// Cases where the decoder (or the semantic check) panicked — bugs.
    pub panics: u64,
    /// Case seeds that panicked, for replay; at most the first 16.
    pub panic_seeds: Vec<u64>,
}

impl MutationReport {
    /// Whether the campaign found a decoder bug.
    pub fn failed(&self) -> bool {
        self.panics > 0
    }
}

/// Runs `cases` mutations of `base` through `decode`, starting from
/// `seed`. Each case uses its own deterministic RNG (`seed + i`), so a
/// panicking case replays in isolation from its seed alone.
pub fn campaign<F>(base: &[u8], cases: u64, seed: u64, decode: F) -> MutationReport
where
    F: Fn(&[u8]) -> CaseOutcome,
{
    campaign_with_refix(base, cases, seed, &|bytes| refix_checksum(bytes), decode)
}

/// [`campaign`] with a format-specific re-sign step — `PLN1` planes keep
/// their digest in the trailing header rather than the last 8 bytes.
pub fn campaign_with_refix<F>(
    base: &[u8],
    cases: u64,
    seed: u64,
    refix: &dyn Fn(&mut Vec<u8>),
    decode: F,
) -> MutationReport
where
    F: Fn(&[u8]) -> CaseOutcome,
{
    let mut report = MutationReport::default();
    for i in 0..cases {
        let case_seed = seed.wrapping_add(i);
        let mut rng = StdRng::seed_from_u64(case_seed);
        let (bytes, _, _) = mutate_with(base, &mut rng, refix);
        report.cases += 1;
        match catch_unwind(AssertUnwindSafe(|| decode(&bytes))) {
            Ok(CaseOutcome::Rejected) => report.rejected += 1,
            Ok(CaseOutcome::OkClean) => report.ok_clean += 1,
            Ok(CaseOutcome::OkCorrupt) => report.ok_corrupt += 1,
            Err(_) => {
                report.panics += 1;
                if report.panic_seeds.len() < 16 {
                    report.panic_seeds.push(case_seed);
                }
            }
        }
    }
    report
}

/// Replays a single campaign case against `decode`, returning the mutated
/// bytes it fed in — the starting point for manual shrinking.
pub fn replay_case<F>(base: &[u8], case_seed: u64, decode: F) -> (Vec<u8>, CaseOutcome)
where
    F: Fn(&[u8]) -> CaseOutcome,
{
    let mut rng = StdRng::seed_from_u64(case_seed);
    let (bytes, _, _) = mutate(base, &mut rng);
    let outcome = decode(&bytes);
    (bytes, outcome)
}

/// The standard closure-codec campaign: mutate a mid-update closure stream
/// and decode with [`tc_core::CompressedClosure::from_bytes`], deep-verifying
/// anything the decoder accepts.
pub fn closure_campaign(cases: u64, seed: u64) -> MutationReport {
    let base = closure_base_stream();
    campaign(&base, cases, seed, decode_closure)
}

/// Decodes one stream as a closure and classifies the outcome.
pub fn decode_closure(bytes: &[u8]) -> CaseOutcome {
    match tc_core::CompressedClosure::from_bytes(bytes) {
        Err(_) => CaseOutcome::Rejected,
        Ok(c) => {
            if c.verify().is_ok() {
                CaseOutcome::OkClean
            } else {
                CaseOutcome::OkCorrupt
            }
        }
    }
}

/// A closure in a rich state — tombstones, refinement nodes, consumed
/// reserve — so mutations can hit every codec section.
fn rich_closure() -> tc_core::CompressedClosure {
    use tc_graph::generators;
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 40,
        avg_out_degree: 2.0,
        seed: 17,
    });
    let mut c = tc_core::ClosureConfig::new()
        .gap(32)
        .reserve(3)
        .build(&g)
        .expect("base closure builds");
    let leaf = c
        .add_node_with_parents(&[tc_graph::NodeId(3)])
        .expect("add_node");
    let preds: Vec<tc_graph::NodeId> = c.graph().predecessors(leaf).to_vec();
    c.refine_insert(leaf, &preds).expect("refine");
    let tree_arc = c
        .graph()
        .edges()
        .find(|&(s, d)| c.cover().is_tree_arc(s, d));
    if let Some((s, d)) = tree_arc {
        c.remove_edge(s, d).expect("remove tree arc");
    }
    c
}

/// The serialized [`rich_closure`] — the closure-codec campaign's corpus.
pub fn closure_base_stream() -> Vec<u8> {
    rich_closure().to_bytes()
}

/// Geometry of the `PLN1` plane section (mirrors `tc-core::paged`): the
/// file ends in a 224-byte header — whose final 8 bytes are an FNV-1a over
/// the preceding 216 — followed by a 12-byte footer.
const PLANE_HEADER_BYTES: usize = 224;
const PLANE_HEADER_HASHED: usize = 216;
const PLANE_FOOTER_BYTES: usize = 12;

/// Recomputes a `PLN1` file's header digest so a mutated plane passes the
/// header check and reaches the directory validation and probe paths. (The
/// payload digest is deliberately left alone: `verify_payload` catching it
/// is one of the outcomes under test.)
pub fn refix_plane_header(bytes: &mut [u8]) {
    let tail = PLANE_HEADER_BYTES + PLANE_FOOTER_BYTES;
    if bytes.len() < tail {
        return;
    }
    let hstart = bytes.len() - tail;
    let sum = fnv1a(&bytes[hstart..hstart + PLANE_HEADER_HASHED]);
    bytes[hstart + PLANE_HEADER_HASHED..hstart + PLANE_HEADER_BYTES]
        .copy_from_slice(&sum.to_le_bytes());
}

/// The `PLN1` base corpus: the rich closure written in the paged format
/// (ITC1 stream + plane section).
pub fn paged_base_stream() -> Vec<u8> {
    rich_closure().to_paged_bytes()
}

/// Opens one mutated stream as a paged plane and drives every probe path.
/// Structured errors — at open, from a probe, or from the deep payload
/// verify — are failing closed; the only unacceptable outcome is a panic.
pub fn decode_paged(bytes: &[u8]) -> CaseOutcome {
    use tc_core::PagedPlane;
    use tc_graph::NodeId;
    // A 2-frame pool forces eviction on nearly every touch, so pin reuse
    // and straddled reads run against corrupted geometry too.
    let plane = match PagedPlane::open_from_bytes(bytes, 2) {
        Err(_) => return CaseOutcome::Rejected,
        Ok(p) => p,
    };
    let mut corrupt = plane.verify_payload().is_err();
    let n = plane.node_count().min(64) as u32;
    let mut out = Vec::new();
    for v in 0..n {
        let node = NodeId(v);
        corrupt |= plane.try_successors_into(node, &mut out).is_err();
        corrupt |= plane.try_predecessors_into(node, &mut out).is_err();
        corrupt |= plane.try_successor_count(node).is_err();
        corrupt |= plane.try_reaches(node, NodeId(v.wrapping_mul(7) % n)).is_err();
    }
    if corrupt {
        CaseOutcome::OkCorrupt
    } else {
        CaseOutcome::OkClean
    }
}

/// The `PLN1` mutation campaign: corrupt paged-plane files, open them with
/// the O(directory) shallow open, and hammer the probe paths. Zero panics
/// is the pass criterion — every length and offset a probe trusts came
/// from the (validated) directory, so corruption must surface as a
/// [`tc_core::PagedError`], never as an out-of-bounds or oversized
/// allocation.
pub fn paged_campaign(cases: u64, seed: u64) -> MutationReport {
    let base = paged_base_stream();
    campaign_with_refix(&base, cases, seed, &|bytes| refix_plane_header(bytes), decode_paged)
}

/// Geometry of the `ITCK` taxonomy stream: magic, a u64 length for the
/// embedded `ITC1` closure stream, the closure bytes (which end in their own
/// FNV-1a trailer), then the name table.
const ITCK_HEADER_BYTES: usize = 12;

/// Re-signs the *interior* `ITC1` trailer of an `ITCK` taxonomy stream, at
/// the offset the (possibly mutated) header claims. Re-signing against the
/// claimed length is deliberate: it lets length-field sabotage carry a
/// digest that validates over the wrong span, so the taxonomy decoder's own
/// bounds checks — not the closure checksum — have to reject the stream.
pub fn refix_taxonomy(bytes: &mut [u8]) {
    if bytes.len() < ITCK_HEADER_BYTES {
        return;
    }
    let claimed = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
    let Some(closure_len) = usize::try_from(claimed)
        .ok()
        .filter(|&n| n >= 8 && n <= bytes.len() - ITCK_HEADER_BYTES)
    else {
        return;
    };
    let start = ITCK_HEADER_BYTES;
    let split = start + closure_len - 8;
    let sum = fnv1a(&bytes[start..split]);
    bytes[split..split + 8].copy_from_slice(&sum.to_le_bytes());
}

/// The `ITCK` base corpus: a taxonomy with multi-parent concepts and
/// non-trivial names (long, empty-suffix, UTF-8) so mutations can hit both
/// the embedded closure stream and the name table.
pub fn taxonomy_base_stream() -> Vec<u8> {
    use tc_kb::Taxonomy;
    let mut t = Taxonomy::new();
    t.add_root("thing").expect("root");
    t.add_concept("device", &["thing"]).expect("concept");
    t.add_concept("printer", &["device"]).expect("concept");
    t.add_concept("scanner", &["device"]).expect("concept");
    t.add_concept("copier", &["printer", "scanner"]).expect("concept");
    t.add_concept("λ-printer", &["printer"]).expect("concept");
    t.add_concept(&"x".repeat(300), &["thing"]).expect("concept");
    t.to_bytes()
}

/// Decodes one stream as a taxonomy and classifies the outcome. Accepted
/// streams are deep-verified through the embedded closure's audit.
pub fn decode_taxonomy(bytes: &[u8]) -> CaseOutcome {
    match tc_kb::Taxonomy::from_bytes(bytes) {
        Err(_) => CaseOutcome::Rejected,
        Ok(t) => {
            if t.closure().verify().is_ok() {
                CaseOutcome::OkClean
            } else {
                CaseOutcome::OkCorrupt
            }
        }
    }
}

/// The `ITCK` taxonomy-codec campaign: mutate serialized taxonomies —
/// re-signing the interior `ITC1` trailer half the time so corruption
/// reaches the length-prefixed name table — and require the decoder to fail
/// closed. Zero panics is the pass criterion; this is the regression
/// campaign for the `closure_len + 8` / name-length overflow panics.
pub fn taxonomy_campaign(cases: u64, seed: u64) -> MutationReport {
    let base = taxonomy_base_stream();
    campaign_with_refix(&base, cases, seed, &|bytes| refix_taxonomy(bytes), decode_taxonomy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_codec_survives_mutation_campaign() {
        let report = closure_campaign(96, 0xC0DEC);
        assert_eq!(report.cases, 96);
        assert_eq!(
            report.panics, 0,
            "decoder panicked; replay seeds {:?}",
            report.panic_seeds
        );
        // `ok_corrupt` cases exist only because the campaign deliberately
        // re-signs mutated payloads: FNV-1a would reject every one of them
        // in the wild (~2^-64 collision odds for random corruption). They
        // stay in the report for visibility, but the hard criterion is that
        // the decoder never panics and never sizes an allocation from a
        // corrupted length field.
        assert!(report.rejected > 0, "campaign never reached the decoder");
    }

    #[test]
    fn paged_plane_survives_mutation_campaign() {
        let report = paged_campaign(96, 0x9A6ED);
        assert_eq!(report.cases, 96);
        assert_eq!(
            report.panics, 0,
            "paged open/probe panicked; replay seeds {:?}",
            report.panic_seeds
        );
        assert!(report.rejected > 0, "campaign never reached the plane parser");
    }

    #[test]
    fn refixed_plane_headers_reach_the_directory_validation() {
        // With the header digest re-signed, rejection must come from the
        // geometry checks (directory lengths, alignment, counts) — prove
        // mutations actually penetrate past the digest.
        let base = paged_base_stream();
        let mut interior_rejects = 0;
        for seed in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut bytes, _, refixed) = mutate_with(&base, &mut rng, &|bytes| refix_plane_header(bytes));
            if !refixed {
                refix_plane_header(&mut bytes);
            }
            if matches!(decode_paged(&bytes), CaseOutcome::Rejected) {
                interior_rejects += 1;
            }
        }
        assert!(
            interior_rejects > 8,
            "mutations never reached past the header digest: {interior_rejects}"
        );
    }

    #[test]
    fn taxonomy_codec_survives_mutation_campaign() {
        let report = taxonomy_campaign(96, 0x17CB);
        assert_eq!(report.cases, 96);
        assert_eq!(
            report.panics, 0,
            "taxonomy decoder panicked; replay seeds {:?}",
            report.panic_seeds
        );
        assert!(report.rejected > 0, "campaign never reached the decoder");
    }

    #[test]
    fn refixed_taxonomies_reach_the_name_table() {
        // With the interior ITC1 trailer re-signed, some rejections must
        // come from the name-table bounds checks rather than the closure
        // checksum — prove the campaign exercises the fixed panic sites.
        let base = taxonomy_base_stream();
        let mut name_table_rejects = 0;
        for seed in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut bytes, _, refixed) =
                mutate_with(&base, &mut rng, &|bytes| refix_taxonomy(bytes));
            if !refixed {
                refix_taxonomy(&mut bytes);
            }
            if let Err(e) = tc_kb::Taxonomy::from_bytes(&bytes) {
                if e.contains("name") || e.contains("truncated") {
                    name_table_rejects += 1;
                }
            }
        }
        assert!(
            name_table_rejects > 4,
            "mutations never reached the name table: {name_table_rejects}"
        );
    }

    #[test]
    fn refixed_checksums_reach_the_decoder_interior() {
        // With the trailer re-fixed, rejections must come from interior
        // checks, not the checksum: count distinct error messages.
        let base = closure_base_stream();
        let mut interior = 0;
        for seed in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut bytes, _, refixed) = mutate(&base, &mut rng);
            if !refixed {
                refix_checksum(&mut bytes);
            }
            if let Err(e) = tc_core::CompressedClosure::from_bytes(&bytes) {
                if !matches!(e, tc_core::codec::DecodeError::Corrupt("checksum mismatch")) {
                    interior += 1;
                }
            }
        }
        assert!(interior > 8, "mutations never reached past the trailer: {interior}");
    }
}
