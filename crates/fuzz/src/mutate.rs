//! Mutation fuzzing for binary codecs.
//!
//! Complements the op-trace engine: instead of churning the *update* paths,
//! this corrupts serialized byte streams — bit flips, truncation,
//! length-field sabotage, span surgery — and asserts the decoder fails
//! *closed*: a structured decode error, never a panic and never an
//! allocation sized by a corrupted length field. Every interval-tc stream
//! ends in a FNV-1a trailer, so half of the cases re-fix the checksum after
//! mutating; without that, nearly every mutation dies at the trailer check
//! and the decoder's interior never gets exercised.
//!
//! The driver is generic over the decoder (`&[u8] -> CaseOutcome`), so the
//! same campaign runs against [`tc_core::CompressedClosure::from_bytes`]
//! and the server's dictionary codec.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tc_core::codec::fnv1a;

/// One family of corruption applied to a valid stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// 1–8 single-bit flips at random positions.
    BitFlips,
    /// Cut the stream to a random shorter length.
    Truncate,
    /// Overwrite a 4-byte window with `u32::MAX` — length-field sabotage.
    MaxU32,
    /// Overwrite an 8-byte window with `u64::MAX` — count-field sabotage.
    MaxU64,
    /// Zero a short span.
    ZeroSpan,
    /// Copy one span over another (duplicates records).
    DupSpan,
    /// Splice a span out entirely (shifts every later field).
    DeleteSpan,
}

const KINDS: [MutationKind; 7] = [
    MutationKind::BitFlips,
    MutationKind::Truncate,
    MutationKind::MaxU32,
    MutationKind::MaxU64,
    MutationKind::ZeroSpan,
    MutationKind::DupSpan,
    MutationKind::DeleteSpan,
];

/// Recomputes the trailing FNV-1a checksum over everything before it, so a
/// mutated stream passes the trailer check and reaches the decoder proper.
pub fn refix_checksum(bytes: &mut [u8]) {
    if bytes.len() < 8 {
        return;
    }
    let split = bytes.len() - 8;
    let sum = fnv1a(&bytes[..split]);
    bytes[split..].copy_from_slice(&sum.to_le_bytes());
}

/// Applies one random mutation to `base`. Returns the mutated stream, the
/// mutation family, and whether the checksum was re-fixed afterwards.
pub fn mutate(base: &[u8], rng: &mut StdRng) -> (Vec<u8>, MutationKind, bool) {
    let mut bytes = base.to_vec();
    let kind = KINDS[rng.random_range(0..KINDS.len())];
    let len = bytes.len();
    match kind {
        MutationKind::BitFlips => {
            for _ in 0..rng.random_range(1..=8) {
                let pos = rng.random_range(0..len);
                bytes[pos] ^= 1u8 << rng.random_range(0..8u32);
            }
        }
        MutationKind::Truncate => {
            bytes.truncate(rng.random_range(0..len));
        }
        MutationKind::MaxU32 => {
            let pos = rng.random_range(0..len.saturating_sub(4).max(1));
            let end = (pos + 4).min(len);
            bytes[pos..end].fill(0xFF);
        }
        MutationKind::MaxU64 => {
            let pos = rng.random_range(0..len.saturating_sub(8).max(1));
            let end = (pos + 8).min(len);
            bytes[pos..end].fill(0xFF);
        }
        MutationKind::ZeroSpan => {
            let pos = rng.random_range(0..len);
            let end = (pos + rng.random_range(1..=16usize)).min(len);
            bytes[pos..end].fill(0);
        }
        MutationKind::DupSpan => {
            let span = rng.random_range(1..=16.min(len));
            let src = rng.random_range(0..=len - span);
            let dst = rng.random_range(0..=len - span);
            let copy = bytes[src..src + span].to_vec();
            bytes[dst..dst + span].copy_from_slice(&copy);
        }
        MutationKind::DeleteSpan => {
            let span = rng.random_range(1..=16.min(len));
            let pos = rng.random_range(0..=len - span);
            bytes.drain(pos..pos + span);
        }
    }
    // Half the time, make the trailer lie for the mutation so the decoder's
    // interior — not the checksum — has to reject the stream.
    let refixed = rng.random_bool(0.5);
    if refixed {
        refix_checksum(&mut bytes);
    }
    (bytes, kind, refixed)
}

/// What one decode attempt did with a mutated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The decoder returned a structured error — the expected behaviour.
    Rejected,
    /// The decoder accepted the stream and the result passed its semantic
    /// check (e.g. the mutation only touched a benign config byte).
    OkClean,
    /// The decoder accepted the stream but the result failed its semantic
    /// check — silent corruption that only a deep verify catches.
    OkCorrupt,
}

/// Tally of a mutation campaign. The hard pass criterion is
/// [`MutationReport::panics`]` == 0`: a decoder must never panic on
/// attacker-controlled bytes, however mangled.
#[derive(Debug, Clone, Default)]
pub struct MutationReport {
    /// Mutated streams attempted.
    pub cases: u64,
    /// Cases the decoder rejected with a structured error.
    pub rejected: u64,
    /// Cases that decoded and passed the semantic check.
    pub ok_clean: u64,
    /// Cases that decoded but failed the semantic check.
    pub ok_corrupt: u64,
    /// Cases where the decoder (or the semantic check) panicked — bugs.
    pub panics: u64,
    /// Case seeds that panicked, for replay; at most the first 16.
    pub panic_seeds: Vec<u64>,
}

impl MutationReport {
    /// Whether the campaign found a decoder bug.
    pub fn failed(&self) -> bool {
        self.panics > 0
    }
}

/// Runs `cases` mutations of `base` through `decode`, starting from
/// `seed`. Each case uses its own deterministic RNG (`seed + i`), so a
/// panicking case replays in isolation from its seed alone.
pub fn campaign<F>(base: &[u8], cases: u64, seed: u64, decode: F) -> MutationReport
where
    F: Fn(&[u8]) -> CaseOutcome,
{
    let mut report = MutationReport::default();
    for i in 0..cases {
        let case_seed = seed.wrapping_add(i);
        let mut rng = StdRng::seed_from_u64(case_seed);
        let (bytes, _, _) = mutate(base, &mut rng);
        report.cases += 1;
        match catch_unwind(AssertUnwindSafe(|| decode(&bytes))) {
            Ok(CaseOutcome::Rejected) => report.rejected += 1,
            Ok(CaseOutcome::OkClean) => report.ok_clean += 1,
            Ok(CaseOutcome::OkCorrupt) => report.ok_corrupt += 1,
            Err(_) => {
                report.panics += 1;
                if report.panic_seeds.len() < 16 {
                    report.panic_seeds.push(case_seed);
                }
            }
        }
    }
    report
}

/// Replays a single campaign case against `decode`, returning the mutated
/// bytes it fed in — the starting point for manual shrinking.
pub fn replay_case<F>(base: &[u8], case_seed: u64, decode: F) -> (Vec<u8>, CaseOutcome)
where
    F: Fn(&[u8]) -> CaseOutcome,
{
    let mut rng = StdRng::seed_from_u64(case_seed);
    let (bytes, _, _) = mutate(base, &mut rng);
    let outcome = decode(&bytes);
    (bytes, outcome)
}

/// The standard closure-codec campaign: mutate a mid-update closure stream
/// and decode with [`tc_core::CompressedClosure::from_bytes`], deep-verifying
/// anything the decoder accepts.
pub fn closure_campaign(cases: u64, seed: u64) -> MutationReport {
    let base = closure_base_stream();
    campaign(&base, cases, seed, decode_closure)
}

/// Decodes one stream as a closure and classifies the outcome.
pub fn decode_closure(bytes: &[u8]) -> CaseOutcome {
    match tc_core::CompressedClosure::from_bytes(bytes) {
        Err(_) => CaseOutcome::Rejected,
        Ok(c) => {
            if c.verify().is_ok() {
                CaseOutcome::OkClean
            } else {
                CaseOutcome::OkCorrupt
            }
        }
    }
}

/// A serialized closure in a rich state — tombstones, refinement nodes,
/// consumed reserve — so mutations can hit every codec section.
pub fn closure_base_stream() -> Vec<u8> {
    use tc_graph::generators;
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes: 40,
        avg_out_degree: 2.0,
        seed: 17,
    });
    let mut c = tc_core::ClosureConfig::new()
        .gap(32)
        .reserve(3)
        .build(&g)
        .expect("base closure builds");
    let leaf = c
        .add_node_with_parents(&[tc_graph::NodeId(3)])
        .expect("add_node");
    let preds: Vec<tc_graph::NodeId> = c.graph().predecessors(leaf).to_vec();
    c.refine_insert(leaf, &preds).expect("refine");
    let tree_arc = c
        .graph()
        .edges()
        .find(|&(s, d)| c.cover().is_tree_arc(s, d));
    if let Some((s, d)) = tree_arc {
        c.remove_edge(s, d).expect("remove tree arc");
    }
    c.to_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_codec_survives_mutation_campaign() {
        let report = closure_campaign(96, 0xC0DEC);
        assert_eq!(report.cases, 96);
        assert_eq!(
            report.panics, 0,
            "decoder panicked; replay seeds {:?}",
            report.panic_seeds
        );
        // `ok_corrupt` cases exist only because the campaign deliberately
        // re-signs mutated payloads: FNV-1a would reject every one of them
        // in the wild (~2^-64 collision odds for random corruption). They
        // stay in the report for visibility, but the hard criterion is that
        // the decoder never panics and never sizes an allocation from a
        // corrupted length field.
        assert!(report.rejected > 0, "campaign never reached the decoder");
    }

    #[test]
    fn refixed_checksums_reach_the_decoder_interior() {
        // With the trailer re-fixed, rejections must come from interior
        // checks, not the checksum: count distinct error messages.
        let base = closure_base_stream();
        let mut interior = 0;
        for seed in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut bytes, _, refixed) = mutate(&base, &mut rng);
            if !refixed {
                refix_checksum(&mut bytes);
            }
            if let Err(e) = tc_core::CompressedClosure::from_bytes(&bytes) {
                if !matches!(e, tc_core::codec::DecodeError::Corrupt("checksum mismatch")) {
                    interior += 1;
                }
            }
        }
        assert!(interior > 8, "mutations never reached past the trailer: {interior}");
    }
}
