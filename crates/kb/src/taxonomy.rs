//! The IS-A hierarchy abstract data type.

use std::collections::HashMap;
use std::fmt;

use tc_core::{ClosureConfig, CompressedClosure, UpdateError};
use tc_graph::NodeId;

/// A concept handle (dense, stable for the life of the taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConceptId(pub u32);

impl ConceptId {
    fn node(self) -> NodeId {
        NodeId(self.0)
    }
}

/// Errors from taxonomy operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaxonomyError {
    /// Concept name already defined.
    Duplicate(String),
    /// Referenced concept does not exist.
    Unknown(String),
    /// The IS-A arc would make the hierarchy cyclic.
    SubsumptionCycle(String, String),
    /// Refinement precondition failed (see
    /// [`tc_core::CompressedClosure::refine_insert`]).
    Refine(UpdateError),
    /// The underlying closure rejected the update — e.g. a configured
    /// number-line capacity ran out ([`UpdateError::NumberLineFull`]).
    Update(UpdateError),
    /// A disjointness declaration is already contradicted by the hierarchy.
    DisjointnessViolated {
        /// First declared concept.
        a: String,
        /// Second declared concept.
        b: String,
        /// A concept subsumed by both.
        witness: String,
    },
}

impl fmt::Display for TaxonomyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaxonomyError::Duplicate(n) => write!(f, "concept {n:?} already defined"),
            TaxonomyError::Unknown(n) => write!(f, "unknown concept {n:?}"),
            TaxonomyError::SubsumptionCycle(a, b) => {
                write!(f, "IS-A arc {a:?} -> {b:?} would create a subsumption cycle")
            }
            TaxonomyError::Refine(e) => write!(f, "refinement failed: {e}"),
            TaxonomyError::Update(e) => write!(f, "closure update failed: {e}"),
            TaxonomyError::DisjointnessViolated { a, b, witness } => write!(
                f,
                "cannot declare {a:?} disjoint from {b:?}: {witness:?} is subsumed by both"
            ),
        }
    }
}

impl std::error::Error for TaxonomyError {}

/// An IS-A hierarchy with subsumption answered by interval lookup.
///
/// Arcs run from the more general concept to the more specific one, so
/// `a subsumes b` ⇔ the closure reaches `b` from `a`. Concepts are usually
/// added leaves-down (the way knowledge bases grow), which is exactly the
/// paper's constant-work tree-arc insertion.
///
/// ```
/// use tc_kb::Taxonomy;
///
/// let mut t = Taxonomy::new();
/// t.add_root("thing").unwrap();
/// t.add_concept("device", &["thing"]).unwrap();
/// t.add_concept("printer", &["device"]).unwrap();
/// t.add_concept("scanner", &["device"]).unwrap();
/// t.add_concept("copier", &["printer", "scanner"]).unwrap();
/// assert!(t.subsumes("device", "copier").unwrap());
/// assert!(!t.subsumes("printer", "scanner").unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct Taxonomy {
    closure: CompressedClosure,
    names: Vec<String>,
    by_name: HashMap<String, ConceptId>,
}

impl Default for Taxonomy {
    fn default() -> Self {
        Self::new()
    }
}

impl Taxonomy {
    /// Creates an empty taxonomy. The default configuration reserves a
    /// refinement tail of 16 numbers per concept so [`Taxonomy::refine`] is
    /// constant-time until tails are consumed (then a relabel replenishes
    /// them).
    pub fn new() -> Self {
        Self::with_config(ClosureConfig::new().reserve(16))
    }

    /// Creates an empty taxonomy with an explicit closure configuration.
    pub fn with_config(config: ClosureConfig) -> Self {
        Taxonomy {
            closure: config
                .build(&tc_graph::DiGraph::new())
                .expect("empty graph is acyclic"),
            names: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the taxonomy is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Defines a root concept (no parents).
    pub fn add_root(&mut self, name: &str) -> Result<ConceptId, TaxonomyError> {
        self.add_concept(name, &[])
    }

    /// Defines a concept below the given parents. The first parent supplies
    /// the tree arc (constant work); the rest are non-tree arcs with
    /// subsumption-pruned propagation — the paper's §4.1 additions.
    pub fn add_concept(&mut self, name: &str, parents: &[&str]) -> Result<ConceptId, TaxonomyError> {
        if self.by_name.contains_key(name) {
            return Err(TaxonomyError::Duplicate(name.to_string()));
        }
        let parent_nodes: Vec<NodeId> = parents
            .iter()
            .map(|p| self.id(p).map(ConceptId::node))
            .collect::<Result<_, _>>()?;
        // Parent validation has already passed, but the insertion itself can
        // still fail when a configured number-line capacity is exhausted —
        // surface that instead of panicking (nothing has mutated yet).
        let node = self
            .closure
            .add_node_with_parents(&parent_nodes)
            .map_err(TaxonomyError::Update)?;
        let id = ConceptId(node.0);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        debug_assert_eq!(self.names.len(), self.closure.node_count());
        Ok(id)
    }

    /// Adds an IS-A arc between existing concepts (`general` subsumes
    /// `specific`).
    pub fn add_isa(&mut self, general: &str, specific: &str) -> Result<(), TaxonomyError> {
        let g = self.id(general)?;
        let s = self.id(specific)?;
        match self.closure.add_edge(g.node(), s.node()) {
            Ok(_) => Ok(()),
            Err(UpdateError::WouldCreateCycle { .. }) | Err(UpdateError::SelfLoop(_)) => Err(
                TaxonomyError::SubsumptionCycle(general.to_string(), specific.to_string()),
            ),
            Err(e) => Err(TaxonomyError::Refine(e)),
        }
    }

    /// [`Self::add_isa`] by id, additionally reporting every subsumption
    /// pair the arc made true ([`tc_core::EdgeDelta`]) — the delta a rule
    /// engine forward-chains over.
    pub fn add_isa_delta(
        &mut self,
        general: ConceptId,
        specific: ConceptId,
    ) -> Result<tc_core::EdgeDelta, TaxonomyError> {
        match self.closure.add_edge_delta(general.node(), specific.node()) {
            Ok(delta) => Ok(delta),
            Err(UpdateError::WouldCreateCycle { .. }) | Err(UpdateError::SelfLoop(_)) => {
                Err(TaxonomyError::SubsumptionCycle(
                    self.name(general).to_string(),
                    self.name(specific).to_string(),
                ))
            }
            Err(e) => Err(TaxonomyError::Update(e)),
        }
    }

    /// Removes a direct IS-A arc by id, reporting every subsumption pair
    /// that lost its last witness path. Runs the §4.2 scoped recompute
    /// internally.
    pub fn remove_isa_delta(
        &mut self,
        general: ConceptId,
        specific: ConceptId,
    ) -> Result<tc_core::EdgeDelta, TaxonomyError> {
        self.closure
            .remove_edge_delta(general.node(), specific.node())
            .map_err(TaxonomyError::Update)
    }

    /// Whether a *direct* IS-A arc exists between the two ids.
    pub fn has_direct_isa(&self, general: ConceptId, specific: ConceptId) -> bool {
        self.closure.graph().has_edge(general.node(), specific.node())
    }

    /// Interposes a new concept between `child`'s current parents and
    /// `child` — §4.1 hierarchy refinement, constant-time while the reserve
    /// tail lasts (the taxonomy transparently relabels and retries when it
    /// runs out).
    pub fn refine(&mut self, name: &str, child: &str) -> Result<ConceptId, TaxonomyError> {
        if self.by_name.contains_key(name) {
            return Err(TaxonomyError::Duplicate(name.to_string()));
        }
        let c = self.id(child)?;
        let parents: Vec<NodeId> = self.closure.graph().predecessors(c.node()).to_vec();
        let node = match self.closure.refine_insert(c.node(), &parents) {
            Ok(node) => node,
            Err(UpdateError::ReserveExhausted(_)) => {
                self.closure.relabel();
                self.closure
                    .refine_insert(c.node(), &parents)
                    .map_err(TaxonomyError::Refine)?
            }
            Err(e) => return Err(TaxonomyError::Refine(e)),
        };
        let id = ConceptId(node.0);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Whether `general` subsumes `specific` (reflexive) — one interval
    /// lookup, "a lookup instead of a graph traversal".
    pub fn subsumes(&self, general: &str, specific: &str) -> Result<bool, TaxonomyError> {
        let g = self.id(general)?;
        let s = self.id(specific)?;
        Ok(self.closure.reaches(g.node(), s.node()))
    }

    /// Subsumption by id (no name lookup).
    pub fn subsumes_id(&self, general: ConceptId, specific: ConceptId) -> bool {
        self.closure.reaches(general.node(), specific.node())
    }

    /// All concepts subsumed by `name` (excluding itself).
    pub fn descendants(&self, name: &str) -> Result<Vec<&str>, TaxonomyError> {
        let c = self.id(name)?;
        Ok(self
            .closure
            .successors(c.node())
            .into_iter()
            .filter(|v| v.0 != c.0)
            .map(|v| self.names[v.index()].as_str())
            .collect())
    }

    /// All concepts subsuming `name` (excluding itself).
    pub fn ancestors(&self, name: &str) -> Result<Vec<&str>, TaxonomyError> {
        let c = self.id(name)?;
        Ok(self
            .closure
            .predecessors(c.node())
            .into_iter()
            .filter(|v| v.0 != c.0)
            .map(|v| self.names[v.index()].as_str())
            .collect())
    }

    /// Immediate parents of `name`.
    pub fn parents(&self, name: &str) -> Result<Vec<&str>, TaxonomyError> {
        let c = self.id(name)?;
        Ok(self
            .closure
            .graph()
            .predecessors(c.node())
            .iter()
            .map(|v| self.names[v.index()].as_str())
            .collect())
    }

    /// Immediate children of `name`.
    pub fn children(&self, name: &str) -> Result<Vec<&str>, TaxonomyError> {
        let c = self.id(name)?;
        Ok(self
            .closure
            .graph()
            .successors(c.node())
            .iter()
            .map(|v| self.names[v.index()].as_str())
            .collect())
    }

    /// The id of a concept name.
    pub fn id(&self, name: &str) -> Result<ConceptId, TaxonomyError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| TaxonomyError::Unknown(name.to_string()))
    }

    /// The name of a concept id.
    pub fn name(&self, id: ConceptId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Iterates all concept names in definition order.
    pub fn concepts(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// The underlying compressed closure.
    pub fn closure(&self) -> &CompressedClosure {
        &self.closure
    }

    /// Caps the underlying number line (admission control for untrusted
    /// writers): once the cap is hit, concept insertion fails with
    /// [`TaxonomyError::Update`] instead of growing without bound.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.closure.set_number_line_capacity(capacity);
    }

    /// Serializes the taxonomy (closure plus concept names) to bytes.
    /// The knowledge base "must be managed as a database" (§2.1): the cached
    /// hierarchy persists instead of being re-derived on startup.
    pub fn to_bytes(&self) -> Vec<u8> {
        let closure_bytes = self.closure.to_bytes();
        let mut out = Vec::with_capacity(closure_bytes.len() + 64);
        out.extend_from_slice(b"ITCK");
        out.extend_from_slice(&(closure_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&closure_bytes);
        out.extend_from_slice(&(self.names.len() as u64).to_le_bytes());
        for name in &self.names {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        out
    }

    /// Restores a taxonomy serialized with [`Taxonomy::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, String> {
        let fail = |m: &str| Err(format!("taxonomy stream: {m}"));
        if data.len() < 12 || &data[..4] != b"ITCK" {
            return fail("bad header");
        }
        // Every length below comes straight off the wire; a hostile value
        // can exceed the stream (or usize itself), so each bound is checked
        // with wrap-free arithmetic *before* any slice is taken.
        let closure_len = u64::from_le_bytes(data[4..12].try_into().expect("8 bytes"));
        let rest = &data[12..];
        let Some(closure_len) = usize::try_from(closure_len)
            .ok()
            .filter(|&n| n <= rest.len() && rest.len() - n >= 8)
        else {
            return fail("truncated");
        };
        let closure = CompressedClosure::from_bytes(&rest[..closure_len])
            .map_err(|e| format!("taxonomy stream: {e}"))?;
        let mut pos = closure_len;
        let count = u64::from_le_bytes(rest[pos..pos + 8].try_into().expect("8 bytes"));
        pos += 8;
        if count != closure.node_count() as u64 {
            return fail("name count does not match closure");
        }
        let count = closure.node_count();
        let mut names = Vec::with_capacity(count);
        let mut by_name = HashMap::with_capacity(count);
        for ix in 0..count {
            let Some(len_end) = pos.checked_add(4).filter(|&e| e <= rest.len()) else {
                return fail("truncated name length");
            };
            let len = u32::from_le_bytes(rest[pos..len_end].try_into().expect("4 bytes")) as usize;
            pos = len_end;
            let Some(name_end) = pos.checked_add(len).filter(|&e| e <= rest.len()) else {
                return fail("truncated name");
            };
            let name = std::str::from_utf8(&rest[pos..name_end])
                .map_err(|_| "taxonomy stream: non-UTF-8 name".to_string())?
                .to_string();
            pos = name_end;
            if by_name.insert(name.clone(), ConceptId(ix as u32)).is_some() {
                return fail("duplicate concept name");
            }
            names.push(name);
        }
        if pos != rest.len() {
            return fail("trailing bytes");
        }
        Ok(Taxonomy {
            closure,
            names,
            by_name,
        })
    }

    /// Exhaustive consistency check (tests only).
    pub fn verify(&self) -> Result<(), String> {
        self.closure.verify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_taxonomy() -> Taxonomy {
        let mut t = Taxonomy::new();
        t.add_root("thing").unwrap();
        t.add_concept("device", &["thing"]).unwrap();
        t.add_concept("printer", &["device"]).unwrap();
        t.add_concept("scanner", &["device"]).unwrap();
        t.add_concept("laser-printer", &["printer"]).unwrap();
        t.add_concept("copier", &["printer", "scanner"]).unwrap();
        t
    }

    #[test]
    fn subsumption_queries() {
        let t = device_taxonomy();
        assert!(t.subsumes("thing", "copier").unwrap());
        assert!(t.subsumes("device", "laser-printer").unwrap());
        assert!(t.subsumes("scanner", "copier").unwrap());
        assert!(!t.subsumes("scanner", "laser-printer").unwrap());
        assert!(t.subsumes("copier", "copier").unwrap(), "reflexive");
        assert!(!t.subsumes("copier", "device").unwrap(), "antisymmetric");
        t.verify().unwrap();
    }

    #[test]
    fn navigation() {
        let t = device_taxonomy();
        let mut desc = t.descendants("printer").unwrap();
        desc.sort_unstable();
        assert_eq!(desc, vec!["copier", "laser-printer"]);
        let mut anc = t.ancestors("copier").unwrap();
        anc.sort_unstable();
        assert_eq!(anc, vec!["device", "printer", "scanner", "thing"]);
        assert_eq!(t.parents("copier").unwrap().len(), 2);
        let mut kids = t.children("device").unwrap();
        kids.sort_unstable();
        assert_eq!(kids, vec!["printer", "scanner"]);
    }

    #[test]
    fn duplicate_and_unknown_errors() {
        let mut t = device_taxonomy();
        assert!(matches!(
            t.add_concept("printer", &["device"]),
            Err(TaxonomyError::Duplicate(_))
        ));
        assert!(matches!(
            t.add_concept("widget", &["gizmo"]),
            Err(TaxonomyError::Unknown(_))
        ));
        assert!(matches!(t.subsumes("gizmo", "thing"), Err(TaxonomyError::Unknown(_))));
    }

    #[test]
    fn cycle_rejected() {
        let mut t = device_taxonomy();
        assert!(matches!(
            t.add_isa("copier", "device"),
            Err(TaxonomyError::SubsumptionCycle(_, _))
        ));
        t.verify().unwrap();
    }

    #[test]
    fn late_isa_arc() {
        let mut t = device_taxonomy();
        t.add_concept("peripheral", &["thing"]).unwrap();
        t.add_isa("peripheral", "printer").unwrap();
        assert!(t.subsumes("peripheral", "laser-printer").unwrap());
        t.verify().unwrap();
    }

    #[test]
    fn refinement_inserts_between() {
        let mut t = device_taxonomy();
        // Interpose "imaging-device" above copier (whose parents are
        // printer and scanner).
        let id = t.refine("imaging-device", "copier").unwrap();
        assert_eq!(t.name(id), "imaging-device");
        assert!(t.subsumes("printer", "imaging-device").unwrap());
        assert!(t.subsumes("scanner", "imaging-device").unwrap());
        assert!(t.subsumes("imaging-device", "copier").unwrap());
        assert!(!t.subsumes("laser-printer", "imaging-device").unwrap());
        t.verify().unwrap();
    }

    #[test]
    fn refinement_survives_reserve_exhaustion() {
        let mut t = Taxonomy::with_config(ClosureConfig::new().gap(8).reserve(2));
        t.add_root("root").unwrap();
        t.add_concept("leaf", &["root"]).unwrap();
        for i in 0..10 {
            t.refine(&format!("mid{i}"), "leaf").unwrap();
        }
        assert!(t.subsumes("root", "mid9").unwrap());
        assert!(t.subsumes("mid0", "leaf").unwrap());
        t.verify().unwrap();
    }

    #[test]
    fn taxonomy_persistence_roundtrip() {
        let mut t = device_taxonomy();
        t.refine("imaging-device", "copier").unwrap();
        let bytes = t.to_bytes();
        let back = Taxonomy::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), t.len());
        assert!(back.subsumes("thing", "copier").unwrap());
        assert!(back.subsumes("imaging-device", "copier").unwrap());
        assert!(!back.subsumes("scanner", "laser-printer").unwrap());
        back.verify().unwrap();
        // And it keeps working: add below a restored concept.
        let mut back = back;
        back.add_concept("color-copier", &["copier"]).unwrap();
        assert!(back.subsumes("imaging-device", "color-copier").unwrap());
    }

    #[test]
    fn from_bytes_rejects_wrapping_closure_lengths_without_panicking() {
        // Shrunk reproducer from the ITCK mutation campaign: an all-ones
        // closure length made the old `closure_len + 8` truncation check
        // wrap to a tiny value, and the subsequent slice panicked.
        let mut evil = Vec::new();
        evil.extend_from_slice(b"ITCK");
        evil.extend_from_slice(&u64::MAX.to_le_bytes());
        evil.extend_from_slice(&[0u8; 16]);
        assert!(Taxonomy::from_bytes(&evil).is_err());
        // Same shape with the length tuned so `closure_len + 8` wraps to 4.
        let mut evil = Vec::new();
        evil.extend_from_slice(b"ITCK");
        evil.extend_from_slice(&(u64::MAX - 3).to_le_bytes());
        evil.extend_from_slice(&[0u8; 16]);
        assert!(Taxonomy::from_bytes(&evil).is_err());
    }

    #[test]
    fn from_bytes_rejects_hostile_name_lengths_without_panicking() {
        // Patch the first name's length field to u32::MAX: the name-table
        // bound must reject it wrap-free rather than slicing past the end.
        let bytes = device_taxonomy().to_bytes();
        let closure_len = u64::from_le_bytes(bytes[4..12].try_into().unwrap()) as usize;
        let len_off = 12 + closure_len + 8; // first name's u32 length field
        let mut bad = bytes.clone();
        bad[len_off..len_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Taxonomy::from_bytes(&bad).is_err());
        // Stream cut mid-length-field.
        let mut short = bytes.clone();
        short.truncate(len_off + 2);
        assert!(Taxonomy::from_bytes(&short).is_err());
        // Stream cut mid-name.
        let mut short = bytes;
        short.truncate(len_off + 5);
        assert!(Taxonomy::from_bytes(&short).is_err());
    }

    #[test]
    fn capacity_exhaustion_is_an_error_not_a_panic() {
        let mut t = Taxonomy::new();
        t.add_root("a").unwrap();
        t.add_concept("b", &["a"]).unwrap();
        t.set_capacity(t.closure().node_count());
        assert!(matches!(
            t.add_concept("c", &["b"]),
            Err(TaxonomyError::Update(UpdateError::NumberLineFull { .. }))
        ));
        // Nothing mutated: the failed name is not registered.
        assert!(matches!(t.id("c"), Err(TaxonomyError::Unknown(_))));
        assert_eq!(t.len(), 2);
        t.verify().unwrap();
    }

    #[test]
    fn taxonomy_persistence_rejects_garbage() {
        assert!(Taxonomy::from_bytes(b"junk").is_err());
        let mut bytes = device_taxonomy().to_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(Taxonomy::from_bytes(&bytes).is_err());
        // Wrong inner magic.
        let mut bad = device_taxonomy().to_bytes();
        bad[12] ^= 0xFF; // first closure byte
        assert!(Taxonomy::from_bytes(&bad).is_err());
    }

    #[test]
    fn large_hierarchy_growth_like_a_knowledge_base() {
        // Grow a 100k-ish concept space the way §2.1 describes (airplane
        // parts), scaled down for test time: breadth-first concept addition
        // with occasional multiple inheritance.
        let mut t = Taxonomy::new();
        t.add_root("part").unwrap();
        let mut layer = vec!["part".to_string()];
        let mut counter = 0;
        for depth in 0..4 {
            let mut next = Vec::new();
            for parent in &layer {
                for _ in 0..4 {
                    let name = format!("c{counter}");
                    counter += 1;
                    let mut parents = vec![parent.as_str()];
                    // Every 7th concept also inherits from the previous one.
                    if counter % 7 == 0 && !next.is_empty() {
                        parents.push(next.last().map(String::as_str).unwrap());
                    }
                    t.add_concept(&name, &parents).unwrap();
                    next.push(name);
                }
            }
            layer = next;
            assert!(depth < 4);
        }
        assert_eq!(t.len(), 1 + 4 + 16 + 64 + 256);
        assert!(t.descendants("part").unwrap().len() == t.len() - 1);
        t.verify().unwrap();
    }
}
