//! Knowledge-representation layer: IS-A hierarchies served by the
//! compressed closure.
//!
//! The paper's second motivating application (§2.1): "systems based on
//! [semantic networks and frames] allow concepts to be organized into
//! subclass hierarchies (often known as 'IS-A hierarchies'), with
//! 'inheritance' being a key component of their reasoning algorithms …
//! Questions about the transitive closure of the IS-A relationship, given
//! their importance and frequency, must be answered by a technique more
//! efficient than simple pointer chasing." §6 adds that CLASSIC "has
//! separated the maintenance of subclass relationships into an abstract
//! data type" — this crate is that abstract data type:
//!
//! * [`Taxonomy`] — named concepts with multiple parents; `subsumes` is one
//!   interval lookup; concept insertion is the paper's constant-work leaf
//!   addition; `refine` is the §4.1 constant-time hierarchy refinement.
//! * [`lattice`] — least upper bounds, greatest lower bounds, and
//!   disjointness over the subsumption order (the operations of \[5\] the
//!   paper's §5 relates to).
//! * [`Inheritance`] — property inheritance along IS-A paths with
//!   most-specific-wins override and multiple-inheritance conflict
//!   detection.
//! * [`rules`] — datalog-ish Horn rules over the transitive relations,
//!   forward-chained semi-naively through delta-reporting closure updates,
//!   with DRed-style retraction and a naive-re-derivation differential gate.
//! * [`Classifier`] — a feature-vector terminological classifier in the
//!   KL-ONE tradition: subsumption is feature containment, and new concepts
//!   are slotted under their most specific subsumers automatically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod classify;
mod command;
mod disjoint;
mod inherit;
pub mod lattice;
pub mod rules;
mod taxonomy;

pub use classify::{Classifier, DefinedConcept};
pub use command::KbCommand;
pub use disjoint::{DisjointnessAxioms, DisjointnessViolation};
pub use inherit::{Inheritance, PropertyLookup};
pub use rules::{
    AssertOutcome, KbChange, KbError, KbStats, KnowledgeBase, Pred, RetractOutcome, Rule,
};
pub use taxonomy::{ConceptId, Taxonomy, TaxonomyError};
