//! Declared disjointness axioms.
//!
//! §6 lists "disjointness" among the properties the compression techniques
//! serve. [`lattice::disjoint`](crate::lattice::disjoint) computes *observed*
//! disjointness (no common subsumee); CLASSIC-style systems additionally let
//! the knowledge engineer *declare* that two concepts can never overlap —
//! an axiom every later update must respect. [`DisjointnessAxioms`] stores
//! such declarations and checks them against the taxonomy with closure
//! lookups: concepts `a ⟂ b` are violated exactly when some concept is
//! subsumed by both.

use crate::{ConceptId, Taxonomy, TaxonomyError};

/// A set of pairwise disjointness declarations over taxonomy concepts.
#[derive(Debug, Clone, Default)]
pub struct DisjointnessAxioms {
    /// Declared pairs, stored with the smaller id first.
    pairs: Vec<(ConceptId, ConceptId)>,
}

/// A violated axiom: a witness concept subsumed by both declared-disjoint
/// concepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjointnessViolation {
    /// The declared-disjoint pair.
    pub pair: (ConceptId, ConceptId),
    /// A concept below both.
    pub witness: ConceptId,
}

impl DisjointnessAxioms {
    /// Creates an empty axiom set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `a ⟂ b`. Fails immediately if the taxonomy already violates
    /// it (the violation is returned inside the error string for
    /// diagnosis); a valid declaration is recorded for future checks.
    pub fn declare(
        &mut self,
        t: &Taxonomy,
        a: &str,
        b: &str,
    ) -> Result<(), TaxonomyError> {
        let (ia, ib) = (t.id(a)?, t.id(b)?);
        let pair = ordered(ia, ib);
        if let Some(witness) = common_subsumee(t, pair) {
            return Err(TaxonomyError::DisjointnessViolated {
                a: a.to_string(),
                b: b.to_string(),
                witness: t.name(witness).to_string(),
            });
        }
        if !self.pairs.contains(&pair) {
            self.pairs.push(pair);
        }
        Ok(())
    }

    /// Number of declared axioms.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no axioms are declared.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether two concepts are declared (directly) disjoint, or inherit
    /// disjointness from declared-disjoint subsumers — eye-surgeons and
    /// desks are disjoint because doctors and furniture are.
    pub fn are_disjoint(&self, t: &Taxonomy, a: &str, b: &str) -> Result<bool, TaxonomyError> {
        let (ia, ib) = (t.id(a)?, t.id(b)?);
        Ok(self.pairs.iter().any(|&(x, y)| {
            (t.subsumes_id(x, ia) && t.subsumes_id(y, ib))
                || (t.subsumes_id(x, ib) && t.subsumes_id(y, ia))
        }))
    }

    /// Checks every axiom against the current taxonomy, returning all
    /// violations (empty = consistent). Run after updates that add IS-A
    /// arcs or classify new concepts.
    pub fn check(&self, t: &Taxonomy) -> Vec<DisjointnessViolation> {
        self.pairs
            .iter()
            .filter_map(|&pair| {
                common_subsumee(t, pair).map(|witness| DisjointnessViolation { pair, witness })
            })
            .collect()
    }
}

fn ordered(a: ConceptId, b: ConceptId) -> (ConceptId, ConceptId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Any concept subsumed by both members of `pair` (two closure lookups per
/// candidate).
fn common_subsumee(t: &Taxonomy, pair: (ConceptId, ConceptId)) -> Option<ConceptId> {
    (0..t.len() as u32)
        .map(ConceptId)
        .find(|&c| t.subsumes_id(pair.0, c) && t.subsumes_id(pair.1, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Taxonomy {
        let mut t = Taxonomy::new();
        t.add_root("thing").unwrap();
        t.add_concept("animal", &["thing"]).unwrap();
        t.add_concept("furniture", &["thing"]).unwrap();
        t.add_concept("dog", &["animal"]).unwrap();
        t.add_concept("chair", &["furniture"]).unwrap();
        t
    }

    #[test]
    fn declare_and_inherit() {
        let t = sample();
        let mut ax = DisjointnessAxioms::new();
        ax.declare(&t, "animal", "furniture").unwrap();
        assert!(ax.are_disjoint(&t, "animal", "furniture").unwrap());
        // Inherited: dog ⟂ chair because their subsumers are disjoint.
        assert!(ax.are_disjoint(&t, "dog", "chair").unwrap());
        assert!(!ax.are_disjoint(&t, "dog", "animal").unwrap());
        assert!(ax.check(&t).is_empty());
        assert_eq!(ax.len(), 1);
    }

    #[test]
    fn declaration_rejected_when_already_violated() {
        let mut t = sample();
        t.add_concept("chimera", &["animal", "furniture"]).unwrap();
        let mut ax = DisjointnessAxioms::new();
        let err = ax.declare(&t, "animal", "furniture").unwrap_err();
        assert!(matches!(err, TaxonomyError::DisjointnessViolated { ref witness, .. }
            if witness == "chimera"));
        assert!(ax.is_empty());
    }

    #[test]
    fn later_update_detected_by_check() {
        let mut t = sample();
        let mut ax = DisjointnessAxioms::new();
        ax.declare(&t, "animal", "furniture").unwrap();
        // A multiply-inheriting concept sneaks in afterwards.
        t.add_concept("robot-dog-table", &["dog", "chair"]).unwrap();
        let violations = ax.check(&t);
        assert_eq!(violations.len(), 1);
        assert_eq!(t.name(violations[0].witness), "robot-dog-table");
    }

    #[test]
    fn self_disjointness_is_immediately_violated() {
        let t = sample();
        let mut ax = DisjointnessAxioms::new();
        // a ⟂ a is witnessed by a itself.
        assert!(ax.declare(&t, "dog", "dog").is_err());
        // And a ⟂ subsumer is witnessed by the subsumee.
        assert!(ax.declare(&t, "dog", "animal").is_err());
    }

    #[test]
    fn unknown_concepts_error() {
        let t = sample();
        let mut ax = DisjointnessAxioms::new();
        assert!(ax.declare(&t, "dog", "ghost").is_err());
        assert!(ax.are_disjoint(&t, "ghost", "dog").is_err());
    }
}
