//! A line-oriented command layer over [`KnowledgeBase`], shared verbatim by
//! the `interval-tc kb` script runner and the network daemon's KB verbs so
//! both front ends parse and answer identically.

use crate::rules::{AssertOutcome, KbError, KnowledgeBase, Pred, RetractOutcome};
use crate::PropertyLookup;

/// One parsed knowledge-base command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbCommand {
    /// `concept <name>` — introduce a concept (idempotent).
    Concept {
        /// Concept name.
        name: String,
    },
    /// `feature <concept> <feature>` — attach a feature (forward-chains).
    Feature {
        /// Concept name (created if absent).
        concept: String,
        /// Feature name.
        feature: String,
    },
    /// `rule <name>: <head> :- <body>` — define or redefine a rule.
    Rule {
        /// Full rule text after the `rule` keyword.
        text: String,
    },
    /// `assert isa|partof <a> <b>` — assert a base fact.
    Assert {
        /// Relation.
        pred: Pred,
        /// Subject.
        a: String,
        /// Object.
        b: String,
    },
    /// `retract isa|partof <a> <b>` — retract a base fact (DRed cascade).
    Retract {
        /// Relation.
        pred: Pred,
        /// Subject.
        a: String,
        /// Object.
        b: String,
    },
    /// `ask isa|partof <a> <b>` — one transitive membership probe.
    Ask {
        /// Relation.
        pred: Pred,
        /// Subject.
        a: String,
        /// Object.
        b: String,
    },
    /// `below isa|partof <a>` — everything strictly below `a`, sorted.
    Below {
        /// Relation.
        pred: Pred,
        /// Subject.
        a: String,
    },
    /// `set-prop <concept> <prop> <value>` — set an inheritable property.
    SetProp {
        /// Concept name (created if absent).
        concept: String,
        /// Property name.
        prop: String,
        /// Property value (rest of line, may contain spaces).
        value: String,
    },
    /// `get-prop <concept> <prop>` — resolve a property by inheritance.
    GetProp {
        /// Concept name.
        concept: String,
        /// Property name.
        prop: String,
    },
    /// `check` — run the naive-re-derivation differential gate.
    Check,
    /// `stats` — evaluation counters.
    Stats,
}

impl KbCommand {
    /// Parses one command line (comments start with `#`; blank lines are
    /// rejected — filter them before calling).
    pub fn parse(line: &str) -> Result<KbCommand, KbError> {
        let fail = |m: String| Err(KbError::Parse(m));
        let line = line.trim();
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        let two = |rest: &str| -> Result<(String, String), KbError> {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some(a), Some(b), None) => Ok((a.to_string(), b.to_string())),
                _ => Err(KbError::Parse(format!(
                    "{verb} takes exactly two arguments"
                ))),
            }
        };
        let rel = |rest: &str, argc: usize| -> Result<(Pred, Vec<String>), KbError> {
            let mut it = rest.split_whitespace();
            let Some(pred) = it.next().and_then(Pred::parse) else {
                return Err(KbError::Parse(format!(
                    "{verb} needs a relation (isa or partof)"
                )));
            };
            let args: Vec<String> = it.map(str::to_string).collect();
            if args.len() != argc {
                return Err(KbError::Parse(format!(
                    "{verb} {} takes {argc} concept argument(s)",
                    pred.name()
                )));
            }
            Ok((pred, args))
        };
        match verb {
            "concept" => {
                if rest.is_empty() || rest.split_whitespace().count() != 1 {
                    return fail("concept takes exactly one name".into());
                }
                Ok(KbCommand::Concept {
                    name: rest.to_string(),
                })
            }
            "feature" => {
                let (concept, feature) = two(rest)?;
                Ok(KbCommand::Feature { concept, feature })
            }
            "rule" => {
                if rest.is_empty() {
                    return fail("rule needs a definition".into());
                }
                Ok(KbCommand::Rule {
                    text: rest.to_string(),
                })
            }
            "assert" | "retract" | "ask" => {
                let (pred, mut args) = rel(rest, 2)?;
                let b = args.pop().expect("arity checked");
                let a = args.pop().expect("arity checked");
                Ok(match verb {
                    "assert" => KbCommand::Assert { pred, a, b },
                    "retract" => KbCommand::Retract { pred, a, b },
                    _ => KbCommand::Ask { pred, a, b },
                })
            }
            "below" => {
                let (pred, mut args) = rel(rest, 1)?;
                let a = args.pop().expect("arity checked");
                Ok(KbCommand::Below { pred, a })
            }
            "set-prop" => {
                let mut it = rest.splitn(3, char::is_whitespace);
                match (it.next(), it.next(), it.next()) {
                    (Some(concept), Some(prop), Some(value)) if !value.trim().is_empty() => {
                        Ok(KbCommand::SetProp {
                            concept: concept.to_string(),
                            prop: prop.to_string(),
                            value: value.trim().to_string(),
                        })
                    }
                    _ => fail("set-prop takes concept, property and value".into()),
                }
            }
            "get-prop" => {
                let (concept, prop) = two(rest)?;
                Ok(KbCommand::GetProp { concept, prop })
            }
            "check" if rest.is_empty() => Ok(KbCommand::Check),
            "stats" if rest.is_empty() => Ok(KbCommand::Stats),
            _ => fail(format!("unknown kb command {verb:?}")),
        }
    }

    /// Executes the command, returning its one-line answer.
    pub fn execute(&self, kb: &mut KnowledgeBase) -> Result<String, KbError> {
        match self {
            KbCommand::Concept { name } => {
                kb.concept(name)?;
                Ok("ok".into())
            }
            KbCommand::Feature { concept, feature } => {
                kb.add_feature(concept, feature)?;
                Ok("ok".into())
            }
            KbCommand::Rule { text } => {
                let name = kb.define_rule(text)?;
                Ok(format!("rule {name}"))
            }
            KbCommand::Assert { pred, a, b } => Ok(match kb.assert_fact(*pred, a, b)? {
                AssertOutcome::Applied => "applied".into(),
                AssertOutcome::Noop => "noop".into(),
                AssertOutcome::CycleRejected => "rejected".into(),
            }),
            KbCommand::Retract { pred, a, b } => Ok(match kb.retract_fact(*pred, a, b)? {
                RetractOutcome::Removed => "removed".into(),
                RetractOutcome::KeptDerived => "kept-derived".into(),
            }),
            KbCommand::Ask { pred, a, b } => {
                Ok(if kb.ask(*pred, a, b)? { "true" } else { "false" }.into())
            }
            KbCommand::Below { pred, a } => {
                let names = kb.below(*pred, a)?;
                Ok(format!("{} {}", names.len(), names.join(" "))
                    .trim_end()
                    .to_string())
            }
            KbCommand::SetProp {
                concept,
                prop,
                value,
            } => {
                kb.set_prop(concept, prop, value)?;
                Ok("ok".into())
            }
            KbCommand::GetProp { concept, prop } => Ok(match kb.get_prop(concept, prop)? {
                PropertyLookup::Undefined => "undefined".into(),
                PropertyLookup::Value { value, provider } => {
                    format!("{value} from {}", kb.concept_name(provider.0))
                }
                PropertyLookup::Conflict(providers) => {
                    let mut names: Vec<String> = providers
                        .iter()
                        .map(|(id, v)| format!("{}={v}", kb.concept_name(id.0)))
                        .collect();
                    names.sort_unstable();
                    format!("conflict {}", names.join(" "))
                }
            }),
            KbCommand::Check => match kb.check_against_naive() {
                Ok(()) => Ok("consistent".into()),
                Err(e) => Err(KbError::Parse(format!("differential check failed: {e}"))),
            },
            KbCommand::Stats => {
                let s = kb.stats();
                Ok(format!(
                    "concepts {} asserted {} derived {} overdeleted {} rederived {} \
                     cycle-rejected {} derive-failed {}",
                    kb.concept_count(),
                    s.asserted,
                    s.derived,
                    s.overdeleted,
                    s.rederived,
                    s.cycle_rejected,
                    s.derive_failed
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kb: &mut KnowledgeBase, line: &str) -> String {
        KbCommand::parse(line)
            .unwrap_or_else(|e| panic!("{line:?}: {e}"))
            .execute(kb)
            .unwrap_or_else(|e| panic!("{line:?}: {e}"))
    }

    #[test]
    fn command_script_drives_the_engine_end_to_end() {
        let mut kb = KnowledgeBase::new();
        assert_eq!(
            run(&mut kb, "rule up: isa(X, Y) :- partof(X, Z), isa(Z, Y)"),
            "rule up"
        );
        assert_eq!(run(&mut kb, "assert partof engine piston"), "applied");
        assert_eq!(run(&mut kb, "assert isa piston forged-piston"), "applied");
        assert_eq!(run(&mut kb, "ask isa engine forged-piston"), "true");
        assert_eq!(run(&mut kb, "below isa engine"), "1 forged-piston");
        assert_eq!(run(&mut kb, "retract partof engine piston"), "removed");
        assert_eq!(run(&mut kb, "ask isa engine forged-piston"), "false");
        assert_eq!(run(&mut kb, "check"), "consistent");
        assert!(run(&mut kb, "stats").starts_with("concepts 3 asserted 2"));
    }

    #[test]
    fn property_commands_resolve_by_inheritance() {
        let mut kb = KnowledgeBase::new();
        run(&mut kb, "assert isa vehicle car");
        assert_eq!(run(&mut kb, "set-prop vehicle wheels 4 or more"), "ok");
        assert_eq!(run(&mut kb, "get-prop car wheels"), "4 or more from vehicle");
        assert_eq!(run(&mut kb, "get-prop vehicle cargo"), "undefined");
    }

    #[test]
    fn malformed_commands_are_parse_errors() {
        for bad in [
            "",
            "frobnicate",
            "assert friend a b",
            "assert isa a",
            "assert isa a b c",
            "ask partof",
            "below isa",
            "rule",
            "concept",
            "concept a b",
            "set-prop x wheels",
            "check now",
        ] {
            assert!(KbCommand::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn semantic_failures_are_errors_not_panics() {
        let mut kb = KnowledgeBase::new();
        let ask = KbCommand::parse("ask isa ghost gone").unwrap();
        assert!(ask.execute(&mut kb).is_err());
        let retract = KbCommand::parse("retract isa ghost gone").unwrap();
        assert!(retract.execute(&mut kb).is_err());
    }
}
