//! Property inheritance along IS-A paths.
//!
//! §6: the compression techniques "are also useful for efficient propagation
//! of inherited values and properties". Properties attach to concepts; the
//! effective value at a concept is the one defined at the *most specific*
//! subsuming concept. Under multiple inheritance two unrelated ancestors may
//! both define a property — that is reported as a conflict rather than
//! silently resolved, in the CLASSIC tradition of predictable semantics.

use std::collections::HashMap;

use crate::{ConceptId, Taxonomy, TaxonomyError};

/// The result of looking up one property at one concept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyLookup {
    /// No subsuming concept defines the property.
    Undefined,
    /// A unique most-specific provider defines it.
    Value {
        /// The effective value.
        value: String,
        /// The concept the value was inherited from (may be the queried
        /// concept itself).
        provider: ConceptId,
    },
    /// Several incomparable ancestors define it — a multiple-inheritance
    /// conflict the knowledge engineer must resolve.
    Conflict(Vec<(ConceptId, String)>),
}

/// A property store layered over a [`Taxonomy`].
#[derive(Debug, Clone, Default)]
pub struct Inheritance {
    /// (concept, property) -> value.
    local: HashMap<(ConceptId, String), String>,
}

impl Inheritance {
    /// Creates an empty property store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a property directly on a concept.
    pub fn set(
        &mut self,
        t: &Taxonomy,
        concept: &str,
        property: &str,
        value: &str,
    ) -> Result<(), TaxonomyError> {
        let id = t.id(concept)?;
        self.local
            .insert((id, property.to_string()), value.to_string());
        Ok(())
    }

    /// The value defined *directly* on a concept, if any.
    pub fn local_value(&self, id: ConceptId, property: &str) -> Option<&str> {
        self.local
            .get(&(id, property.to_string()))
            .map(String::as_str)
    }

    /// Resolves a property at `concept` by most-specific-provider-wins
    /// inheritance.
    pub fn effective(
        &self,
        t: &Taxonomy,
        concept: &str,
        property: &str,
    ) -> Result<PropertyLookup, TaxonomyError> {
        let target = t.id(concept)?;
        // Providers: concepts defining the property that subsume the target.
        let providers: Vec<ConceptId> = self
            .local
            .keys()
            .filter(|(id, prop)| prop == property && t.subsumes_id(*id, target))
            .map(|(id, _)| *id)
            .collect();
        if providers.is_empty() {
            return Ok(PropertyLookup::Undefined);
        }
        // Keep the most specific providers (no other provider below them).
        let minimal: Vec<ConceptId> = providers
            .iter()
            .copied()
            .filter(|&c| !providers.iter().any(|&d| d != c && t.subsumes_id(c, d)))
            .collect();
        if minimal.len() == 1 {
            let provider = minimal[0];
            let value = self.local[&(provider, property.to_string())].clone();
            Ok(PropertyLookup::Value { value, provider })
        } else {
            let mut conflict: Vec<(ConceptId, String)> = minimal
                .into_iter()
                .map(|c| (c, self.local[&(c, property.to_string())].clone()))
                .collect();
            conflict.sort_by_key(|(c, _)| *c);
            Ok(PropertyLookup::Conflict(conflict))
        }
    }

    /// All effective properties at `concept`, sorted by property name.
    /// Conflicted properties are included with their conflict records.
    pub fn effective_all(
        &self,
        t: &Taxonomy,
        concept: &str,
    ) -> Result<Vec<(String, PropertyLookup)>, TaxonomyError> {
        let mut props: Vec<String> = self
            .local
            .keys()
            .map(|(_, prop)| prop.clone())
            .collect();
        props.sort();
        props.dedup();
        let mut out = Vec::new();
        for prop in props {
            match self.effective(t, concept, &prop)? {
                PropertyLookup::Undefined => {}
                found => out.push((prop, found)),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Taxonomy, Inheritance) {
        let mut t = Taxonomy::new();
        t.add_root("animal").unwrap();
        t.add_concept("bird", &["animal"]).unwrap();
        t.add_concept("penguin", &["bird"]).unwrap();
        t.add_concept("pet", &["animal"]).unwrap();
        t.add_concept("parrot", &["bird", "pet"]).unwrap();
        let mut p = Inheritance::new();
        p.set(&t, "animal", "alive", "yes").unwrap();
        p.set(&t, "bird", "locomotion", "fly").unwrap();
        p.set(&t, "penguin", "locomotion", "swim").unwrap();
        (t, p)
    }

    #[test]
    fn inherits_from_nearest_ancestor() {
        let (t, p) = setup();
        let got = p.effective(&t, "parrot", "locomotion").unwrap();
        assert_eq!(
            got,
            PropertyLookup::Value {
                value: "fly".to_string(),
                provider: t.id("bird").unwrap()
            }
        );
        // alive comes from the root.
        assert!(matches!(
            p.effective(&t, "parrot", "alive").unwrap(),
            PropertyLookup::Value { value, .. } if value == "yes"
        ));
    }

    #[test]
    fn override_wins_over_inherited() {
        let (t, p) = setup();
        // Penguins override the bird default.
        let got = p.effective(&t, "penguin", "locomotion").unwrap();
        assert!(matches!(got, PropertyLookup::Value { value, .. } if value == "swim"));
    }

    #[test]
    fn own_value_is_most_specific() {
        let (t, mut p) = setup();
        p.set(&t, "parrot", "locomotion", "fly-and-talk").unwrap();
        let got = p.effective(&t, "parrot", "locomotion").unwrap();
        assert!(matches!(
            got,
            PropertyLookup::Value { value, provider }
                if value == "fly-and-talk" && provider == t.id("parrot").unwrap()
        ));
    }

    #[test]
    fn undefined_property() {
        let (t, p) = setup();
        assert_eq!(
            p.effective(&t, "pet", "locomotion").unwrap(),
            PropertyLookup::Undefined
        );
    }

    #[test]
    fn multiple_inheritance_conflict_detected() {
        let (t, mut p) = setup();
        p.set(&t, "pet", "diet", "pellets").unwrap();
        p.set(&t, "bird", "diet", "seeds").unwrap();
        match p.effective(&t, "parrot", "diet").unwrap() {
            PropertyLookup::Conflict(entries) => {
                let names: Vec<&str> = entries.iter().map(|(c, _)| t.name(*c)).collect();
                assert_eq!(names, vec!["bird", "pet"]);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        // Resolving locally clears the conflict.
        p.set(&t, "parrot", "diet", "fruit").unwrap();
        assert!(matches!(
            p.effective(&t, "parrot", "diet").unwrap(),
            PropertyLookup::Value { value, .. } if value == "fruit"
        ));
    }

    #[test]
    fn effective_all_lists_everything() {
        let (t, p) = setup();
        let all = p.effective_all(&t, "penguin").unwrap();
        let props: Vec<&str> = all.iter().map(|(name, _)| name.as_str()).collect();
        assert_eq!(props, vec!["alive", "locomotion"]);
    }
}
