//! Lattice operations over the subsumption order.
//!
//! §5 relates the compressed closure to "a technique … to compute the
//! greatest lower bound (and least upper bound) in a lattice efficiently
//! \[5\]", and §6 plans to "use these compression techniques for the
//! computation of subsumption, disjointness, least common ancestors, and
//! other properties". IS-A hierarchies are generally not lattices, so the
//! bounds here are *sets*: the most specific common subsumers (LUB) and the
//! most general common subsumees (GLB).

use crate::{ConceptId, Taxonomy, TaxonomyError};

/// The most specific common subsumers of `a` and `b` (their "least common
/// ancestors"). Singleton for tree hierarchies; possibly several under
/// multiple inheritance.
pub fn least_common_subsumers(
    t: &Taxonomy,
    a: &str,
    b: &str,
) -> Result<Vec<ConceptId>, TaxonomyError> {
    let (a, b) = (t.id(a)?, t.id(b)?);
    let common: Vec<ConceptId> = all_ids(t)
        .filter(|&c| t.subsumes_id(c, a) && t.subsumes_id(c, b))
        .collect();
    Ok(minimal_most_specific(t, common))
}

/// The most general common subsumees of `a` and `b` (their "greatest lower
/// bounds" in the subsumption order).
pub fn greatest_common_subsumees(
    t: &Taxonomy,
    a: &str,
    b: &str,
) -> Result<Vec<ConceptId>, TaxonomyError> {
    let (a, b) = (t.id(a)?, t.id(b)?);
    let common: Vec<ConceptId> = all_ids(t)
        .filter(|&c| t.subsumes_id(a, c) && t.subsumes_id(b, c))
        .collect();
    Ok(maximal_most_general(t, common))
}

/// Whether `a` and `b` are disjoint: no concept is subsumed by both.
pub fn disjoint(t: &Taxonomy, a: &str, b: &str) -> Result<bool, TaxonomyError> {
    Ok(greatest_common_subsumees(t, a, b)?.is_empty())
}

fn all_ids(t: &Taxonomy) -> impl Iterator<Item = ConceptId> + '_ {
    (0..t.len() as u32).map(ConceptId)
}

/// Keeps elements with no *other* member below them (most specific).
fn minimal_most_specific(t: &Taxonomy, set: Vec<ConceptId>) -> Vec<ConceptId> {
    set.iter()
        .copied()
        .filter(|&c| {
            !set.iter()
                .any(|&d| d != c && t.subsumes_id(c, d))
        })
        .collect()
}

/// Keeps elements with no *other* member above them (most general).
fn maximal_most_general(t: &Taxonomy, set: Vec<ConceptId>) -> Vec<ConceptId> {
    set.iter()
        .copied()
        .filter(|&c| {
            !set.iter()
                .any(|&d| d != c && t.subsumes_id(d, c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(t: &Taxonomy, ids: Vec<ConceptId>) -> Vec<String> {
        let mut out: Vec<String> = ids.into_iter().map(|id| t.name(id).to_string()).collect();
        out.sort();
        out
    }

    fn sample() -> Taxonomy {
        let mut t = Taxonomy::new();
        t.add_root("thing").unwrap();
        t.add_concept("device", &["thing"]).unwrap();
        t.add_concept("printer", &["device"]).unwrap();
        t.add_concept("scanner", &["device"]).unwrap();
        t.add_concept("copier", &["printer", "scanner"]).unwrap();
        t.add_concept("fax", &["printer", "scanner"]).unwrap();
        t.add_concept("furniture", &["thing"]).unwrap();
        t
    }

    #[test]
    fn lub_under_single_inheritance() {
        let t = sample();
        let lub = least_common_subsumers(&t, "printer", "scanner").unwrap();
        assert_eq!(names(&t, lub), vec!["device"]);
    }

    #[test]
    fn lub_is_reflexive_on_related_concepts() {
        let t = sample();
        // printer subsumes copier, so the most specific common subsumer of
        // the pair is printer itself.
        let lub = least_common_subsumers(&t, "printer", "copier").unwrap();
        assert_eq!(names(&t, lub), vec!["printer"]);
    }

    #[test]
    fn glb_finds_most_general_common_descendants() {
        let t = sample();
        let glb = greatest_common_subsumees(&t, "printer", "scanner").unwrap();
        assert_eq!(names(&t, glb), vec!["copier", "fax"]);
    }

    #[test]
    fn disjointness() {
        let t = sample();
        assert!(disjoint(&t, "furniture", "printer").unwrap());
        assert!(!disjoint(&t, "printer", "scanner").unwrap());
        assert!(!disjoint(&t, "device", "device").unwrap());
    }

    #[test]
    fn multiple_lubs_under_multiple_inheritance() {
        let t = sample();
        // copier and fax share BOTH printer and scanner as most specific
        // common subsumers (neither subsumes the other).
        let lub = least_common_subsumers(&t, "copier", "fax").unwrap();
        assert_eq!(names(&t, lub), vec!["printer", "scanner"]);
    }

    #[test]
    fn unknown_concept_errors() {
        let t = sample();
        assert!(least_common_subsumers(&t, "printer", "ghost").is_err());
        assert!(disjoint(&t, "ghost", "printer").is_err());
    }
}
