//! A feature-based terminological classifier.
//!
//! §2.1: in KL-ONE-style systems "a concept is subsumed by another … by
//! virtue of their definition: 'all things whose children are doctors' is
//! automatically more general than 'all things whose children are
//! eye-surgeons' … Computing the subsumption relationship between a new
//! concept and previously known ones is the key inference". This module
//! implements the classic simplification: a concept is a set of required
//! features, and `A` subsumes `B` iff `features(A) ⊆ features(B)`.
//!
//! Classification walks the existing hierarchy top-down, using the
//! compressed closure to skip whole subtrees, finds the most specific
//! subsumers and most general subsumees of the new definition, and inserts
//! it between them — keeping the cached hierarchy exactly the "precomputed,
//! cached" subsumption relation the paper describes.

use std::collections::BTreeSet;

use crate::{ConceptId, Taxonomy, TaxonomyError};

/// A defined concept: a name plus its required feature set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefinedConcept {
    /// Concept name.
    pub name: String,
    /// Required features; more features = more specific.
    pub features: BTreeSet<String>,
}

impl DefinedConcept {
    /// Creates a definition from a name and feature list.
    pub fn new(name: &str, features: &[&str]) -> Self {
        DefinedConcept {
            name: name.to_string(),
            features: features.iter().map(|f| f.to_string()).collect(),
        }
    }

    /// Definitional subsumption: `self` subsumes `other` iff every feature
    /// of `self` is required by `other`.
    pub fn subsumes(&self, other: &DefinedConcept) -> bool {
        self.features.is_subset(&other.features)
    }
}

/// A classifier maintaining a [`Taxonomy`] synchronized with concept
/// definitions.
#[derive(Debug, Clone)]
pub struct Classifier {
    taxonomy: Taxonomy,
    defs: Vec<DefinedConcept>,
}

impl Classifier {
    /// Creates a classifier with the universal root concept `top` (no
    /// required features).
    pub fn new() -> Self {
        let mut taxonomy = Taxonomy::new();
        // A fresh default taxonomy has no names and an unbounded number
        // line, so the root insertion cannot fail; should that invariant
        // ever break, start without `top` instead of panicking — the first
        // `classify` call then surfaces the real error.
        let defs = match taxonomy.add_root("top") {
            Ok(_) => vec![DefinedConcept::new("top", &[])],
            Err(_) => Vec::new(),
        };
        Classifier { taxonomy, defs }
    }

    /// The maintained hierarchy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// The definition of a classified concept.
    pub fn definition(&self, id: ConceptId) -> &DefinedConcept {
        &self.defs[id.0 as usize]
    }

    /// Classifies a new definition into the hierarchy: computes its most
    /// specific subsumers, inserts it under them, and re-homes any existing
    /// concepts it subsumes. Returns the new concept's id.
    pub fn classify(&mut self, def: DefinedConcept) -> Result<ConceptId, TaxonomyError> {
        if self.taxonomy.id(&def.name).is_ok() {
            return Err(TaxonomyError::Duplicate(def.name));
        }

        // Most specific subsumers: walk top-down; a concept whose definition
        // does not subsume `def` cannot have subsuming descendants pruned
        // here — feature sets only grow downward, so the whole subtree is
        // skipped (this is where the cached hierarchy pays off).
        let parents = self.most_specific_subsumers(&def);
        // Most general *strict* subsumees among existing concepts (an
        // existing concept with an identical feature set is an equivalent,
        // handled as a parent, never as a child — otherwise the arcs would
        // form a cycle).
        let strict: Vec<ConceptId> = self
            .all_ids()
            .filter(|&c| {
                def.subsumes(&self.defs[c.0 as usize]) && !self.defs[c.0 as usize].subsumes(&def)
            })
            .collect();
        // Keep the maximal (most general) elements within the strict set:
        // anything with a strict subsumer in the set is reachable through it.
        let children: Vec<ConceptId> = strict
            .iter()
            .copied()
            .filter(|&c| {
                !strict.iter().any(|&d| {
                    d != c && self.taxonomy.subsumes_id(d, c) && !self.taxonomy.subsumes_id(c, d)
                })
            })
            .collect();

        let parent_names: Vec<String> = parents
            .iter()
            .map(|&p| self.taxonomy.name(p).to_string())
            .collect();
        let parent_refs: Vec<&str> = parent_names.iter().map(String::as_str).collect();
        let id = self.taxonomy.add_concept(&def.name, &parent_refs)?;
        self.defs.push(def);
        debug_assert_eq!(self.defs.len(), self.taxonomy.len());

        // Hook subsumed concepts underneath (the closure absorbs these as
        // non-tree arcs with subsumption-pruned propagation).
        let name = self.defs[id.0 as usize].name.clone();
        for c in children {
            let child_name = self.taxonomy.name(c).to_string();
            self.taxonomy.add_isa(&name, &child_name)?;
        }
        Ok(id)
    }

    /// Finds the most specific existing concepts subsuming `def`, walking
    /// down from `top` and pruning non-subsuming subtrees.
    fn most_specific_subsumers(&self, def: &DefinedConcept) -> Vec<ConceptId> {
        let subsumers: Vec<ConceptId> = self
            .all_ids()
            .filter(|&c| self.defs[c.0 as usize].subsumes(def))
            .collect();
        subsumers
            .iter()
            .copied()
            .filter(|&c| {
                !subsumers.iter().any(|&d| {
                    d != c && self.taxonomy.subsumes_id(c, d) && !self.taxonomy.subsumes_id(d, c)
                })
            })
            .collect()
    }

    /// Subsumption between classified concepts by name — answered from the
    /// cached hierarchy (one interval lookup), not by re-deriving from
    /// definitions.
    pub fn subsumes(&self, general: &str, specific: &str) -> Result<bool, TaxonomyError> {
        self.taxonomy.subsumes(general, specific)
    }

    /// Retrieval: every classified concept requiring at least the given
    /// features (the Lassie query pattern). Served from the cached
    /// hierarchy: find the most specific subsumers of the query definition,
    /// then take the intersection of their descendant cones — each cone is
    /// one interval-decode, no per-concept feature comparison.
    pub fn retrieve(&self, features: &[&str]) -> Vec<&str> {
        let query = DefinedConcept::new("", features);
        let anchors = self.most_specific_subsumers(&query);
        let mut hits: Vec<ConceptId> = self
            .all_ids()
            .filter(|&c| {
                anchors
                    .iter()
                    .all(|&a| self.taxonomy.subsumes_id(a, c))
            })
            .filter(|&c| query.subsumes(&self.defs[c.0 as usize]))
            .collect();
        hits.sort_unstable();
        hits.into_iter().map(|c| self.taxonomy.name(c)).collect()
    }

    fn all_ids(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (0..self.defs.len() as u32).map(ConceptId)
    }

    /// Checks that the cached hierarchy agrees with definitional subsumption
    /// for every pair (tests only: O(n²) feature-set comparisons).
    pub fn verify(&self) -> Result<(), String> {
        for a in self.all_ids() {
            for b in self.all_ids() {
                let def_says = self.defs[a.0 as usize].subsumes(&self.defs[b.0 as usize]);
                let cache_says = self.taxonomy.subsumes_id(a, b);
                // Distinct concepts may have equal feature sets; the cache
                // is directional, definitions are not. Only require: cache
                // implies definitional, and strict definitional implies
                // cache.
                if cache_says && !def_says {
                    return Err(format!(
                        "cache claims {} subsumes {} but definitions disagree",
                        self.taxonomy.name(a),
                        self.taxonomy.name(b)
                    ));
                }
                let strict = def_says
                    && !self.defs[b.0 as usize].subsumes(&self.defs[a.0 as usize]);
                if strict && !cache_says {
                    return Err(format!(
                        "definitions say {} subsumes {} but cache disagrees",
                        self.taxonomy.name(a),
                        self.taxonomy.name(b)
                    ));
                }
            }
        }
        self.taxonomy.verify()
    }
}

impl Default for Classifier {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_orders_by_features() {
        let mut c = Classifier::new();
        c.classify(DefinedConcept::new("person", &["human"])).unwrap();
        c.classify(DefinedConcept::new("doctor", &["human", "heals"])).unwrap();
        c.classify(DefinedConcept::new("surgeon", &["human", "heals", "operates"]))
            .unwrap();
        assert!(c.subsumes("person", "surgeon").unwrap());
        assert!(c.subsumes("doctor", "surgeon").unwrap());
        assert!(!c.subsumes("surgeon", "doctor").unwrap());
        c.verify().unwrap();
    }

    #[test]
    fn late_insertion_rewires_existing_concepts() {
        let mut c = Classifier::new();
        c.classify(DefinedConcept::new("person", &["human"])).unwrap();
        c.classify(DefinedConcept::new("surgeon", &["human", "heals", "operates"]))
            .unwrap();
        // doctor arrives AFTER surgeon; it must slot between person and
        // surgeon — the paper's "computing the subsumption relationship
        // between a new concept and previously known ones".
        c.classify(DefinedConcept::new("doctor", &["human", "heals"])).unwrap();
        assert!(c.subsumes("doctor", "surgeon").unwrap());
        assert!(c.subsumes("person", "doctor").unwrap());
        c.verify().unwrap();
        // The taxonomy's parents reflect the most specific subsumer.
        assert_eq!(c.taxonomy().parents("surgeon").unwrap().len(), 2); // person + doctor arcs
    }

    #[test]
    fn multiple_inheritance_from_incomparable_subsumers() {
        let mut c = Classifier::new();
        c.classify(DefinedConcept::new("parent", &["has-child"])).unwrap();
        c.classify(DefinedConcept::new("doctor", &["heals"])).unwrap();
        c.classify(DefinedConcept::new("doctor-parent", &["has-child", "heals"]))
            .unwrap();
        let mut parents = c.taxonomy().parents("doctor-parent").unwrap();
        parents.sort_unstable();
        assert_eq!(parents, vec!["doctor", "parent"]);
        c.verify().unwrap();
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Classifier::new();
        c.classify(DefinedConcept::new("thing", &["x"])).unwrap();
        assert!(matches!(
            c.classify(DefinedConcept::new("thing", &["y"])),
            Err(TaxonomyError::Duplicate(_))
        ));
    }

    #[test]
    fn eye_surgeon_example_from_the_paper() {
        // "all things whose children are doctors" is more general than "all
        // things whose children are eye-surgeons".
        let mut c = Classifier::new();
        c.classify(DefinedConcept::new("children-are-doctors", &["children:doctor"]))
            .unwrap();
        c.classify(DefinedConcept::new(
            "children-are-eye-surgeons",
            &["children:doctor", "children:surgeon", "children:eye-specialist"],
        ))
        .unwrap();
        assert!(c
            .subsumes("children-are-doctors", "children-are-eye-surgeons")
            .unwrap());
        c.verify().unwrap();
    }

    #[test]
    fn retrieve_finds_exact_and_more_specific_matches() {
        let mut c = Classifier::new();
        c.classify(DefinedConcept::new("sorter", &["sorts"])).unwrap();
        c.classify(DefinedConcept::new("stable-sorter", &["sorts", "stable"])).unwrap();
        c.classify(DefinedConcept::new("fancy-sorter", &["sorts", "stable", "parallel"]))
            .unwrap();
        c.classify(DefinedConcept::new("logger", &["logs"])).unwrap();
        assert_eq!(c.retrieve(&["sorts", "stable"]), vec!["stable-sorter", "fancy-sorter"]);
        assert_eq!(c.retrieve(&["sorts"]), vec!["sorter", "stable-sorter", "fancy-sorter"]);
        assert_eq!(c.retrieve(&["sorts", "logs"]), Vec::<&str>::new());
        // No features: everything (including top).
        assert_eq!(c.retrieve(&[]).len(), 5);
    }

    #[test]
    fn random_definitions_classify_consistently() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let features = ["a", "b", "c", "d", "e", "f"];
        let mut c = Classifier::new();
        let mut used = std::collections::HashSet::new();
        for i in 0..40 {
            let set: Vec<&str> = features
                .iter()
                .copied()
                .filter(|_| rng.random_bool(0.4))
                .collect();
            if !used.insert(set.clone()) {
                continue; // duplicate feature sets allowed but keep test simple
            }
            c.classify(DefinedConcept::new(&format!("c{i}"), &set)).unwrap();
        }
        c.verify().unwrap();
    }
}
