//! Rule-driven incremental inference over the compressed closure.
//!
//! The paper's §2.1 knowledge bases don't just *store* IS-A and PART-OF
//! relations — they reason over them. This module adds a datalog-ish Horn
//! rule layer on top of the closure:
//!
//! * **Rules** have a derived-edge head and a body of `isa`/`partof` atoms
//!   plus `feat` (feature) predicates, e.g.
//!   `up: isa(X, Y) :- partof(X, Z), isa(Z, Y), feat(Z, critical)`.
//!   Identifiers starting with an uppercase letter are variables; anything
//!   else names a concept or feature constant.
//! * **Body atoms match the transitive relation**, not just direct arcs:
//!   `isa(x, y)` holds iff `x` strictly reaches `y` in the IS-A closure —
//!   one interval lookup, which is exactly why the closure is the right
//!   substrate for rule evaluation.
//! * **Assertion is semi-naive**: every arc insertion goes through the
//!   delta-reporting update hooks ([`tc_core::EdgeDelta`]), and each rule is
//!   joined only against the newly-true pairs — the classic delta-relation
//!   argument: any new derivation must use at least one new atom, so seeding
//!   one body position with the delta and the rest with the full relation
//!   finds them all.
//! * **Retraction is DRed-style** (delete and re-derive): the base fact's
//!   arc is removed first — each removal running the §4.2 *scoped*
//!   affected-region recompute inside `remove_edge` — and every removal
//!   then over-deletes the derived facts whose rule bodies could have
//!   routed through the removed arc: a body pair `(q, a, b)` is suspect
//!   exactly when it lies in the removal's affected rectangle
//!   `pred*(src) × succ*(dst)`, and the remaining body atoms are joined
//!   against a pre-retraction snapshot so a derivation broken earlier in
//!   the cascade is still enumerated. Once the cascade converges, every
//!   casualty still derivable from the surviving model is re-added and
//!   forward-chained back in. Because derivability is always judged with
//!   the candidate's own arc absent, a fact can never justify itself (or a
//!   partner in a mutual loop) through its own reachability.
//! * **The differential gate** ([`KnowledgeBase::check_against_naive`])
//!   replays the surviving base facts into a fresh knowledge base, runs a
//!   genuinely naive all-rules/all-bindings fixpoint, and requires the two
//!   models to agree edge-for-edge and successor-set-for-successor-set.
//!
//! Derived heads that would create a cycle are rejected and counted
//! ([`KbStats::cycle_rejected`]), and heads dropped by a non-cycle failure
//! (e.g. label-capacity exhaustion) are counted separately
//! ([`KbStats::derive_failed`]); either makes the final model depend on
//! insertion order, so differential checks are only meaningful when both
//! counters are zero — the fuzz campaign gates on exactly that.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

use tc_core::{ClosureConfig, CompressedClosure, EdgeDelta, UpdateError};
use tc_graph::NodeId;

use crate::{ConceptId, Inheritance, PropertyLookup, Taxonomy, TaxonomyError};

/// The two transitive base relations rules range over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pred {
    /// Subsumption: `isa(g, s)` — `g` subsumes `s` (arc general → specific).
    IsA,
    /// Aggregation: `partof(w, p)` — `p` is a part of `w` (arc whole → part).
    PartOf,
}

impl Pred {
    /// Parses the wire/text name of a predicate.
    pub fn parse(s: &str) -> Option<Pred> {
        match s {
            "isa" => Some(Pred::IsA),
            "partof" => Some(Pred::PartOf),
            _ => None,
        }
    }

    /// The wire/text name of the predicate.
    pub fn name(self) -> &'static str {
        match self {
            Pred::IsA => "isa",
            Pred::PartOf => "partof",
        }
    }
}

/// A rule term: a variable (capitalized) or a concept constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A variable, bound during evaluation.
    Var(String),
    /// A concept name, resolved lazily (rules may be defined before the
    /// concepts they mention exist).
    Const(String),
}

/// A body or head atom over one of the transitive relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Which relation the atom ranges over.
    pub pred: Pred,
    /// Subject (source of the arc).
    pub sub: Term,
    /// Object (target of the arc).
    pub obj: Term,
}

/// A feature predicate in a rule body: `feat(Term, feature-name)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatAtom {
    /// The concept term carrying the feature.
    pub term: Term,
    /// The required feature.
    pub feature: String,
}

/// A Horn rule: `head :- body-atoms, feat-atoms`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Rule name (diagnostics and redefinition).
    pub name: String,
    /// The derived edge.
    pub head: Atom,
    /// Edge atoms of the body.
    pub body: Vec<Atom>,
    /// Feature atoms of the body.
    pub feats: Vec<FeatAtom>,
}

/// Errors from knowledge-base operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbError {
    /// Rule or command text failed to parse.
    Parse(String),
    /// A referenced concept does not exist (queries never auto-create).
    UnknownConcept(String),
    /// Retraction of a fact that was never asserted as a base fact.
    NotAsserted(Pred, String, String),
    /// Relations are irreflexive; `assert isa x x` is meaningless.
    SelfLoop(String),
    /// An underlying taxonomy operation failed.
    Taxonomy(TaxonomyError),
    /// An underlying closure update failed.
    Update(UpdateError),
}

impl fmt::Display for KbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KbError::Parse(m) => write!(f, "parse error: {m}"),
            KbError::UnknownConcept(n) => write!(f, "unknown concept {n:?}"),
            KbError::NotAsserted(p, a, b) => {
                write!(f, "{}({a}, {b}) is not an asserted base fact", p.name())
            }
            KbError::SelfLoop(n) => write!(f, "self-referential fact on {n:?}"),
            KbError::Taxonomy(e) => write!(f, "{e}"),
            KbError::Update(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for KbError {}

impl From<TaxonomyError> for KbError {
    fn from(e: TaxonomyError) -> Self {
        KbError::Taxonomy(e)
    }
}

/// Outcome of an assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssertOutcome {
    /// The fact was new; its arc was inserted and rules forward-chained.
    Applied,
    /// The fact was already present (asserted or derived); marked asserted.
    Noop,
    /// The arc would create a cycle; rejected and counted.
    CycleRejected,
}

/// Outcome of a retract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetractOutcome {
    /// The arc was removed (with DRed cascade over derived facts).
    Removed,
    /// With its own arc out of the closure the fact was still derivable by
    /// rule, so it was re-derived and survives as a derived-only fact.
    KeptDerived,
}

/// One closure mutation, journaled for serving-layer forwarding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KbChange {
    /// A concept was created (dense ids, in creation order).
    NewConcept {
        /// The new concept's dense id.
        id: u32,
        /// Its name.
        name: String,
    },
    /// An arc entered one of the relations.
    EdgeAdded {
        /// Relation.
        pred: Pred,
        /// Arc source.
        src: u32,
        /// Arc target.
        dst: u32,
        /// Whether a rule (rather than an assert) introduced it.
        derived: bool,
    },
    /// An arc left one of the relations.
    EdgeRemoved {
        /// Relation.
        pred: Pred,
        /// Arc source.
        src: u32,
        /// Arc target.
        dst: u32,
    },
}

/// Evaluation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KbStats {
    /// Base facts applied.
    pub asserted: u64,
    /// Derived arcs introduced by rule heads.
    pub derived: u64,
    /// Derived arcs conservatively removed during DRed over-deletion.
    pub overdeleted: u64,
    /// Over-deleted arcs restored by re-derivation.
    pub rederived: u64,
    /// Head instantiations rejected because the arc would create a cycle.
    pub cycle_rejected: u64,
    /// Head instantiations dropped by a non-cycle update failure (e.g.
    /// label-capacity exhaustion). The model is incomplete afterwards, so
    /// differential gates must require this to stay zero.
    pub derive_failed: u64,
}

#[derive(Debug, Clone)]
struct Fact {
    asserted: bool,
}

/// A knowledge base: named concepts, two transitive relations served by
/// compressed closures, features, Horn rules, and property inheritance.
///
/// ```
/// use tc_kb::rules::{KnowledgeBase, Pred};
///
/// let mut kb = KnowledgeBase::new();
/// kb.define_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)").unwrap();
/// kb.assert_fact(Pred::PartOf, "engine", "piston").unwrap();
/// kb.assert_fact(Pred::IsA, "piston", "small-piston").unwrap();
/// assert!(kb.ask(Pred::IsA, "engine", "small-piston").unwrap());
/// kb.check_against_naive().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    taxonomy: Taxonomy,
    part: CompressedClosure,
    features: Vec<BTreeSet<String>>,
    feat_index: HashMap<String, BTreeSet<u32>>,
    rules: Vec<Rule>,
    facts: BTreeMap<(Pred, u32, u32), Fact>,
    props: Inheritance,
    journal: Vec<KbChange>,
    stats: KbStats,
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        Self::new()
    }
}

type Env = HashMap<String, u32>;

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    pub fn new() -> Self {
        KnowledgeBase {
            taxonomy: Taxonomy::new(),
            part: ClosureConfig::new()
                .build(&tc_graph::DiGraph::new())
                .expect("empty graph is acyclic"),
            features: Vec::new(),
            feat_index: HashMap::new(),
            rules: Vec::new(),
            facts: BTreeMap::new(),
            props: Inheritance::new(),
            journal: Vec::new(),
            stats: KbStats::default(),
        }
    }

    /// Number of concepts.
    pub fn concept_count(&self) -> usize {
        self.taxonomy.len()
    }

    /// Evaluation counters.
    pub fn stats(&self) -> KbStats {
        self.stats
    }

    /// The IS-A side of the knowledge base (names + subsumption closure).
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Drains the journal of closure mutations accumulated since the last
    /// drain (serving layers forward these to their own replicas).
    pub fn take_journal(&mut self) -> Vec<KbChange> {
        std::mem::take(&mut self.journal)
    }

    /// The id of an existing concept.
    pub fn concept_id(&self, name: &str) -> Option<u32> {
        self.taxonomy.id(name).ok().map(|c| c.0)
    }

    /// The name of a concept id.
    pub fn concept_name(&self, id: u32) -> &str {
        self.taxonomy.name(ConceptId(id))
    }

    /// Returns the id of `name`, creating the concept if needed (facts
    /// auto-introduce the concepts they mention, the way streamed knowledge
    /// bases grow).
    pub fn concept(&mut self, name: &str) -> Result<u32, KbError> {
        if let Ok(c) = self.taxonomy.id(name) {
            return Ok(c.0);
        }
        let id = self.taxonomy.add_root(name)?;
        let mirrored = self
            .part
            .add_node_with_parents(&[])
            .map_err(KbError::Update)?;
        debug_assert_eq!(id.0, mirrored.0, "relations must stay in lockstep");
        self.features.push(BTreeSet::new());
        self.journal.push(KbChange::NewConcept {
            id: id.0,
            name: name.to_string(),
        });
        Ok(id.0)
    }

    /// Attaches a feature to a concept (creating the concept if needed) and
    /// forward-chains any rules the new feature atom enables. Features are
    /// extensional only — rules test them, never derive them.
    pub fn add_feature(&mut self, concept: &str, feature: &str) -> Result<(), KbError> {
        let id = self.concept(concept)?;
        if !self.features[id as usize].insert(feature.to_string()) {
            return Ok(());
        }
        self.feat_index
            .entry(feature.to_string())
            .or_default()
            .insert(id);
        let mut work = VecDeque::new();
        work.push_back(DeltaAtom::Feat(id, feature.to_string()));
        self.propagate(work);
        Ok(())
    }

    /// Defines (or redefines, by name) a rule. Returns the rule's name.
    /// Concept constants named by the rule are created if absent, so a
    /// rule can never refer to a concept the model doesn't know.
    ///
    /// Existing derived facts are not re-evaluated — define rules before the
    /// facts they should fire on (the streaming-ingestion order).
    pub fn define_rule(&mut self, text: &str) -> Result<String, KbError> {
        let rule = parse_rule(text)?;
        let consts: Vec<String> = rule
            .body
            .iter()
            .chain(std::iter::once(&rule.head))
            .flat_map(|a| [&a.sub, &a.obj])
            .chain(rule.feats.iter().map(|f| &f.term))
            .filter_map(|t| match t {
                Term::Const(c) => Some(c.clone()),
                Term::Var(_) => None,
            })
            .collect();
        for c in consts {
            self.concept(&c)?;
        }
        let name = rule.name.clone();
        if let Some(slot) = self.rules.iter_mut().find(|r| r.name == name) {
            *slot = rule;
        } else {
            self.rules.push(rule);
        }
        Ok(name)
    }

    /// The currently defined rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Whether `pred(a, b)` holds in the transitive relation (strict: a
    /// concept neither subsumes itself nor is a part of itself here).
    pub fn ask(&self, pred: Pred, a: &str, b: &str) -> Result<bool, KbError> {
        let x = self
            .concept_id(a)
            .ok_or_else(|| KbError::UnknownConcept(a.to_string()))?;
        let y = self
            .concept_id(b)
            .ok_or_else(|| KbError::UnknownConcept(b.to_string()))?;
        Ok(self.holds(pred, x, y))
    }

    /// Every concept strictly below `a` in the given relation, sorted.
    pub fn below(&self, pred: Pred, a: &str) -> Result<Vec<String>, KbError> {
        let x = self
            .concept_id(a)
            .ok_or_else(|| KbError::UnknownConcept(a.to_string()))?;
        let mut out: Vec<String> = self
            .clos(pred)
            .successors(NodeId(x))
            .into_iter()
            .filter(|v| v.0 != x)
            .map(|v| self.concept_name(v.0).to_string())
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Sets a property on a concept (creating it if needed); resolved by
    /// most-specific-provider inheritance over the IS-A relation.
    pub fn set_prop(&mut self, concept: &str, prop: &str, value: &str) -> Result<(), KbError> {
        self.concept(concept)?;
        self.props.set(&self.taxonomy, concept, prop, value)?;
        Ok(())
    }

    /// Resolves a property at a concept by inheritance along IS-A.
    pub fn get_prop(&self, concept: &str, prop: &str) -> Result<PropertyLookup, KbError> {
        Ok(self.props.effective(&self.taxonomy, concept, prop)?)
    }

    /// Asserts a base fact, inserting its arc through the delta-reporting
    /// §4.1 add path and semi-naively forward-chaining every rule over the
    /// newly-true pairs.
    pub fn assert_fact(&mut self, pred: Pred, a: &str, b: &str) -> Result<AssertOutcome, KbError> {
        if a == b {
            return Err(KbError::SelfLoop(a.to_string()));
        }
        let x = self.concept(a)?;
        let y = self.concept(b)?;
        let key = (pred, x, y);
        if let Some(fact) = self.facts.get_mut(&key) {
            fact.asserted = true;
            return Ok(AssertOutcome::Noop);
        }
        let delta = match self.edge_add(pred, x, y) {
            Ok(delta) => delta,
            Err(KbEdgeError::Cycle) => {
                self.stats.cycle_rejected += 1;
                return Ok(AssertOutcome::CycleRejected);
            }
            Err(KbEdgeError::Other(e)) => return Err(e),
        };
        self.facts.insert(key, Fact { asserted: true });
        self.stats.asserted += 1;
        self.journal.push(KbChange::EdgeAdded {
            pred,
            src: x,
            dst: y,
            derived: false,
        });
        let mut work = VecDeque::new();
        for &(s, t) in &delta.changed {
            work.push_back(DeltaAtom::Edge(pred, s.0, t.0));
        }
        self.propagate(work);
        Ok(AssertOutcome::Applied)
    }

    /// Retracts a base fact with DRed-style maintenance: the arc is removed
    /// (scoped §4.2 recompute inside `remove_edge`), derived facts whose
    /// rule bodies could have routed through any removed arc are
    /// over-deleted in cascade, and every casualty still derivable from the
    /// surviving model — the retracted fact included — is re-added and
    /// forward-chained. A fact that rules still derive therefore comes back
    /// as derived-only ([`RetractOutcome::KeptDerived`]).
    ///
    /// Derivability is always judged with the candidate's own arc out of
    /// the closure, so a fact can never be kept by a derivation that only
    /// exists because of the arc under retraction.
    pub fn retract_fact(
        &mut self,
        pred: Pred,
        a: &str,
        b: &str,
    ) -> Result<RetractOutcome, KbError> {
        let x = self
            .concept_id(a)
            .ok_or_else(|| KbError::UnknownConcept(a.to_string()))?;
        let y = self
            .concept_id(b)
            .ok_or_else(|| KbError::UnknownConcept(b.to_string()))?;
        let key = (pred, x, y);
        match self.facts.get_mut(&key) {
            Some(fact) if fact.asserted => fact.asserted = false,
            _ => return Err(KbError::NotAsserted(pred, a.to_string(), b.to_string())),
        }
        // Pre-retraction snapshot (journal excluded): the over-deletion
        // joins complete against it, so a derivation whose other body atoms
        // die earlier in the cascade is still enumerated.
        let journal = std::mem::take(&mut self.journal);
        let old = self.clone();
        self.journal = journal;
        self.remove_fact_edge(key)?;
        self.dred_cascade(&old, key)?;
        Ok(if self.facts.contains_key(&key) {
            RetractOutcome::KeptDerived
        } else {
            RetractOutcome::Removed
        })
    }

    /// Differential gate: rebuilds the model from scratch — same concepts,
    /// features and rules, the surviving base facts replayed in canonical
    /// order, then a genuinely naive all-rules/all-bindings fixpoint — and
    /// checks the incremental model against it arc-for-arc and
    /// successor-set-for-successor-set.
    ///
    /// Only meaningful while [`KbStats::cycle_rejected`] and
    /// [`KbStats::derive_failed`] are zero: a rejected or dropped head makes
    /// the surviving model depend on arrival order, which a from-scratch
    /// replay cannot reproduce.
    pub fn check_against_naive(&self) -> Result<(), String> {
        let mut naive = KnowledgeBase::new();
        naive.rules = self.rules.clone();
        for name in self.taxonomy.concepts() {
            naive.concept(name).map_err(|e| e.to_string())?;
        }
        for (id, feats) in self.features.iter().enumerate() {
            for f in feats {
                naive.features[id].insert(f.clone());
                naive.feat_index.entry(f.clone()).or_default().insert(id as u32);
            }
        }
        // Base facts in canonical key order. The base graph is a subgraph
        // of the (acyclic) full graph, so none of these can be rejected.
        for (&(pred, x, y), fact) in &self.facts {
            if !fact.asserted {
                continue;
            }
            naive
                .edge_add(pred, x, y)
                .map_err(|e| format!("naive replay of {}({x},{y}): {e:?}", pred.name()))?;
            naive.facts.insert((pred, x, y), Fact { asserted: true });
        }
        naive.naive_fixpoint().map_err(|e| e.to_string())?;
        if naive.stats.cycle_rejected > 0 {
            return Err("naive fixpoint hit a cycle rejection; model is order-dependent".into());
        }
        for pred in [Pred::IsA, Pred::PartOf] {
            let mine: BTreeSet<(u32, u32)> = self
                .clos(pred)
                .graph()
                .edges()
                .map(|(s, t)| (s.0, t.0))
                .collect();
            let theirs: BTreeSet<(u32, u32)> = naive
                .clos(pred)
                .graph()
                .edges()
                .map(|(s, t)| (s.0, t.0))
                .collect();
            if mine != theirs {
                let extra: Vec<_> = mine.difference(&theirs).take(5).collect();
                let missing: Vec<_> = theirs.difference(&mine).take(5).collect();
                return Err(format!(
                    "{} arc sets diverge: incremental has extra {extra:?}, missing {missing:?}",
                    pred.name()
                ));
            }
            for id in 0..self.concept_count() as u32 {
                let mut a = self.clos(pred).successors(NodeId(id));
                let mut b = naive.clos(pred).successors(NodeId(id));
                a.sort_unstable();
                b.sort_unstable();
                if a != b {
                    return Err(format!(
                        "{} successor set of {} ({:?}) diverges from naive re-derivation",
                        pred.name(),
                        self.concept_name(id),
                        NodeId(id),
                    ));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internal machinery
    // ------------------------------------------------------------------

    fn clos(&self, pred: Pred) -> &CompressedClosure {
        match pred {
            Pred::IsA => self.taxonomy.closure(),
            Pred::PartOf => &self.part,
        }
    }

    /// Strict transitive truth: `x` reaches `y` and `x != y`.
    fn holds(&self, pred: Pred, x: u32, y: u32) -> bool {
        x != y && self.clos(pred).reaches(NodeId(x), NodeId(y))
    }

    fn edge_add(&mut self, pred: Pred, x: u32, y: u32) -> Result<EdgeDelta, KbEdgeError> {
        match pred {
            Pred::IsA => match self.taxonomy.add_isa_delta(ConceptId(x), ConceptId(y)) {
                Ok(d) => Ok(d),
                Err(TaxonomyError::SubsumptionCycle(_, _)) => Err(KbEdgeError::Cycle),
                Err(e) => Err(KbEdgeError::Other(KbError::Taxonomy(e))),
            },
            Pred::PartOf => match self.part.add_edge_delta(NodeId(x), NodeId(y)) {
                Ok(d) => Ok(d),
                Err(UpdateError::WouldCreateCycle { .. }) | Err(UpdateError::SelfLoop(_)) => {
                    Err(KbEdgeError::Cycle)
                }
                Err(e) => Err(KbEdgeError::Other(KbError::Update(e))),
            },
        }
    }

    fn remove_fact_edge(&mut self, key: (Pred, u32, u32)) -> Result<EdgeDelta, KbError> {
        let (pred, x, y) = key;
        let delta = match pred {
            Pred::IsA => self
                .taxonomy
                .remove_isa_delta(ConceptId(x), ConceptId(y))
                .map_err(KbError::Taxonomy)?,
            Pred::PartOf => self
                .part
                .remove_edge_delta(NodeId(x), NodeId(y))
                .map_err(KbError::Update)?,
        };
        self.facts.remove(&key);
        self.journal.push(KbChange::EdgeRemoved {
            pred,
            src: x,
            dst: y,
        });
        Ok(delta)
    }

    /// Semi-naive forward chaining: each worklist entry is one newly-true
    /// ground atom; for every rule position it can fill, the remaining body
    /// is joined against the full current relations and the resulting heads
    /// are materialized (which can enqueue further newly-true pairs).
    fn propagate(&mut self, mut work: VecDeque<DeltaAtom>) {
        while let Some(delta) = work.pop_front() {
            for ri in 0..self.rules.len() {
                let rule = self.rules[ri].clone();
                match &delta {
                    DeltaAtom::Edge(pred, x, y) => {
                        for pos in 0..rule.body.len() {
                            if rule.body[pos].pred != *pred {
                                continue;
                            }
                            let mut env = Env::new();
                            if !bind_term(&rule.body[pos].sub, *x, &mut env, self)
                                || !bind_term(&rule.body[pos].obj, *y, &mut env, self)
                            {
                                continue;
                            }
                            let envs = self.complete(&rule, env, Some(pos), usize::MAX);
                            for env in envs {
                                self.fire(&rule, &env, &mut work);
                            }
                        }
                    }
                    DeltaAtom::Feat(id, feature) => {
                        for pos in 0..rule.feats.len() {
                            if rule.feats[pos].feature != *feature {
                                continue;
                            }
                            let mut env = Env::new();
                            if !bind_term(&rule.feats[pos].term, *id, &mut env, self) {
                                continue;
                            }
                            let envs = self.complete(&rule, env, None, pos);
                            for env in envs {
                                self.fire(&rule, &env, &mut work);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Materializes one ground head instantiation. An already-present fact
    /// is left alone; a genuinely new arc goes through the delta add path
    /// and its newly-true pairs join the worklist.
    fn fire(&mut self, rule: &Rule, env: &Env, work: &mut VecDeque<DeltaAtom>) {
        let Some(x) = self.resolve(&rule.head.sub, env) else {
            return;
        };
        let Some(y) = self.resolve(&rule.head.obj, env) else {
            return;
        };
        if x == y || self.facts.contains_key(&(rule.head.pred, x, y)) {
            return;
        }
        let pred = rule.head.pred;
        match self.edge_add(pred, x, y) {
            Ok(delta) => {
                self.facts.insert((pred, x, y), Fact { asserted: false });
                self.stats.derived += 1;
                self.journal.push(KbChange::EdgeAdded {
                    pred,
                    src: x,
                    dst: y,
                    derived: true,
                });
                for &(s, t) in &delta.changed {
                    work.push_back(DeltaAtom::Edge(pred, s.0, t.0));
                }
            }
            Err(KbEdgeError::Cycle) => {
                self.stats.cycle_rejected += 1;
            }
            Err(KbEdgeError::Other(_)) => {
                // Capacity-style failures during derivation: the head is
                // dropped rather than poisoning the whole propagation, but
                // the model is incomplete from here on — counted separately
                // so gates can tell this apart from order-dependence.
                self.stats.derive_failed += 1;
            }
        }
    }

    /// DRed cascade after `seed`'s arc has been removed: over-delete every
    /// derived fact whose rule body could have routed through a removed
    /// arc, then re-derive the casualties the surviving model still
    /// justifies.
    ///
    /// The over-deletion is driven by arcs, not recorded supports: removing
    /// arc `(q, u, v)` makes every same-relation body pair in the affected
    /// rectangle `pred*(u) × succ*(v)` suspect, and each suspect head is
    /// removed in turn (enqueueing its own rectangle). Joining the other
    /// body positions against the pre-retraction snapshot `old` keeps the
    /// enumeration complete even when a derivation's remaining atoms were
    /// broken by an earlier removal in the same cascade. This deletes a
    /// superset of what is truly lost — including mutually-supporting
    /// derived facts whose grounding died — and the re-derive phase, which
    /// only ever consults the live (grounded) model, restores the rest.
    fn dred_cascade(
        &mut self,
        old: &KnowledgeBase,
        seed: (Pred, u32, u32),
    ) -> Result<(), KbError> {
        let mut casualties: Vec<(Pred, u32, u32)> = vec![seed];
        let mut queue: VecDeque<(Pred, u32, u32)> = self.suspect_heads(old, seed).into();
        while let Some(key) = queue.pop_front() {
            match self.facts.get(&key) {
                Some(fact) if !fact.asserted => {}
                _ => continue,
            }
            self.remove_fact_edge(key)?;
            self.stats.overdeleted += 1;
            casualties.push(key);
            queue.extend(self.suspect_heads(old, key));
        }
        // Re-derive: restoring one casualty can justify another, so sweep
        // until a full pass restores nothing. Each restoration forward-
        // chains, which may itself re-materialize later casualties — those
        // are skipped when their turn comes.
        loop {
            let mut restored = false;
            for &(pred, x, y) in &casualties {
                if self.facts.contains_key(&(pred, x, y)) || !self.derivable(pred, x, y) {
                    continue;
                }
                let delta = match self.edge_add(pred, x, y) {
                    Ok(delta) => delta,
                    Err(KbEdgeError::Cycle) => {
                        self.stats.cycle_rejected += 1;
                        continue;
                    }
                    Err(KbEdgeError::Other(e)) => return Err(e),
                };
                self.facts.insert((pred, x, y), Fact { asserted: false });
                self.stats.rederived += 1;
                self.journal.push(KbChange::EdgeAdded {
                    pred,
                    src: x,
                    dst: y,
                    derived: true,
                });
                let mut work = VecDeque::new();
                for &(s, t) in &delta.changed {
                    work.push_back(DeltaAtom::Edge(pred, s.0, t.0));
                }
                self.propagate(work);
                restored = true;
            }
            if !restored {
                break;
            }
        }
        Ok(())
    }

    /// Heads of rule instantiations with a body pair in the affected
    /// rectangle of the just-removed arc `(q, u, v)`: any such derivation
    /// may have routed through the arc, so its head is an over-deletion
    /// suspect. The rectangle is probed against the current closure (a path
    /// `a → u` or `v → b` cannot use the arc `u → v` in a DAG, so pre- and
    /// post-removal reachability agree); the remaining body atoms join
    /// against the pre-retraction snapshot `old`.
    fn suspect_heads(
        &self,
        old: &KnowledgeBase,
        removed: (Pred, u32, u32),
    ) -> Vec<(Pred, u32, u32)> {
        let (q, u, v) = removed;
        let clos = self.clos(q);
        let mut above: Vec<u32> = clos
            .predecessors(NodeId(u))
            .into_iter()
            .map(|n| n.0)
            .filter(|&n| n != u)
            .collect();
        above.push(u);
        let mut below: Vec<u32> = clos
            .successors(NodeId(v))
            .into_iter()
            .map(|n| n.0)
            .filter(|&n| n != v)
            .collect();
        below.push(v);
        let mut out = Vec::new();
        for rule in &old.rules {
            for pos in 0..rule.body.len() {
                if rule.body[pos].pred != q {
                    continue;
                }
                for &a in &above {
                    let mut env_a = Env::new();
                    if !bind_term(&rule.body[pos].sub, a, &mut env_a, old) {
                        continue;
                    }
                    for &b in &below {
                        if a == b {
                            continue;
                        }
                        let mut env = env_a.clone();
                        if !bind_term(&rule.body[pos].obj, b, &mut env, old) {
                            continue;
                        }
                        for env in old.complete(rule, env, Some(pos), usize::MAX) {
                            let (Some(hx), Some(hy)) = (
                                old.resolve(&rule.head.sub, &env),
                                old.resolve(&rule.head.obj, &env),
                            ) else {
                                continue;
                            };
                            if hx != hy {
                                out.push((rule.head.pred, hx, hy));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Whether any rule currently derives `pred(x, y)`. Judged against the
    /// live model, which never contains the candidate's own arc when this
    /// is asked (retraction removes first, then re-derives).
    fn derivable(&self, pred: Pred, x: u32, y: u32) -> bool {
        for rule in &self.rules {
            if rule.head.pred != pred {
                continue;
            }
            let mut env = Env::new();
            if !bind_term(&rule.head.sub, x, &mut env, self)
                || !bind_term(&rule.head.obj, y, &mut env, self)
            {
                continue;
            }
            if !self.complete(rule, env, None, usize::MAX).is_empty() {
                return true;
            }
        }
        false
    }

    /// Completes a partial binding against the full current relations,
    /// returning every total binding of the rule's body. `skip_edge` /
    /// `skip_feat` exclude the already-satisfied delta position.
    fn complete(
        &self,
        rule: &Rule,
        env: Env,
        skip_edge: Option<usize>,
        skip_feat: usize,
    ) -> Vec<Env> {
        let edge_todo: Vec<usize> = (0..rule.body.len())
            .filter(|&i| Some(i) != skip_edge)
            .collect();
        let feat_todo: Vec<usize> = (0..rule.feats.len()).filter(|&i| i != skip_feat).collect();
        let mut out = Vec::new();
        self.join(rule, env, &edge_todo, &feat_todo, &mut out);
        out
    }

    /// Backtracking join, most-bound atom first: fully bound atoms are
    /// verified with one interval lookup; half-bound atoms enumerate one
    /// successor or predecessor row; feature atoms filter or enumerate the
    /// feature index. Unbound edge atoms are deferred until a binding
    /// reaches them (rules are expected to be range-connected; a fully
    /// unconstrained atom falls back to enumerating every concept's row).
    fn join(
        &self,
        rule: &Rule,
        env: Env,
        edge_todo: &[usize],
        feat_todo: &[usize],
        out: &mut Vec<Env>,
    ) {
        // Feature atoms first when bound (cheap filters), else the most
        // bound edge atom.
        for (slot, &fi) in feat_todo.iter().enumerate() {
            let fa = &rule.feats[fi];
            if let Some(c) = self.resolve(&fa.term, &env) {
                if !self.features[c as usize].contains(&fa.feature) {
                    return;
                }
                let rest: Vec<usize> = feat_todo
                    .iter()
                    .enumerate()
                    .filter_map(|(j, &f)| (j != slot).then_some(f))
                    .collect();
                return self.join(rule, env, edge_todo, &rest, out);
            }
        }
        if edge_todo.is_empty() {
            // Any remaining feature atoms have unbound terms: enumerate the
            // feature index for the first one.
            if let Some((slot, &fi)) = feat_todo.iter().enumerate().next() {
                let fa = &rule.feats[fi];
                let Term::Var(v) = &fa.term else {
                    return; // unknown constant: unsatisfiable
                };
                let rest: Vec<usize> = feat_todo
                    .iter()
                    .enumerate()
                    .filter_map(|(j, &f)| (j != slot).then_some(f))
                    .collect();
                if let Some(ids) = self.feat_index.get(&fa.feature) {
                    for &c in ids {
                        let mut env2 = env.clone();
                        env2.insert(v.clone(), c);
                        self.join(rule, env2, edge_todo, &rest, out);
                    }
                }
                return;
            }
            out.push(env);
            return;
        }
        // Pick the edge atom with the most bound terms.
        let (slot, _) = edge_todo
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| {
                let a = &rule.body[i];
                self.resolve(&a.sub, &env).is_some() as usize
                    + self.resolve(&a.obj, &env).is_some() as usize
            })
            .expect("non-empty");
        let ai = edge_todo[slot];
        let atom = &rule.body[ai];
        let rest: Vec<usize> = edge_todo
            .iter()
            .enumerate()
            .filter_map(|(j, &e)| (j != slot).then_some(e))
            .collect();
        let sub = self.resolve(&atom.sub, &env);
        let obj = self.resolve(&atom.obj, &env);
        match (sub, obj) {
            (Some(s), Some(o)) => {
                if self.holds(atom.pred, s, o) {
                    self.join(rule, env, &rest, feat_todo, out);
                }
            }
            (Some(s), None) => {
                let Term::Var(v) = &atom.obj else { return };
                for t in self.clos(atom.pred).successors(NodeId(s)) {
                    if t.0 == s {
                        continue;
                    }
                    let mut env2 = env.clone();
                    env2.insert(v.clone(), t.0);
                    self.join(rule, env2, &rest, feat_todo, out);
                }
            }
            (None, Some(o)) => {
                let Term::Var(v) = &atom.sub else { return };
                for s in self.clos(atom.pred).predecessors(NodeId(o)) {
                    if s.0 == o {
                        continue;
                    }
                    let mut env2 = env.clone();
                    env2.insert(v.clone(), s.0);
                    self.join(rule, env2, &rest, feat_todo, out);
                }
            }
            (None, None) => {
                let (Term::Var(vs), Term::Var(vo)) = (&atom.sub, &atom.obj) else {
                    return; // an unknown constant: unsatisfiable
                };
                for s in 0..self.concept_count() as u32 {
                    for t in self.clos(atom.pred).successors(NodeId(s)) {
                        if t.0 == s {
                            continue;
                        }
                        let mut env2 = env.clone();
                        env2.insert(vs.clone(), s);
                        env2.insert(vo.clone(), t.0);
                        self.join(rule, env2, &rest, feat_todo, out);
                    }
                }
            }
        }
    }

    fn resolve(&self, term: &Term, env: &Env) -> Option<u32> {
        match term {
            Term::Var(v) => env.get(v).copied(),
            Term::Const(c) => self.concept_id(c),
        }
    }

    /// Genuinely naive fixpoint: every rule against every binding until no
    /// new arc is materialized. The differential oracle the incremental
    /// engine is checked against.
    fn naive_fixpoint(&mut self) -> Result<(), KbError> {
        loop {
            let mut new_heads: Vec<(Pred, u32, u32)> = Vec::new();
            for rule in self.rules.clone() {
                for env in self.complete(&rule, Env::new(), None, usize::MAX) {
                    let (Some(x), Some(y)) = (
                        self.resolve(&rule.head.sub, &env),
                        self.resolve(&rule.head.obj, &env),
                    ) else {
                        continue;
                    };
                    if x == y || self.facts.contains_key(&(rule.head.pred, x, y)) {
                        continue;
                    }
                    new_heads.push((rule.head.pred, x, y));
                }
            }
            let mut changed = false;
            for (pred, x, y) in new_heads {
                if self.facts.contains_key(&(pred, x, y)) {
                    continue;
                }
                match self.edge_add(pred, x, y) {
                    Ok(_) => {
                        self.facts.insert((pred, x, y), Fact { asserted: false });
                        self.stats.derived += 1;
                        changed = true;
                    }
                    Err(KbEdgeError::Cycle) => {
                        self.stats.cycle_rejected += 1;
                    }
                    Err(KbEdgeError::Other(e)) => return Err(e),
                }
            }
            if !changed {
                return Ok(());
            }
        }
    }
}

#[derive(Debug)]
enum KbEdgeError {
    Cycle,
    Other(KbError),
}

#[derive(Debug, Clone)]
enum DeltaAtom {
    Edge(Pred, u32, u32),
    Feat(u32, String),
}

/// Binds a term against a concrete id: variables extend the environment
/// (or must agree with it); constants must name exactly that concept.
fn bind_term(term: &Term, id: u32, env: &mut Env, kb: &KnowledgeBase) -> bool {
    match term {
        Term::Var(v) => match env.get(v) {
            Some(&bound) => bound == id,
            None => {
                env.insert(v.clone(), id);
                true
            }
        },
        Term::Const(c) => kb.concept_id(c) == Some(id),
    }
}

// ----------------------------------------------------------------------
// Rule text parser
// ----------------------------------------------------------------------

/// Parses `name: head :- atom, atom, ...` where each atom is
/// `isa(T, T)`, `partof(T, T)` or `feat(T, feature)`. Capitalized
/// identifiers are variables. Every head variable must occur in the body.
pub fn parse_rule(text: &str) -> Result<Rule, KbError> {
    let fail = |m: String| Err(KbError::Parse(m));
    let Some((name, rest)) = text.split_once(':') else {
        return fail("expected `name: head :- body`".into());
    };
    let name = name.trim();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return fail(format!("bad rule name {name:?}"));
    }
    let Some((head_text, body_text)) = rest.split_once(":-") else {
        return fail("missing `:-`".into());
    };
    let head_atoms = parse_atoms(head_text)?;
    let [ParsedAtom::Edge(head)] = head_atoms.as_slice() else {
        return fail("head must be exactly one isa/partof atom".into());
    };
    let head = head.clone();
    let mut body = Vec::new();
    let mut feats = Vec::new();
    for atom in parse_atoms(body_text)? {
        match atom {
            ParsedAtom::Edge(a) => body.push(a),
            ParsedAtom::Feat(f) => feats.push(f),
        }
    }
    if body.is_empty() && feats.is_empty() {
        return fail("empty body".into());
    }
    // Range restriction: head variables must be bound by the body.
    for term in [&head.sub, &head.obj] {
        if let Term::Var(v) = term {
            let in_body = body
                .iter()
                .any(|a| a.sub == Term::Var(v.clone()) || a.obj == Term::Var(v.clone()))
                || feats.iter().any(|f| f.term == Term::Var(v.clone()));
            if !in_body {
                return fail(format!("head variable {v} is not bound by the body"));
            }
        }
    }
    Ok(Rule {
        name: name.to_string(),
        head,
        body,
        feats,
    })
}

enum ParsedAtom {
    Edge(Atom),
    Feat(FeatAtom),
}

fn parse_atoms(text: &str) -> Result<Vec<ParsedAtom>, KbError> {
    let fail = |m: String| Err(KbError::Parse(m));
    let mut out = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let Some(open) = rest.find('(') else {
            return fail(format!("expected an atom at {rest:?}"));
        };
        let pred_name = rest[..open].trim();
        let Some(close) = rest.find(')') else {
            return fail(format!("unclosed atom at {rest:?}"));
        };
        if close < open {
            return fail(format!("mismatched parentheses at {rest:?}"));
        }
        let args: Vec<&str> = rest[open + 1..close].split(',').map(str::trim).collect();
        let [first, second] = args.as_slice() else {
            return fail(format!("{pred_name} takes exactly two arguments"));
        };
        if first.is_empty() || second.is_empty() {
            return fail(format!("{pred_name} has an empty argument"));
        }
        match pred_name {
            "feat" => out.push(ParsedAtom::Feat(FeatAtom {
                term: parse_term(first),
                feature: second.to_string(),
            })),
            _ => {
                let Some(pred) = Pred::parse(pred_name) else {
                    return fail(format!("unknown predicate {pred_name:?}"));
                };
                out.push(ParsedAtom::Edge(Atom {
                    pred,
                    sub: parse_term(first),
                    obj: parse_term(second),
                }));
            }
        }
        rest = rest[close + 1..].trim();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim();
            if rest.is_empty() {
                return fail("trailing comma".into());
            }
        } else if !rest.is_empty() {
            return fail(format!("expected `,` before {rest:?}"));
        }
    }
    Ok(out)
}

fn parse_term(s: &str) -> Term {
    if s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        Term::Var(s.to_string())
    } else {
        Term::Const(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_parser_accepts_the_readme_shape() {
        let r = parse_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y), feat(Z, critical)")
            .unwrap();
        assert_eq!(r.name, "up");
        assert_eq!(r.head.pred, Pred::IsA);
        assert_eq!(r.body.len(), 2);
        assert_eq!(r.feats.len(), 1);
        assert_eq!(r.feats[0].feature, "critical");
        assert_eq!(r.body[0].sub, Term::Var("X".into()));
    }

    #[test]
    fn rule_parser_rejects_malformed_programs() {
        for bad in [
            "no-body: isa(X, Y) :-",
            "unbound: isa(X, Y) :- isa(X, Z)",
            "feat-head: feat(X, f) :- isa(X, y)",
            "arity: isa(X) :- isa(X, Y)",
            "pred: friend(X, Y) :- isa(X, Y)",
            "missing-neck: isa(X, Y)",
            "isa(X, Y) :- isa(X, Z)",
            "two-heads: isa(X, Y), isa(Y, X) :- isa(X, Y)",
        ] {
            assert!(parse_rule(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn transitive_part_inheritance_fires_on_assert() {
        let mut kb = KnowledgeBase::new();
        kb.define_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)").unwrap();
        assert_eq!(
            kb.assert_fact(Pred::PartOf, "engine", "piston").unwrap(),
            AssertOutcome::Applied
        );
        assert_eq!(
            kb.assert_fact(Pred::IsA, "piston", "forged-piston").unwrap(),
            AssertOutcome::Applied
        );
        assert!(kb.ask(Pred::IsA, "engine", "forged-piston").unwrap());
        assert!(kb.stats().derived >= 1);
        kb.check_against_naive().unwrap();
    }

    #[test]
    fn feature_atoms_gate_and_trigger_rules() {
        let mut kb = KnowledgeBase::new();
        kb.define_rule("crit: isa(X, Y) :- partof(X, Z), isa(Z, Y), feat(Z, critical)")
            .unwrap();
        kb.assert_fact(Pred::PartOf, "plane", "engine").unwrap();
        kb.assert_fact(Pred::IsA, "engine", "jet-engine").unwrap();
        // Feature not present yet: rule must NOT have fired.
        assert!(!kb.ask(Pred::IsA, "plane", "jet-engine").unwrap());
        // The feature arrives later and forward-chains the rule.
        kb.add_feature("engine", "critical").unwrap();
        assert!(kb.ask(Pred::IsA, "plane", "jet-engine").unwrap());
        kb.check_against_naive().unwrap();
    }

    #[test]
    fn derived_facts_chain_through_derived_facts() {
        let mut kb = KnowledgeBase::new();
        kb.define_rule("lift: partof(X, Y) :- isa(X, Z), partof(Z, Y)").unwrap();
        kb.assert_fact(Pred::IsA, "car", "sports-car").unwrap();
        kb.assert_fact(Pred::IsA, "sports-car", "gt").unwrap();
        kb.assert_fact(Pred::PartOf, "gt", "spoiler").unwrap();
        // car isa gt (transitively) and gt has a spoiler, so car gets one;
        // so does sports-car, through the same transitive body atom.
        assert!(kb.ask(Pred::PartOf, "car", "spoiler").unwrap());
        assert!(kb.ask(Pred::PartOf, "sports-car", "spoiler").unwrap());
        kb.check_against_naive().unwrap();
    }

    #[test]
    fn retraction_of_underived_support_removes_derived_facts() {
        let mut kb = KnowledgeBase::new();
        kb.define_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)").unwrap();
        kb.assert_fact(Pred::PartOf, "engine", "piston").unwrap();
        kb.assert_fact(Pred::IsA, "piston", "forged-piston").unwrap();
        assert!(kb.ask(Pred::IsA, "engine", "forged-piston").unwrap());
        assert_eq!(
            kb.retract_fact(Pred::PartOf, "engine", "piston").unwrap(),
            RetractOutcome::Removed
        );
        assert!(!kb.ask(Pred::PartOf, "engine", "piston").unwrap());
        assert!(
            !kb.ask(Pred::IsA, "engine", "forged-piston").unwrap(),
            "derived fact must fall with its support"
        );
        assert!(kb.stats().overdeleted >= 1);
        kb.check_against_naive().unwrap();
    }

    #[test]
    fn retraction_keeps_facts_with_surviving_derivations() {
        let mut kb = KnowledgeBase::new();
        kb.define_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)").unwrap();
        // Two independent parts both justify isa(machine, alloy-gear).
        kb.assert_fact(Pred::PartOf, "machine", "gearbox").unwrap();
        kb.assert_fact(Pred::PartOf, "machine", "spare-gearbox").unwrap();
        kb.assert_fact(Pred::IsA, "gearbox", "alloy-gear").unwrap();
        kb.assert_fact(Pred::IsA, "spare-gearbox", "alloy-gear").unwrap();
        assert!(kb.ask(Pred::IsA, "machine", "alloy-gear").unwrap());
        kb.retract_fact(Pred::PartOf, "machine", "gearbox").unwrap();
        assert!(
            kb.ask(Pred::IsA, "machine", "alloy-gear").unwrap(),
            "second derivation must keep the fact alive"
        );
        kb.check_against_naive().unwrap();
    }

    #[test]
    fn retracting_a_fact_that_rules_still_derive_keeps_the_arc() {
        let mut kb = KnowledgeBase::new();
        kb.define_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)").unwrap();
        kb.assert_fact(Pred::PartOf, "engine", "piston").unwrap();
        kb.assert_fact(Pred::IsA, "piston", "forged-piston").unwrap();
        // Assert the derivable fact as a base fact too, then retract it:
        // the arc must survive as derived-only.
        assert_eq!(
            kb.assert_fact(Pred::IsA, "engine", "forged-piston").unwrap(),
            AssertOutcome::Noop
        );
        assert_eq!(
            kb.retract_fact(Pred::IsA, "engine", "forged-piston").unwrap(),
            RetractOutcome::KeptDerived
        );
        assert!(kb.ask(Pred::IsA, "engine", "forged-piston").unwrap());
        // Now remove the real support; the derived-only arc falls too.
        kb.retract_fact(Pred::PartOf, "engine", "piston").unwrap();
        assert!(!kb.ask(Pred::IsA, "engine", "forged-piston").unwrap());
        kb.check_against_naive().unwrap();
    }

    #[test]
    fn rederivation_restores_overdeleted_facts() {
        let mut kb = KnowledgeBase::new();
        kb.define_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)").unwrap();
        kb.define_rule("lift: partof(X, Y) :- isa(X, Z), partof(Z, Y)").unwrap();
        kb.assert_fact(Pred::IsA, "fleet", "truck").unwrap();
        kb.assert_fact(Pred::PartOf, "truck", "axle").unwrap();
        kb.assert_fact(Pred::IsA, "axle", "steel-axle").unwrap();
        // Derived: partof(fleet, axle), isa(truck, steel-axle), ...
        assert!(kb.ask(Pred::PartOf, "fleet", "axle").unwrap());
        assert!(kb.ask(Pred::IsA, "truck", "steel-axle").unwrap());
        // Retract and re-assert in various orders; the differential check
        // must hold at every quiescent point.
        kb.retract_fact(Pred::IsA, "fleet", "truck").unwrap();
        kb.check_against_naive().unwrap();
        assert!(!kb.ask(Pred::PartOf, "fleet", "axle").unwrap());
        kb.assert_fact(Pred::IsA, "fleet", "truck").unwrap();
        assert!(kb.ask(Pred::PartOf, "fleet", "axle").unwrap());
        kb.check_against_naive().unwrap();
    }

    #[test]
    fn retraction_rejects_circular_self_justification() {
        // isa(p, q) is "derivable" by up only through m -> p -> q, i.e.
        // through the very arc being retracted. Keeping it would be a
        // circular self-justification; the fact must fall.
        let mut kb = KnowledgeBase::new();
        kb.define_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)").unwrap();
        kb.assert_fact(Pred::PartOf, "p", "m").unwrap();
        kb.assert_fact(Pred::IsA, "m", "p").unwrap();
        kb.assert_fact(Pred::IsA, "p", "q").unwrap();
        assert_eq!(
            kb.retract_fact(Pred::IsA, "p", "q").unwrap(),
            RetractOutcome::Removed
        );
        assert!(!kb.ask(Pred::IsA, "p", "q").unwrap());
        assert_eq!(kb.stats().cycle_rejected, 0);
        kb.check_against_naive().unwrap();
    }

    #[test]
    fn mutual_support_loops_do_not_survive_retraction() {
        // r1 and r2 derive each other's bodies: once partof(c, d) exists,
        // isa(a, b) is derived, and each then "justifies" the other. After
        // the only base fact is retracted nothing grounds the pair, so both
        // must fall together.
        let mut kb = KnowledgeBase::new();
        kb.define_rule("r1: isa(a, b) :- partof(c, d)").unwrap();
        kb.define_rule("r2: partof(c, d) :- isa(a, b)").unwrap();
        kb.assert_fact(Pred::PartOf, "c", "d").unwrap();
        assert!(kb.ask(Pred::IsA, "a", "b").unwrap());
        assert_eq!(
            kb.retract_fact(Pred::PartOf, "c", "d").unwrap(),
            RetractOutcome::Removed
        );
        assert!(!kb.ask(Pred::PartOf, "c", "d").unwrap());
        assert!(!kb.ask(Pred::IsA, "a", "b").unwrap());
        kb.check_against_naive().unwrap();
    }

    #[test]
    fn parallel_path_loops_do_not_survive_retraction() {
        // The adversarial shape for delta-driven over-deletion: the pairs
        // sustaining the f/g loop (partof(g1, g2) and isa(a, b)) each hold
        // through TWO paths — a grounded one through the seed-derived arcs
        // h/k, and the loop partner's own arc. Removing h or k therefore
        // never flips those pairs; only an affected-rectangle cascade sees
        // that the loop may have routed through them. After the seed goes,
        // every derived fact must fall.
        let mut kb = KnowledgeBase::new();
        kb.define_rule("rh: partof(m, g2) :- partof(s1, s2)").unwrap();
        kb.define_rule("rk: isa(n, b) :- partof(s1, s2)").unwrap();
        kb.define_rule("rf: isa(a, b) :- partof(g1, g2)").unwrap();
        kb.define_rule("rg: partof(g1, g2) :- isa(a, b)").unwrap();
        kb.assert_fact(Pred::PartOf, "g1", "m").unwrap();
        kb.assert_fact(Pred::IsA, "a", "n").unwrap();
        kb.assert_fact(Pred::PartOf, "s1", "s2").unwrap();
        assert!(kb.ask(Pred::IsA, "a", "b").unwrap());
        assert!(kb.ask(Pred::PartOf, "g1", "g2").unwrap());
        kb.check_against_naive().unwrap();
        assert_eq!(
            kb.retract_fact(Pred::PartOf, "s1", "s2").unwrap(),
            RetractOutcome::Removed
        );
        assert!(!kb.ask(Pred::IsA, "a", "b").unwrap());
        assert!(!kb.ask(Pred::PartOf, "g1", "g2").unwrap());
        assert!(!kb.ask(Pred::PartOf, "m", "g2").unwrap());
        assert!(!kb.ask(Pred::IsA, "n", "b").unwrap());
        assert_eq!(kb.stats().cycle_rejected, 0);
        kb.check_against_naive().unwrap();
    }

    #[test]
    fn cycle_heads_are_rejected_and_counted() {
        let mut kb = KnowledgeBase::new();
        kb.define_rule("inv: isa(Y, X) :- isa(X, Y), feat(X, flip)").unwrap();
        kb.assert_fact(Pred::IsA, "a", "b").unwrap();
        kb.add_feature("a", "flip").unwrap();
        // The rule wants isa(b, a), which would close a cycle.
        assert!(kb.ask(Pred::IsA, "a", "b").unwrap());
        assert!(!kb.ask(Pred::IsA, "b", "a").unwrap());
        assert_eq!(kb.stats().cycle_rejected, 1);
    }

    #[test]
    fn constants_in_rules_bind_by_name() {
        let mut kb = KnowledgeBase::new();
        kb.define_rule("pin: isa(root, X) :- isa(anchor, X)").unwrap();
        kb.assert_fact(Pred::IsA, "anchor", "leaf").unwrap();
        kb.assert_fact(Pred::IsA, "root", "unrelated").unwrap();
        assert!(kb.ask(Pred::IsA, "root", "leaf").unwrap());
        kb.check_against_naive().unwrap();
    }

    #[test]
    fn asserts_are_idempotent_and_self_loops_rejected() {
        let mut kb = KnowledgeBase::new();
        assert_eq!(
            kb.assert_fact(Pred::IsA, "a", "b").unwrap(),
            AssertOutcome::Applied
        );
        assert_eq!(
            kb.assert_fact(Pred::IsA, "a", "b").unwrap(),
            AssertOutcome::Noop
        );
        assert!(matches!(
            kb.assert_fact(Pred::IsA, "a", "a"),
            Err(KbError::SelfLoop(_))
        ));
        assert_eq!(
            kb.assert_fact(Pred::IsA, "b", "a").unwrap(),
            AssertOutcome::CycleRejected
        );
        assert!(matches!(
            kb.retract_fact(Pred::IsA, "b", "a"),
            Err(KbError::NotAsserted(..))
        ));
    }

    #[test]
    fn inheritance_rides_the_rule_derived_hierarchy() {
        let mut kb = KnowledgeBase::new();
        kb.define_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)").unwrap();
        kb.assert_fact(Pred::PartOf, "assembly", "bolt").unwrap();
        kb.assert_fact(Pred::IsA, "bolt", "m8-bolt").unwrap();
        kb.set_prop("assembly", "torque", "12nm").unwrap();
        // assembly subsumes m8-bolt via the rule, so the property inherits.
        match kb.get_prop("m8-bolt", "torque").unwrap() {
            PropertyLookup::Value { value, .. } => assert_eq!(value, "12nm"),
            other => panic!("expected inherited value, got {other:?}"),
        }
    }

    #[test]
    fn journal_records_every_closure_mutation() {
        let mut kb = KnowledgeBase::new();
        kb.define_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)").unwrap();
        kb.assert_fact(Pred::PartOf, "engine", "piston").unwrap();
        kb.assert_fact(Pred::IsA, "piston", "forged").unwrap();
        let journal = kb.take_journal();
        let concepts = journal
            .iter()
            .filter(|c| matches!(c, KbChange::NewConcept { .. }))
            .count();
        let derived = journal
            .iter()
            .filter(|c| matches!(c, KbChange::EdgeAdded { derived: true, .. }))
            .count();
        assert_eq!(concepts, 3);
        assert_eq!(derived, 1, "isa(engine, forged) was derived");
        assert!(kb.take_journal().is_empty(), "drained");
        kb.retract_fact(Pred::PartOf, "engine", "piston").unwrap();
        let journal = kb.take_journal();
        assert!(journal
            .iter()
            .any(|c| matches!(c, KbChange::EdgeRemoved { .. })));
    }

    #[test]
    fn randomized_assert_retract_churn_matches_naive_rederivation() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Layered name spaces keep every asserted arc pointing "downhill",
        // so no head or assert can be cycle-rejected and the differential
        // gate stays meaningful (cycle_rejected == 0 throughout).
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed * 7 + 1);
            let mut kb = KnowledgeBase::new();
            kb.define_rule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)").unwrap();
            kb.define_rule("lift: partof(X, Y) :- isa(X, Z), partof(Z, Y), feat(Z, hub)")
                .unwrap();
            let name = |layer: usize, i: usize| format!("l{layer}n{i}");
            let mut live: Vec<(Pred, String, String)> = Vec::new();
            for step in 0..120 {
                let retract = !live.is_empty() && rng.random_bool(0.3);
                if retract {
                    let ix = rng.random_range(0..live.len());
                    let (p, a, b) = live.swap_remove(ix);
                    kb.retract_fact(p, &a, &b).unwrap();
                } else {
                    let la = rng.random_range(0..4usize);
                    let lb = rng.random_range(la + 1..5usize);
                    let a = name(la, rng.random_range(0..3));
                    let b = name(lb, rng.random_range(0..3));
                    let pred = if rng.random_bool(0.5) { Pred::IsA } else { Pred::PartOf };
                    match kb.assert_fact(pred, &a, &b).unwrap() {
                        AssertOutcome::Applied => live.push((pred, a.clone(), b.clone())),
                        AssertOutcome::Noop => {
                            if !live.contains(&(pred, a.clone(), b.clone())) {
                                live.push((pred, a.clone(), b.clone()));
                            }
                        }
                        AssertOutcome::CycleRejected => {
                            panic!("layered workload cannot cycle")
                        }
                    }
                    if rng.random_bool(0.15) {
                        kb.add_feature(&a, "hub").unwrap();
                    }
                }
                assert_eq!(kb.stats().cycle_rejected, 0);
                assert_eq!(kb.stats().derive_failed, 0);
                if step % 20 == 19 {
                    kb.check_against_naive()
                        .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
                }
            }
            kb.check_against_naive()
                .unwrap_or_else(|e| panic!("seed {seed} final: {e}"));
        }
    }
}
