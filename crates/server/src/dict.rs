//! String ⇄ [`NodeId`] dictionary encoding.
//!
//! External callers never see raw u32 node ids: every node is named by a
//! UTF-8 key (no whitespace or control characters, at most
//! [`MAX_KEY_BYTES`] bytes — keys travel as single tokens on the wire).
//! Slots are indexed by node id and grow append-only, mirroring how the
//! serving front end assigns ids monotonically; removing a node tombstones
//! its slot, which frees the *name* for immediate re-registration and
//! leaves the slot itself reusable should the engine ever hand that id
//! out again.
//!
//! The dictionary persists as its own codec section (`DIC1` magic, same
//! FNV-1a trailer convention as the closure's `ITC1` stream) so a daemon
//! can save and restore its key space alongside the closure. The decoder
//! is held to the closure codec's standard: corrupt bytes yield a
//! [`DecodeError`], never a panic and never an allocation sized by a
//! corrupted length field.

use std::collections::HashMap;
use std::fmt;

use tc_core::codec::{fnv1a, DecodeError};
use tc_graph::NodeId;

const MAGIC: &[u8; 4] = b"DIC1";

/// Longest permitted key, in bytes.
pub const MAX_KEY_BYTES: usize = 255;

/// Why a key was refused by [`Dict::bind`] or key validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DictError {
    /// The key is empty, too long, or contains whitespace/control bytes.
    InvalidKey,
    /// The key already names a live node.
    Exists,
    /// The slot for this id already holds a live key.
    SlotLive,
}

impl fmt::Display for DictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DictError::InvalidKey => {
                write!(f, "invalid key (empty, over {MAX_KEY_BYTES} bytes, or has whitespace)")
            }
            DictError::Exists => write!(f, "key already bound"),
            DictError::SlotLive => write!(f, "node already has a key"),
        }
    }
}

impl std::error::Error for DictError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    /// Id never bound (a gap left by out-of-order binds).
    Empty,
    /// Id currently named by this key.
    Live(String),
    /// Id was named once; the node is gone and the name released.
    Tombstone,
}

/// Append-only string ⇄ node-id table with tombstone reuse.
#[derive(Debug, Clone, Default)]
pub struct Dict {
    slots: Vec<Slot>,
    index: HashMap<String, u32>,
    tombstones: usize,
}

/// Whether `key` may name a node: non-empty, at most [`MAX_KEY_BYTES`]
/// bytes, and free of whitespace/control characters (keys are single
/// tokens in the line protocol).
pub fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key.len() <= MAX_KEY_BYTES
        && key.chars().all(|c| !c.is_whitespace() && !c.is_control())
}

impl Dict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dict::default()
    }

    /// A dictionary naming ids `0..n` with the default keys `n0`, `n1`, …
    /// — how a daemon labels a closure loaded from a bare edge list.
    pub fn with_default_keys(n: usize) -> Self {
        let mut d = Dict::new();
        for i in 0..n {
            d.bind(NodeId(i as u32), &format!("n{i}")).expect("default keys are unique");
        }
        d
    }

    /// The id named by `key`, if any.
    pub fn resolve(&self, key: &str) -> Option<NodeId> {
        self.index.get(key).map(|&i| NodeId(i))
    }

    /// The key naming `id`, if the slot is live.
    pub fn key(&self, id: NodeId) -> Option<&str> {
        match self.slots.get(id.index()) {
            Some(Slot::Live(k)) => Some(k),
            _ => None,
        }
    }

    /// Names `id` with `key`. The slot must not be live (appending past the
    /// end or reusing a tombstone both work), and the key must be valid and
    /// unused.
    pub fn bind(&mut self, id: NodeId, key: &str) -> Result<(), DictError> {
        if !valid_key(key) {
            return Err(DictError::InvalidKey);
        }
        if self.index.contains_key(key) {
            return Err(DictError::Exists);
        }
        let ix = id.index();
        if ix >= self.slots.len() {
            self.slots.resize(ix + 1, Slot::Empty);
        }
        match &self.slots[ix] {
            Slot::Live(_) => return Err(DictError::SlotLive),
            Slot::Tombstone => self.tombstones -= 1,
            Slot::Empty => {}
        }
        self.slots[ix] = Slot::Live(key.to_owned());
        self.index.insert(key.to_owned(), id.0);
        Ok(())
    }

    /// Releases the name of `id`, tombstoning its slot; returns the freed
    /// key if the slot was live.
    pub fn unbind(&mut self, id: NodeId) -> Option<String> {
        match self.slots.get_mut(id.index()) {
            Some(slot @ Slot::Live(_)) => {
                let old = std::mem::replace(slot, Slot::Tombstone);
                self.tombstones += 1;
                let Slot::Live(key) = old else { unreachable!() };
                self.index.remove(&key);
                Some(key)
            }
            _ => None,
        }
    }

    /// Live keys currently bound.
    pub fn live_count(&self) -> usize {
        self.index.len()
    }

    /// Tombstoned slots (names released by removals).
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Total slots, live + tombstoned + gaps.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Serializes the dictionary: `DIC1`, slot count, tagged slots, FNV-1a
    /// trailer — the same stream conventions as the closure codec.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(self.slots.len() as u64).to_le_bytes());
        for slot in &self.slots {
            match slot {
                Slot::Empty => buf.push(0),
                Slot::Live(key) => {
                    buf.push(1);
                    buf.push(key.len() as u8);
                    buf.extend_from_slice(key.as_bytes());
                }
                Slot::Tombstone => buf.push(2),
            }
        }
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Restores a dictionary serialized with [`Dict::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, DecodeError> {
        if data.len() < 8 {
            return Err(DecodeError::Truncated);
        }
        let (payload, tail) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if fnv1a(payload) != stored {
            return Err(DecodeError::Corrupt("checksum mismatch"));
        }
        if payload.len() < 12 || &payload[..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let count = u64::from_le_bytes(payload[4..12].try_into().expect("8 bytes")) as usize;
        let rest = &payload[12..];
        // Every slot costs at least its 1-byte tag; reject a count the
        // stream cannot possibly hold before sizing anything by it.
        if count > rest.len() {
            return Err(DecodeError::Corrupt("slot count exceeds stream"));
        }
        let mut dict = Dict { slots: Vec::with_capacity(count), index: HashMap::new(), tombstones: 0 };
        let mut pos = 0usize;
        for ix in 0..count {
            let tag = *rest.get(pos).ok_or(DecodeError::Truncated)?;
            pos += 1;
            match tag {
                0 => dict.slots.push(Slot::Empty),
                1 => {
                    let len = *rest.get(pos).ok_or(DecodeError::Truncated)? as usize;
                    pos += 1;
                    let bytes = rest.get(pos..pos + len).ok_or(DecodeError::Truncated)?;
                    pos += len;
                    let key = std::str::from_utf8(bytes)
                        .map_err(|_| DecodeError::Corrupt("key is not UTF-8"))?;
                    if !valid_key(key) {
                        return Err(DecodeError::Corrupt("invalid key"));
                    }
                    if dict.index.insert(key.to_owned(), ix as u32).is_some() {
                        return Err(DecodeError::Corrupt("duplicate key"));
                    }
                    dict.slots.push(Slot::Live(key.to_owned()));
                }
                2 => {
                    dict.slots.push(Slot::Tombstone);
                    dict.tombstones += 1;
                }
                _ => return Err(DecodeError::Corrupt("unknown slot tag")),
            }
        }
        if pos != rest.len() {
            return Err(DecodeError::Corrupt("trailing bytes"));
        }
        Ok(dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_resolve_unbind_reuse() {
        let mut d = Dict::new();
        d.bind(NodeId(0), "alice").unwrap();
        d.bind(NodeId(1), "bob").unwrap();
        assert_eq!(d.resolve("alice"), Some(NodeId(0)));
        assert_eq!(d.key(NodeId(1)), Some("bob"));
        assert_eq!(d.bind(NodeId(2), "alice"), Err(DictError::Exists));
        assert_eq!(d.bind(NodeId(0), "carol"), Err(DictError::SlotLive));

        assert_eq!(d.unbind(NodeId(0)), Some("alice".to_owned()));
        assert_eq!(d.resolve("alice"), None);
        assert_eq!(d.tombstone_count(), 1);
        // The freed name re-registers, and the tombstoned slot rebinds.
        d.bind(NodeId(2), "alice").unwrap();
        d.bind(NodeId(0), "carol").unwrap();
        assert_eq!(d.tombstone_count(), 0);
        assert_eq!(d.resolve("carol"), Some(NodeId(0)));
    }

    #[test]
    fn rejects_invalid_keys() {
        let mut d = Dict::new();
        assert_eq!(d.bind(NodeId(0), ""), Err(DictError::InvalidKey));
        assert_eq!(d.bind(NodeId(0), "two words"), Err(DictError::InvalidKey));
        assert_eq!(d.bind(NodeId(0), "tab\there"), Err(DictError::InvalidKey));
        assert_eq!(d.bind(NodeId(0), &"x".repeat(256)), Err(DictError::InvalidKey));
        d.bind(NodeId(0), &"x".repeat(255)).unwrap();
        d.bind(NodeId(1), "unicode-λ-ok").unwrap();
    }

    #[test]
    fn codec_roundtrips_gaps_and_tombstones() {
        let mut d = Dict::new();
        d.bind(NodeId(0), "root").unwrap();
        d.bind(NodeId(3), "sparse").unwrap(); // leaves gaps at 1, 2
        d.bind(NodeId(4), "gone").unwrap();
        d.unbind(NodeId(4));
        let bytes = d.to_bytes();
        let back = Dict::from_bytes(&bytes).unwrap();
        assert_eq!(back.resolve("root"), Some(NodeId(0)));
        assert_eq!(back.resolve("sparse"), Some(NodeId(3)));
        assert_eq!(back.resolve("gone"), None);
        assert_eq!(back.key(NodeId(1)), None);
        assert_eq!(back.tombstone_count(), 1);
        assert_eq!(back.slot_count(), 5);
        assert_eq!(back.to_bytes(), bytes, "re-serialization is stable");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Dict::from_bytes(b"short").err(), Some(DecodeError::Truncated));
        let mut bytes = Dict::with_default_keys(8).to_bytes();
        let split = bytes.len() - 8;
        bytes[2] ^= 0xFF;
        assert_eq!(
            Dict::from_bytes(&bytes).err(),
            Some(DecodeError::Corrupt("checksum mismatch"))
        );
        // Re-sign an oversized slot count: must be bounded, not allocated.
        bytes[2] ^= 0xFF;
        bytes[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
        let sum = fnv1a(&bytes[..split]);
        bytes[split..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Dict::from_bytes(&bytes).err(),
            Some(DecodeError::Corrupt("slot count exceeds stream"))
        );
    }
}
