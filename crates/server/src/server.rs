//! The TCP daemon: accept loop plus one thread per connection.
//!
//! Robustness rules, in order of appearance:
//!
//! * a connection that sends a line longer than [`MAX_LINE`] gets
//!   `err oversized` and the excess is drained — the connection survives;
//! * a line that is not UTF-8 gets `err utf8`;
//! * EOF in the middle of a line (a half-closed socket) gets a best-effort
//!   `err truncated` before the handler closes its side;
//! * a panic inside one request's handler is caught, answered with
//!   `err internal`, and neither the connection nor the daemon dies;
//! * a panic in the accept loop itself is caught and the loop continues.
//!
//! Connection threads are deliberately detached: the per-request
//! `catch_unwind` already contains failures, and the daemon's lifetime is
//! controlled by [`Server::stop`] / the `shutdown` verb, not by joining
//! readers.

use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::Engine;
use crate::proto::{ProtoError, MAX_LINE};

/// Daemon knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Longest accepted request line (bytes, newline included).
    pub max_line: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_line: MAX_LINE }
    }
}

/// Counters the accept loop and handlers keep.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    caught_panics: AtomicU64,
}

/// A running daemon. Dropping the handle does *not* stop the daemon; call
/// [`Server::stop`] (or send the `shutdown` verb and let the accept loop
/// notice the closed engine).
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting connections against `engine`.
    pub fn start(
        engine: Arc<Engine>,
        addr: &str,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept_engine = Arc::clone(&engine);
        let accept_stop = Arc::clone(&stop);
        let accept_counters = Arc::clone(&counters);
        let accept_thread = std::thread::Builder::new()
            .name("tc-accept".into())
            .spawn(move || {
                accept_loop(listener, accept_engine, accept_stop, accept_counters, config)
            })
            .expect("spawn accept loop");
        Ok(Server { addr: local, engine, stop, counters, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this daemon serves.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Requests handled so far.
    pub fn requests(&self) -> u64 {
        self.counters.requests.load(Ordering::Relaxed)
    }

    /// Handler panics caught (each answered with `err internal`).
    pub fn caught_panics(&self) -> u64 {
        self.counters.caught_panics.load(Ordering::Relaxed)
    }

    /// Closes the engine, stops the accept loop, and joins it. Existing
    /// connections drain on their own (every admitted write is already
    /// published by [`Engine::close`]). An accept loop that died of a panic
    /// is reported as `Err` — the caller decides the exit code; the engine
    /// is closed cleanly either way.
    pub fn stop(mut self) -> Result<(), String> {
        self.engine.close();
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            if h.join().is_err() {
                return Err("accept loop panicked".into());
            }
        }
        Ok(())
    }
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    config: ServerConfig,
) {
    loop {
        if stop.load(Ordering::Acquire) || engine.is_closed() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let engine = Arc::clone(&engine);
                let counters = Arc::clone(&counters);
                let max_line = config.max_line;
                // Detached on purpose: per-request catch_unwind contains
                // failures, and an abandoned connection must never block
                // daemon shutdown.
                let spawned = std::thread::Builder::new().name("tc-conn".into()).spawn(
                    move || {
                        // Belt and braces: a panic on the connection thread
                        // outside the per-request guard (e.g. in the line
                        // reader) is still caught here so the thread dies
                        // quietly instead of aborting test harnesses.
                        let _ = catch_unwind(AssertUnwindSafe(|| {
                            serve_connection(stream, &engine, &counters, max_line)
                        }));
                    },
                );
                if spawned.is_err() {
                    eprintln!("tc-server: could not spawn connection thread");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                eprintln!("tc-server: accept error: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// What reading one line produced.
enum LineRead {
    /// A complete line (terminator stripped).
    Line(Vec<u8>),
    /// Clean EOF at a line boundary.
    Eof,
    /// EOF with a partial line buffered — the peer half-closed mid-request.
    TruncatedEof,
    /// The line exceeded `max_line`; the excess was drained.
    Oversized,
}

/// Reads one LF-terminated line, enforcing `max_line`. Carries its own
/// buffer so partial reads across calls keep working.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    pending: Vec<u8>,
}

impl LineReader {
    fn read_line(&mut self, max_line: usize) -> std::io::Result<LineRead> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop(); // the LF
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(LineRead::Line(line));
            }
            if self.pending.len() > max_line {
                // Drain until the terminator (or EOF) so the connection can
                // continue at the next request boundary.
                loop {
                    if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                        self.pending.drain(..=pos);
                        return Ok(LineRead::Oversized);
                    }
                    self.pending.clear();
                    match self.stream.read(&mut self.buf) {
                        Ok(0) => return Ok(LineRead::Oversized),
                        Ok(n) => self.pending.extend_from_slice(&self.buf[..n]),
                        Err(e) => return Err(e),
                    }
                }
            }
            match self.stream.read(&mut self.buf) {
                Ok(0) => {
                    return Ok(if self.pending.is_empty() {
                        LineRead::Eof
                    } else {
                        LineRead::TruncatedEof
                    });
                }
                Ok(n) => self.pending.extend_from_slice(&self.buf[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    engine: &Arc<Engine>,
    counters: &Counters,
    max_line: usize,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut out = BufWriter::new(write_half);
    let mut reader_state = LineReader { stream, buf: vec![0u8; 8 * 1024], pending: Vec::new() };
    let mut closure_reader = engine.reader();
    loop {
        let line = match reader_state.read_line(max_line) {
            Ok(LineRead::Line(l)) => l,
            Ok(LineRead::Eof) => return,
            Ok(LineRead::TruncatedEof) => {
                // Best effort: the peer may already be gone.
                let _ = writeln!(out, "{}", ProtoError::Truncated.line());
                let _ = out.flush();
                return;
            }
            Ok(LineRead::Oversized) => {
                counters.requests.fetch_add(1, Ordering::Relaxed);
                if writeln!(out, "{}", ProtoError::Oversized.line()).is_err()
                    || out.flush().is_err()
                {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        counters.requests.fetch_add(1, Ordering::Relaxed);
        let response = match std::str::from_utf8(&line) {
            Err(_) => ProtoError::Utf8.line(),
            Ok(text) => {
                match catch_unwind(AssertUnwindSafe(|| engine.handle(&mut closure_reader, text))) {
                    Ok(resp) => resp,
                    Err(_) => {
                        counters.caught_panics.fetch_add(1, Ordering::Relaxed);
                        // The reader may be poisoned mid-query; replace it.
                        closure_reader = engine.reader();
                        ProtoError::Internal.line()
                    }
                }
            }
        };
        if writeln!(out, "{response}").is_err() || out.flush().is_err() {
            return;
        }
    }
}
