//! # tc-server — network serving front end for the interval-tc closure
//!
//! The paper's premise is a *database-resident* transitive-closure index
//! answering relationship queries for large knowledge bases; this crate is
//! the wire between that index and its callers. It layers three things on
//! top of the in-process serving machinery ([`tc_core::ShardedService`]):
//!
//! * **Dictionary encoding** ([`dict::Dict`]) — external callers speak
//!   string keys (`"part-7"`, `"person/alice"`), never raw `u32` node ids.
//!   The dictionary is append-only with tombstone reuse and persists via
//!   its own checksummed codec section (`DIC1`), mutation-fuzzed like the
//!   closure codec.
//! * **A line protocol** ([`proto`]) — one request per LF-terminated line,
//!   one `ok ...` / `err <code> ...` response line back. Malformed input
//!   (oversized lines, unknown verbs, bad UTF-8, unknown keys, half-closed
//!   sockets) yields a protocol-level error response, never a disconnect
//!   and never a panic.
//! * **A threaded TCP daemon** ([`server::Server`]) — std-only: one accept
//!   loop, one thread per connection, each connection owning its own
//!   zero-lock [`tc_core::ShardedReader`]. Writes funnel through the
//!   validating front end and the per-shard background writers, so the
//!   daemon inherits the serving layer's staleness model: every answer is
//!   some *prefix* of the accepted write sequence, at most one flush
//!   interval behind.
//!
//! The [`client::Client`] is the matching blocking connector used by the
//! integration tests and the closed-loop load generator
//! (`tc-bench/src/bin/serve_net.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod dict;
pub mod engine;
pub mod proto;
pub mod server;

pub use client::Client;
pub use dict::{Dict, DictError};
pub use engine::{Engine, EngineConfig};
pub use proto::{parse, ProtoError, Request, MAX_LINE};
pub use server::{Server, ServerConfig};
