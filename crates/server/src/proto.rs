//! The wire protocol: one LF-terminated request line in, one response line
//! out.
//!
//! Grammar (tokens separated by single spaces, keys as in
//! [`crate::dict::valid_key`]):
//!
//! ```text
//! request   = "ping"
//!           | "stats"
//!           | "flush"
//!           | "shutdown"
//!           | "reaches" key key
//!           | "reaches-batch" (key key)+
//!           | "successors" key
//!           | "predecessors" key
//!           | "add-node" key key*          ; new key, then parent keys
//!           | "add-edge" key key
//!           | "remove-edge" key key
//!           | "remove-node" key
//!           | "define-rule" text           ; rest of line, `name: head :- body`
//!           | "assert" rel key key         ; rel = "isa" | "partof"
//!           | "retract" rel key key
//!           | "ask" rel key key
//!
//! response  = "ok" [token*]
//!           | "err" code [text]
//! code      = "unknown-verb" | "bad-request" | "unknown-key" | "exists"
//!           | "oversized" | "utf8" | "truncated" | "closed" | "internal"
//! ```
//!
//! Semantically *rejected* writes (a cycle, a missing arc) are not
//! protocol errors: they answer `ok rejected`, mirroring how the serving
//! front end validates-and-drops instead of failing. `err` is reserved for
//! requests the daemon could not even interpret or admit.

use std::fmt;

/// Longest accepted request line in bytes, terminator included. Anything
/// longer is drained and answered with `err oversized`.
pub const MAX_LINE: usize = 64 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request<'a> {
    /// Liveness probe.
    Ping,
    /// Engine + dictionary counters.
    Stats,
    /// Force the serving layer to drain writers and republish.
    Flush,
    /// Close the engine and stop accepting connections.
    Shutdown,
    /// Is `dst` reachable from `src`?
    Reaches(&'a str, &'a str),
    /// Batched reachability probes.
    ReachesBatch(Vec<(&'a str, &'a str)>),
    /// All nodes reachable from the key.
    Successors(&'a str),
    /// All nodes that reach the key.
    Predecessors(&'a str),
    /// Create a node named `key` under the given parents.
    AddNode {
        /// Name for the new node; must be unbound.
        key: &'a str,
        /// Existing parent keys (possibly none: a new root).
        parents: Vec<&'a str>,
    },
    /// Add the arc src → dst.
    AddEdge(&'a str, &'a str),
    /// Remove the arc src → dst.
    RemoveEdge(&'a str, &'a str),
    /// Remove the node and its arcs, releasing its name.
    RemoveNode(&'a str),
    /// Define (or redefine) a knowledge-base rule; the operand is the raw
    /// rule text (`name: head :- body`), spaces and all.
    DefineRule(&'a str),
    /// Assert a knowledge-base fact: `rel` (`isa`/`partof`), subject, object.
    Assert {
        /// Relation name, validated by the knowledge base.
        rel: &'a str,
        /// Subject concept.
        a: &'a str,
        /// Object concept.
        b: &'a str,
    },
    /// Retract a base fact (DRed-maintained).
    Retract {
        /// Relation name.
        rel: &'a str,
        /// Subject concept.
        a: &'a str,
        /// Object concept.
        b: &'a str,
    },
    /// One transitive membership probe over the knowledge base.
    Ask {
        /// Relation name.
        rel: &'a str,
        /// Subject concept.
        a: &'a str,
        /// Object concept.
        b: &'a str,
    },
}

/// A request the daemon could not interpret or admit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// First token is not a known verb.
    UnknownVerb,
    /// Known verb, malformed operands.
    BadRequest(&'static str),
    /// Request line is not UTF-8.
    Utf8,
    /// Request line exceeded [`MAX_LINE`].
    Oversized,
    /// The connection half-closed mid-line.
    Truncated,
    /// A key that names no live node.
    UnknownKey,
    /// `add-node` with a key that is already bound.
    Exists,
    /// The engine is shut down; writes are no longer admitted.
    Closed,
    /// The request handler panicked (caught; the daemon lives on).
    Internal,
}

impl ProtoError {
    /// The machine-readable code token.
    pub fn code(&self) -> &'static str {
        match self {
            ProtoError::UnknownVerb => "unknown-verb",
            ProtoError::BadRequest(_) => "bad-request",
            ProtoError::Utf8 => "utf8",
            ProtoError::Oversized => "oversized",
            ProtoError::Truncated => "truncated",
            ProtoError::UnknownKey => "unknown-key",
            ProtoError::Exists => "exists",
            ProtoError::Closed => "closed",
            ProtoError::Internal => "internal",
        }
    }

    /// The full `err <code> <text>` response line (no terminator).
    pub fn line(&self) -> String {
        format!("err {} {}", self.code(), self)
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::UnknownVerb => write!(f, "unknown verb"),
            ProtoError::BadRequest(what) => write!(f, "{what}"),
            ProtoError::Utf8 => write!(f, "request is not UTF-8"),
            ProtoError::Oversized => write!(f, "request line over {MAX_LINE} bytes"),
            ProtoError::Truncated => write!(f, "connection closed mid-request"),
            ProtoError::UnknownKey => write!(f, "no node by that key"),
            ProtoError::Exists => write!(f, "key already bound"),
            ProtoError::Closed => write!(f, "engine is shut down"),
            ProtoError::Internal => write!(f, "request handler panicked"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Parses one request line (no terminator).
pub fn parse(line: &str) -> Result<Request<'_>, ProtoError> {
    let mut toks = line.split_ascii_whitespace();
    let verb = toks.next().ok_or(ProtoError::BadRequest("empty request"))?;
    if verb == "define-rule" {
        // Rule text keeps its spaces: take the raw remainder of the line,
        // not the token stream.
        let at = line.find("define-rule").expect("verb came from this line");
        let text = line[at + "define-rule".len()..].trim();
        if text.is_empty() {
            return Err(ProtoError::BadRequest("need a rule definition"));
        }
        return Ok(Request::DefineRule(text));
    }
    let rest: Vec<&str> = toks.collect();
    let expect = |n: usize| -> Result<(), ProtoError> {
        if rest.len() == n {
            Ok(())
        } else {
            Err(ProtoError::BadRequest("wrong operand count"))
        }
    };
    match verb {
        "ping" => {
            expect(0)?;
            Ok(Request::Ping)
        }
        "stats" => {
            expect(0)?;
            Ok(Request::Stats)
        }
        "flush" => {
            expect(0)?;
            Ok(Request::Flush)
        }
        "shutdown" => {
            expect(0)?;
            Ok(Request::Shutdown)
        }
        "reaches" => {
            expect(2)?;
            Ok(Request::Reaches(rest[0], rest[1]))
        }
        "reaches-batch" => {
            if rest.is_empty() || rest.len() % 2 != 0 {
                return Err(ProtoError::BadRequest("need one or more key pairs"));
            }
            Ok(Request::ReachesBatch(rest.chunks(2).map(|c| (c[0], c[1])).collect()))
        }
        "successors" => {
            expect(1)?;
            Ok(Request::Successors(rest[0]))
        }
        "predecessors" => {
            expect(1)?;
            Ok(Request::Predecessors(rest[0]))
        }
        "add-node" => {
            if rest.is_empty() {
                return Err(ProtoError::BadRequest("need a key"));
            }
            Ok(Request::AddNode { key: rest[0], parents: rest[1..].to_vec() })
        }
        "add-edge" => {
            expect(2)?;
            Ok(Request::AddEdge(rest[0], rest[1]))
        }
        "remove-edge" => {
            expect(2)?;
            Ok(Request::RemoveEdge(rest[0], rest[1]))
        }
        "remove-node" => {
            expect(1)?;
            Ok(Request::RemoveNode(rest[0]))
        }
        "assert" => {
            expect(3)?;
            Ok(Request::Assert { rel: rest[0], a: rest[1], b: rest[2] })
        }
        "retract" => {
            expect(3)?;
            Ok(Request::Retract { rel: rest[0], a: rest[1], b: rest[2] })
        }
        "ask" => {
            expect(3)?;
            Ok(Request::Ask { rel: rest[0], a: rest[1], b: rest[2] })
        }
        _ => Err(ProtoError::UnknownVerb),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        assert_eq!(parse("ping"), Ok(Request::Ping));
        assert_eq!(parse("reaches a b"), Ok(Request::Reaches("a", "b")));
        assert_eq!(
            parse("reaches-batch a b c d"),
            Ok(Request::ReachesBatch(vec![("a", "b"), ("c", "d")]))
        );
        assert_eq!(
            parse("add-node kid p1 p2"),
            Ok(Request::AddNode { key: "kid", parents: vec!["p1", "p2"] })
        );
        assert_eq!(parse("add-node root"), Ok(Request::AddNode { key: "root", parents: vec![] }));
        assert_eq!(parse("remove-node x"), Ok(Request::RemoveNode("x")));
        assert_eq!(
            parse("define-rule up: isa(X, Y) :- partof(X, Z), isa(Z, Y)"),
            Ok(Request::DefineRule("up: isa(X, Y) :- partof(X, Z), isa(Z, Y)"))
        );
        assert_eq!(
            parse("assert isa engine piston"),
            Ok(Request::Assert { rel: "isa", a: "engine", b: "piston" })
        );
        assert_eq!(
            parse("retract partof a b"),
            Ok(Request::Retract { rel: "partof", a: "a", b: "b" })
        );
        assert_eq!(parse("ask isa a b"), Ok(Request::Ask { rel: "isa", a: "a", b: "b" }));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse("frobnicate a"), Err(ProtoError::UnknownVerb));
        assert_eq!(parse(""), Err(ProtoError::BadRequest("empty request")));
        assert_eq!(parse("reaches a"), Err(ProtoError::BadRequest("wrong operand count")));
        assert_eq!(parse("reaches a b c"), Err(ProtoError::BadRequest("wrong operand count")));
        assert_eq!(
            parse("reaches-batch a"),
            Err(ProtoError::BadRequest("need one or more key pairs"))
        );
        assert_eq!(parse("add-node"), Err(ProtoError::BadRequest("need a key")));
        assert_eq!(
            parse("define-rule"),
            Err(ProtoError::BadRequest("need a rule definition"))
        );
        assert_eq!(parse("ask isa a"), Err(ProtoError::BadRequest("wrong operand count")));
        assert_eq!(
            parse("assert isa a b c"),
            Err(ProtoError::BadRequest("wrong operand count"))
        );
    }
}
