//! A small blocking client for the line protocol — the connector the
//! integration tests and the closed-loop load generator drive.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One connection speaking the line protocol.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { writer, reader })
    }

    /// Sends one request line and reads the one response line.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while resp.ends_with('\n') || resp.ends_with('\r') {
            resp.pop();
        }
        Ok(resp)
    }

    /// Sends raw bytes as-is (no terminator added) — the hook the
    /// malformed-input tests use to speak *broken* protocol.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Reads one response line after [`Client::send_raw`].
    pub fn read_response(&mut self) -> std::io::Result<String> {
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while resp.ends_with('\n') || resp.ends_with('\r') {
            resp.pop();
        }
        Ok(resp)
    }

    /// Half-closes the write side, signalling EOF to the server while the
    /// read side stays open.
    pub fn shutdown_write(&mut self) -> std::io::Result<()> {
        self.writer.shutdown(std::net::Shutdown::Write)
    }

    /// A `reaches` probe, parsed.
    pub fn reaches(&mut self, src: &str, dst: &str) -> std::io::Result<Result<bool, String>> {
        let resp = self.request(&format!("reaches {src} {dst}"))?;
        Ok(match resp.as_str() {
            "ok true" => Ok(true),
            "ok false" => Ok(false),
            other => Err(other.to_owned()),
        })
    }
}
