//! The serving engine: one [`ShardedService`] plus the dictionary, shared
//! by every connection.
//!
//! Reads never lock the engine: each connection owns a
//! [`ShardedReader`] whose answers come from epoch-validated snapshots.
//! Writes take the dictionary's write lock for exactly as long as it takes
//! to validate keys and hand the op to the validating front end — id
//! assignment is synchronous there (see
//! [`ShardedService::submit_with_outcome`]), so a new node's key is bound
//! before the response line is written, while the actual closure update
//! proceeds on the background shard writers.
//!
//! A background *flusher* thread bounds staleness: whenever writes have
//! been admitted since the last publish, it drains the writers and
//! republishes the routing snapshot every `flush_interval`. Readers
//! therefore serve some prefix of the accepted write sequence, at most one
//! flush interval old — the staleness model measured in EXPERIMENTS.md X6,
//! now exposed over the wire.
//!
//! The KB verbs (`define-rule` / `assert` / `retract` / `ask`) drive a
//! [`tc_kb::KnowledgeBase`] behind a mutex. Every IS-A arc the rule engine
//! adds or removes — base or derived — is forwarded from the KB's journal
//! into the sharded service, so `ask isa` answers through the same
//! epoch-validated reader snapshots as `reaches`; an `ask` only flushes
//! when KB writes are actually pending, so query windows between writes
//! run at full snapshot-read speed. PART-OF stays resident in the KB's own
//! closure (the service mirrors one relation), so `ask partof` answers
//! from the KB directly. Concept names are also bound in the shared
//! dictionary when free, which makes KB concepts visible to the generic
//! graph verbs (`successors kb-concept`, ...).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use std::collections::HashMap;

use tc_core::shard::SubmitOutcome;
use tc_core::{ServiceOp, ShardedClosure, ShardedReader, ShardedService, ShardedStats};
use tc_graph::NodeId;
use tc_kb::{KbChange, KbCommand, KbError, KnowledgeBase, Pred};

use crate::dict::{valid_key, Dict};
use crate::proto::{parse, ProtoError, Request};

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// How often the background flusher drains writers and republishes
    /// when writes are pending.
    pub flush_interval: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { flush_interval: Duration::from_millis(25) }
    }
}

struct FlusherState {
    dirty: bool,
    stop: bool,
}

/// The knowledge base behind the KB verbs, plus the mapping from its dense
/// concept ids to the service node ids its IS-A arcs were forwarded under.
struct KbState {
    kb: KnowledgeBase,
    node_of: HashMap<u32, NodeId>,
}

/// The shared serving engine. Cheap to share via `Arc`; connections call
/// [`Engine::handle`] with their own reader.
pub struct Engine {
    service: ShardedService,
    dict: RwLock<Dict>,
    kb: Mutex<KbState>,
    /// KB writes forwarded to the service but not yet flushed; the next
    /// `ask isa` flushes once and clears this, so reads between writes stay
    /// pure snapshot probes.
    kb_dirty: AtomicBool,
    closed: AtomicBool,
    flusher: Mutex<Option<JoinHandle<()>>>,
    fl: Arc<(Mutex<FlusherState>, Condvar)>,
}

impl Engine {
    /// Starts the engine over a built sharded closure and its dictionary,
    /// spawning the background flusher.
    pub fn start(closure: ShardedClosure, dict: Dict, config: EngineConfig) -> Arc<Engine> {
        let service = ShardedService::start(closure, tc_core::ServiceConfig::new());
        let engine = Arc::new(Engine {
            service,
            dict: RwLock::new(dict),
            kb: Mutex::new(KbState { kb: KnowledgeBase::new(), node_of: HashMap::new() }),
            kb_dirty: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            flusher: Mutex::new(None),
            fl: Arc::new((Mutex::new(FlusherState { dirty: false, stop: false }), Condvar::new())),
        });
        let worker = Arc::clone(&engine);
        let interval = config.flush_interval;
        let handle = std::thread::Builder::new()
            .name("tc-flusher".into())
            .spawn(move || worker.flusher_loop(interval))
            .expect("spawn flusher");
        *engine.flusher.lock().expect("flusher slot poisoned") = Some(handle);
        engine
    }

    fn flusher_loop(&self, interval: Duration) {
        let (lock, cv) = &*self.fl;
        loop {
            let (dirty, stop) = {
                let mut st = lock.lock().expect("flusher state poisoned");
                if !st.dirty && !st.stop {
                    // One bounded wait per iteration: a timeout falls through
                    // to the outer loop's re-check, so the interval paces
                    // publishes even without notifications.
                    let (next, _) = cv.wait_timeout(st, interval).expect("flusher state poisoned");
                    st = next;
                }
                let dirty = st.dirty;
                st.dirty = false;
                (dirty, st.stop)
            };
            if dirty {
                self.service.flush();
            }
            if stop {
                return;
            }
        }
    }

    fn mark_dirty(&self) {
        let (lock, cv) = &*self.fl;
        lock.lock().expect("flusher state poisoned").dirty = true;
        cv.notify_all();
    }

    /// A zero-lock reader for one connection.
    pub fn reader(&self) -> ShardedReader {
        self.service.reader()
    }

    /// Drains the shard writers and republishes now; after this returns,
    /// reads are exact with respect to every admitted write.
    pub fn flush(&self) -> ShardedStats {
        self.service.flush()
    }

    /// Current engine counters without forcing a flush.
    pub fn stats(&self) -> ShardedStats {
        self.service.stats()
    }

    /// Whether [`Engine::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Closes the engine: later writes answer `err closed`, every admitted
    /// write is drained and published, the flusher stops. Reads keep
    /// working off the final snapshots. Idempotent.
    pub fn close(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        self.service.close();
        let (lock, cv) = &*self.fl;
        {
            let mut st = lock.lock().expect("flusher state poisoned");
            st.stop = true;
            st.dirty = false;
        }
        cv.notify_all();
        let handle = self.flusher.lock().expect("flusher slot poisoned").take();
        if let Some(h) = handle {
            // A panicking flusher must not take the daemon down with it.
            if h.join().is_err() {
                eprintln!("tc-server: flusher thread panicked; continuing without it");
            }
        }
        self.service.flush();
    }

    /// A snapshot of the dictionary (for persistence).
    pub fn dict_bytes(&self) -> Vec<u8> {
        self.dict.read().expect("dict poisoned").to_bytes()
    }

    /// Parses and executes one request line, returning the response line
    /// (no terminator). Never panics on malformed input; semantic
    /// rejections answer `ok rejected`.
    pub fn handle(&self, reader: &mut ShardedReader, line: &str) -> String {
        match parse(line) {
            Err(e) => e.line(),
            Ok(req) => self.dispatch(reader, req),
        }
    }

    fn dispatch(&self, reader: &mut ShardedReader, req: Request<'_>) -> String {
        match req {
            Request::Ping => "ok pong".to_owned(),
            Request::Flush => {
                self.flush();
                "ok flushed".to_owned()
            }
            Request::Shutdown => {
                self.close();
                "ok bye".to_owned()
            }
            Request::Stats => {
                let s = self.stats();
                let dict = self.dict.read().expect("dict poisoned");
                format!(
                    "ok submitted={} rejected={} routed={} applied={} skipped={} \
                     publishes={} staleness={} keys={} tombstones={}",
                    s.submitted,
                    s.rejected,
                    s.routed,
                    s.applied,
                    s.skipped,
                    s.publishes,
                    reader.staleness(),
                    dict.live_count(),
                    dict.tombstone_count(),
                )
            }
            Request::Reaches(a, b) => match self.resolve2(a, b) {
                Err(e) => e.line(),
                Ok((src, dst)) => format!("ok {}", reader.reaches(src, dst)),
            },
            Request::ReachesBatch(pairs) => {
                let ids = {
                    let dict = self.dict.read().expect("dict poisoned");
                    let mut ids = Vec::with_capacity(pairs.len());
                    for (a, b) in &pairs {
                        match (dict.resolve(a), dict.resolve(b)) {
                            (Some(s), Some(d)) => ids.push((s, d)),
                            _ => return ProtoError::UnknownKey.line(),
                        }
                    }
                    ids
                };
                let bits = reader.reaches_batch(&ids);
                let mut out = String::with_capacity(3 + 2 * bits.len());
                out.push_str("ok");
                for b in bits {
                    out.push(' ');
                    out.push(if b { '1' } else { '0' });
                }
                out
            }
            Request::Successors(k) => self.render_set(k, |r, id| r.successors(id), reader),
            Request::Predecessors(k) => self.render_set(k, |r, id| r.predecessors(id), reader),
            Request::AddNode { key, parents } => {
                let mut dict = self.dict.write().expect("dict poisoned");
                if !valid_key(key) {
                    return ProtoError::BadRequest("invalid key").line();
                }
                if dict.resolve(key).is_some() {
                    return ProtoError::Exists.line();
                }
                let mut pids = Vec::with_capacity(parents.len());
                for p in &parents {
                    match dict.resolve(p) {
                        Some(id) => pids.push(id),
                        None => return ProtoError::UnknownKey.line(),
                    }
                }
                match self.service.submit_with_outcome(ServiceOp::AddNode { parents: pids }) {
                    Err(_) => ProtoError::Closed.line(),
                    Ok((_, SubmitOutcome::Routed { new_node: Some(id) })) => {
                        dict.bind(id, key).expect("fresh id gets a fresh key");
                        self.mark_dirty();
                        "ok added".to_owned()
                    }
                    Ok(_) => "ok rejected".to_owned(),
                }
            }
            Request::AddEdge(a, b) => self.write_pair(a, b, |s, d| ServiceOp::AddEdge {
                src: s,
                dst: d,
            }, "added"),
            Request::RemoveEdge(a, b) => self.write_pair(a, b, |s, d| ServiceOp::RemoveEdge {
                src: s,
                dst: d,
            }, "removed"),
            Request::DefineRule(text) => self.kb_mutate(&format!("rule {text}")),
            Request::Assert { rel, a, b } => self.kb_mutate(&format!("assert {rel} {a} {b}")),
            Request::Retract { rel, a, b } => self.kb_mutate(&format!("retract {rel} {a} {b}")),
            Request::Ask { rel, a, b } => self.kb_ask(reader, rel, a, b),
            Request::RemoveNode(k) => {
                let mut dict = self.dict.write().expect("dict poisoned");
                let Some(id) = dict.resolve(k) else {
                    return ProtoError::UnknownKey.line();
                };
                match self.service.submit_with_outcome(ServiceOp::RemoveNode { node: id }) {
                    Err(_) => ProtoError::Closed.line(),
                    Ok((_, SubmitOutcome::Routed { .. })) => {
                        dict.unbind(id);
                        self.mark_dirty();
                        "ok removed".to_owned()
                    }
                    Ok(_) => "ok rejected".to_owned(),
                }
            }
        }
    }

    /// Executes one mutating KB command through the shared command layer,
    /// then forwards the journaled IS-A closure changes into the service.
    fn kb_mutate(&self, line: &str) -> String {
        if self.is_closed() {
            return ProtoError::Closed.line();
        }
        let cmd = match KbCommand::parse(line) {
            Ok(c) => c,
            Err(e) => return format!("err bad-request {e}"),
        };
        let mut st = self.kb.lock().expect("kb poisoned");
        let answer = match cmd.execute(&mut st.kb) {
            Ok(a) => a,
            Err(KbError::UnknownConcept(_)) => return ProtoError::UnknownKey.line(),
            Err(e) => return format!("err bad-request {e}"),
        };
        if let Err(resp) = self.kb_forward(&mut st) {
            return resp;
        }
        format!("ok {answer}")
    }

    /// Drains the KB journal into the sharded service: new concepts become
    /// service nodes (bound in the dictionary when the name is free, so the
    /// generic graph verbs can see them), IS-A arc changes — asserted and
    /// rule-derived alike — become edge ops. PART-OF changes stay resident
    /// in the KB's own closure.
    fn kb_forward(&self, st: &mut KbState) -> Result<(), String> {
        let mut wrote = false;
        for change in st.kb.take_journal() {
            match change {
                KbChange::NewConcept { id, name } => {
                    match self.service.submit_with_outcome(ServiceOp::AddNode { parents: vec![] })
                    {
                        Err(_) => return Err(ProtoError::Closed.line()),
                        Ok((_, SubmitOutcome::Routed { new_node: Some(nid) })) => {
                            st.node_of.insert(id, nid);
                            wrote = true;
                            let mut dict = self.dict.write().expect("dict poisoned");
                            if valid_key(&name) && dict.resolve(&name).is_none() {
                                dict.bind(nid, &name).expect("fresh id gets a fresh key");
                            }
                        }
                        Ok(_) => {
                            return Err("err internal kb concept rejected by service".to_owned())
                        }
                    }
                }
                KbChange::EdgeAdded { pred: Pred::IsA, src, dst, .. } => {
                    let (Some(&s), Some(&d)) = (st.node_of.get(&src), st.node_of.get(&dst))
                    else {
                        continue;
                    };
                    match self
                        .service
                        .submit_with_outcome(ServiceOp::AddEdge { src: s, dst: d })
                    {
                        Err(_) => return Err(ProtoError::Closed.line()),
                        Ok(_) => wrote = true,
                    }
                }
                KbChange::EdgeRemoved { pred: Pred::IsA, src, dst } => {
                    let (Some(&s), Some(&d)) = (st.node_of.get(&src), st.node_of.get(&dst))
                    else {
                        continue;
                    };
                    match self
                        .service
                        .submit_with_outcome(ServiceOp::RemoveEdge { src: s, dst: d })
                    {
                        Err(_) => return Err(ProtoError::Closed.line()),
                        Ok(_) => wrote = true,
                    }
                }
                // PART-OF is answered from the KB's resident closure.
                KbChange::EdgeAdded { .. } | KbChange::EdgeRemoved { .. } => {}
            }
        }
        if wrote {
            self.kb_dirty.store(true, Ordering::Release);
            self.mark_dirty();
        }
        Ok(())
    }

    /// `ask rel a b`. IS-A probes resolve to service node ids and answer
    /// through the connection's epoch-validated reader — the same path as
    /// `reaches` — flushing first only if KB writes are pending. PART-OF
    /// probes answer from the KB's own closure.
    fn kb_ask(&self, reader: &mut ShardedReader, rel: &str, a: &str, b: &str) -> String {
        let Some(pred) = Pred::parse(rel) else {
            return format!("err bad-request unknown relation {rel:?} (want isa or partof)");
        };
        let st = self.kb.lock().expect("kb poisoned");
        match pred {
            Pred::PartOf => match st.kb.ask(pred, a, b) {
                Ok(v) => format!("ok {v}"),
                Err(KbError::UnknownConcept(_)) => ProtoError::UnknownKey.line(),
                Err(e) => format!("err bad-request {e}"),
            },
            Pred::IsA => {
                let ids = (
                    st.kb.concept_id(a).and_then(|x| st.node_of.get(&x).copied()),
                    st.kb.concept_id(b).and_then(|y| st.node_of.get(&y).copied()),
                );
                let (Some(s), Some(d)) = ids else {
                    return ProtoError::UnknownKey.line();
                };
                drop(st);
                if self.kb_dirty.swap(false, Ordering::AcqRel) {
                    self.flush();
                }
                // The KB relation is strict; the closure is reflexive.
                format!("ok {}", s != d && reader.reaches(s, d))
            }
        }
    }

    fn resolve2(&self, a: &str, b: &str) -> Result<(NodeId, NodeId), ProtoError> {
        let dict = self.dict.read().expect("dict poisoned");
        match (dict.resolve(a), dict.resolve(b)) {
            (Some(s), Some(d)) => Ok((s, d)),
            _ => Err(ProtoError::UnknownKey),
        }
    }

    /// Writes that take two existing keys and map to one op; `verb` is the
    /// success token (`added` / `removed`).
    fn write_pair(
        &self,
        a: &str,
        b: &str,
        op: impl FnOnce(NodeId, NodeId) -> ServiceOp,
        verb: &str,
    ) -> String {
        let dict = self.dict.write().expect("dict poisoned");
        let (src, dst) = match (dict.resolve(a), dict.resolve(b)) {
            (Some(s), Some(d)) => (s, d),
            _ => return ProtoError::UnknownKey.line(),
        };
        match self.service.submit_with_outcome(op(src, dst)) {
            Err(_) => ProtoError::Closed.line(),
            Ok((_, SubmitOutcome::Routed { .. })) => {
                drop(dict);
                self.mark_dirty();
                format!("ok {verb}")
            }
            Ok((_, SubmitOutcome::Noop)) => "ok noop".to_owned(),
            Ok((_, SubmitOutcome::Rejected)) => "ok rejected".to_owned(),
        }
    }

    /// Renders a successor/predecessor set as sorted keys. Ids whose slot
    /// is tombstoned (a removal racing this read's snapshot) are skipped:
    /// they are unreachable by name.
    fn render_set(
        &self,
        key: &str,
        query: impl FnOnce(&mut ShardedReader, NodeId) -> Vec<NodeId>,
        reader: &mut ShardedReader,
    ) -> String {
        let id = {
            let dict = self.dict.read().expect("dict poisoned");
            match dict.resolve(key) {
                Some(id) => id,
                None => return ProtoError::UnknownKey.line(),
            }
        };
        let ids = query(reader, id);
        let dict = self.dict.read().expect("dict poisoned");
        let mut keys: Vec<&str> = ids.iter().filter_map(|&v| dict.key(v)).collect();
        keys.sort_unstable();
        let mut out = String::from("ok");
        for k in keys {
            out.push(' ');
            out.push_str(k);
        }
        out
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::ClosureConfig;
    use tc_graph::DiGraph;

    fn engine() -> (Arc<Engine>, ShardedReader) {
        let g = DiGraph::from_edges([(0, 1), (1, 2)]);
        let sc = ShardedClosure::build(ClosureConfig::new(), &g, 1).unwrap();
        let e = Engine::start(sc, Dict::with_default_keys(3), EngineConfig::default());
        let r = e.reader();
        (e, r)
    }

    #[test]
    fn reads_and_writes_roundtrip_by_key() {
        let (e, mut r) = engine();
        assert_eq!(e.handle(&mut r, "ping"), "ok pong");
        assert_eq!(e.handle(&mut r, "reaches n0 n2"), "ok true");
        assert_eq!(e.handle(&mut r, "reaches n2 n0"), "ok false");
        assert_eq!(e.handle(&mut r, "add-node leaf n2"), "ok added");
        assert_eq!(e.handle(&mut r, "flush"), "ok flushed");
        assert_eq!(e.handle(&mut r, "reaches n0 leaf"), "ok true");
        assert_eq!(e.handle(&mut r, "reaches-batch n0 leaf leaf n0"), "ok 1 0");
        assert_eq!(e.handle(&mut r, "successors n1"), "ok leaf n1 n2"); // reflexive
        assert_eq!(e.handle(&mut r, "predecessors leaf"), "ok leaf n0 n1 n2");
        assert_eq!(e.handle(&mut r, "add-edge leaf n0"), "ok rejected"); // cycle
        assert_eq!(e.handle(&mut r, "add-edge n2 leaf"), "ok noop"); // duplicate
        assert_eq!(e.handle(&mut r, "remove-node leaf"), "ok removed");
        assert_eq!(e.handle(&mut r, "flush"), "ok flushed");
        assert_eq!(e.handle(&mut r, "reaches n0 leaf"), "err unknown-key no node by that key");
        assert_eq!(e.handle(&mut r, "add-node leaf n0"), "ok added"); // name reuse
        e.close();
    }

    #[test]
    fn protocol_errors_do_not_disturb_the_engine() {
        let (e, mut r) = engine();
        assert!(e.handle(&mut r, "frobnicate").starts_with("err unknown-verb"));
        assert!(e.handle(&mut r, "reaches n0").starts_with("err bad-request"));
        assert!(e.handle(&mut r, "reaches nope n0").starts_with("err unknown-key"));
        assert!(e.handle(&mut r, "add-node bad\u{7f}key").starts_with("err bad-request"));
        assert!(e.handle(&mut r, "add-node n0").starts_with("err exists"));
        assert_eq!(e.handle(&mut r, "reaches n0 n2"), "ok true");
        let stats = e.stats();
        assert_eq!(stats.submitted, 0, "failed requests never touch the service");
        e.close();
    }

    #[test]
    fn kb_verbs_serve_rule_driven_inference_over_the_wire() {
        let (e, mut r) = engine();
        assert_eq!(
            e.handle(&mut r, "define-rule up: isa(X, Y) :- partof(X, Z), isa(Z, Y)"),
            "ok rule up"
        );
        assert_eq!(e.handle(&mut r, "assert partof engine piston"), "ok applied");
        assert_eq!(e.handle(&mut r, "assert isa piston forged"), "ok applied");
        // The derived isa(engine, forged) arc was forwarded to the service;
        // ask answers through the reader snapshot, flushing the pending
        // writes itself.
        assert_eq!(e.handle(&mut r, "ask isa engine forged"), "ok true");
        assert_eq!(e.handle(&mut r, "ask isa forged engine"), "ok false");
        assert_eq!(e.handle(&mut r, "ask partof engine piston"), "ok true");
        // Strictness: a concept neither subsumes itself nor is its own part.
        assert_eq!(e.handle(&mut r, "ask isa engine engine"), "ok false");
        // Concept names were bound in the shared dictionary, so generic
        // graph verbs see the KB's IS-A relation too.
        assert_eq!(e.handle(&mut r, "reaches engine forged"), "ok true");
        // Retraction cascades: the derived arc falls with its support, and
        // the removal is forwarded so the service agrees.
        assert_eq!(e.handle(&mut r, "retract partof engine piston"), "ok removed");
        assert_eq!(e.handle(&mut r, "ask isa engine forged"), "ok false");
        assert_eq!(e.handle(&mut r, "ask partof engine piston"), "ok false");
        e.close();
    }

    #[test]
    fn kb_verbs_fail_closed_on_bad_input() {
        let (e, mut r) = engine();
        assert!(e.handle(&mut r, "ask isa ghost gone").starts_with("err unknown-key"));
        assert!(e.handle(&mut r, "ask friendof a b").starts_with("err bad-request"));
        assert!(e
            .handle(&mut r, "define-rule broken: isa(X, Y) :- ")
            .starts_with("err bad-request"));
        assert!(e
            .handle(&mut r, "retract isa never asserted")
            .starts_with("err unknown-key"));
        assert_eq!(e.handle(&mut r, "assert isa a b"), "ok applied");
        // Both concepts exist, but isa(b, a) was never a base fact.
        assert!(e.handle(&mut r, "retract isa b a").starts_with("err bad-request"));
        assert_eq!(e.handle(&mut r, "assert isa b a"), "ok rejected"); // cycle
        assert_eq!(e.handle(&mut r, "assert isa a b"), "ok noop");
        e.close();
        assert!(e.handle(&mut r, "assert isa c d").starts_with("err closed"));
    }

    #[test]
    fn closed_engine_rejects_writes_but_serves_reads() {
        let (e, mut r) = engine();
        assert_eq!(e.handle(&mut r, "add-node leaf n2"), "ok added");
        assert_eq!(e.handle(&mut r, "shutdown"), "ok bye");
        assert!(e.is_closed());
        assert!(e.handle(&mut r, "add-edge n0 n2").starts_with("err closed"));
        assert!(e.handle(&mut r, "add-node more n0").starts_with("err closed"));
        assert!(e.handle(&mut r, "remove-node n0").starts_with("err closed"));
        // The admitted write was drained and published by close().
        assert_eq!(e.handle(&mut r, "reaches n0 leaf"), "ok true");
        e.close(); // idempotent
    }
}
