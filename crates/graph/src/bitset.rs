//! A fixed-capacity bitset.
//!
//! The paper's Alg1 keeps, for every node, the set of all its predecessors
//! and repeatedly unions and sizes those sets. A flat `u64`-word bitset makes
//! those operations cache-friendly and branch-free; this module implements
//! one from scratch (the workspace deliberately avoids pulling in a bitset
//! crate).

use std::fmt;

/// A set of `usize` values in `0..capacity`, stored one bit per value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
        }
    }

    /// Capacity this set was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `bit`. Returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        debug_assert!(bit < self.capacity, "bit {bit} out of capacity {}", self.capacity);
        let (w, mask) = (bit / WORD_BITS, 1u64 << (bit % WORD_BITS));
        let newly = self.words[w] & mask == 0;
        self.words[w] |= mask;
        newly
    }

    /// Removes `bit`. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        debug_assert!(bit < self.capacity);
        let (w, mask) = (bit / WORD_BITS, 1u64 << (bit % WORD_BITS));
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Tests membership.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        if bit >= self.capacity {
            return false;
        }
        self.words[bit / WORD_BITS] & (1u64 << (bit % WORD_BITS)) != 0
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union: `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection: `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self -= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether `self` and `other` share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_ix: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set sized to the largest value + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(cap);
        for v in values {
            set.insert(v);
        }
        set
    }
}

/// Iterator over set bits, ascending.
pub struct Ones<'a> {
    words: &'a [u64],
    word_ix: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_ix += 1;
            if self.word_ix >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_ix];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_ix * WORD_BITS + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129), "double insert reports not-new");
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10_000));
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(200);
        for v in [5usize, 199, 64, 65, 0] {
            s.insert(v);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 64, 65, 199]);
    }

    #[test]
    fn union_intersection_difference() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for v in [1usize, 2, 3, 70] {
            a.insert(v);
        }
        for v in [2usize, 3, 4, 71] {
            b.insert(v);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 70, 71]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 70]);
    }

    #[test]
    fn subset_and_intersects() {
        let mut a = BitSet::new(64);
        let mut b = BitSet::new(64);
        a.insert(3);
        b.insert(3);
        b.insert(9);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.intersects(&b));
        a.clear();
        assert!(!a.intersects(&b));
        assert!(a.is_empty());
    }

    #[test]
    fn from_iter_sizes_to_max() {
        let s: BitSet = [3usize, 10, 7].into_iter().collect();
        assert_eq!(s.capacity(), 11);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_set_iterates_nothing() {
        let s = BitSet::new(0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.len(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn union_capacity_mismatch_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(20);
        a.union_with(&b);
    }
}
