//! Directed-graph substrate for the `interval-tc` workspace.
//!
//! This crate provides everything the transitive-closure layers need from a
//! graph library, implemented from scratch:
//!
//! * [`DiGraph`] — a growable directed graph with both out- and in-adjacency,
//!   the base representation for binary relations (paper §3: "a binary
//!   relation ... corresponds to a graph").
//! * [`BitSet`] — a fixed-capacity bitset used for predecessor sets in the
//!   paper's Alg1 and for reachability baselines.
//! * [`topo`] — topological sorting and cycle detection.
//! * [`scc`] — Tarjan's strongly-connected components and graph condensation
//!   (paper §3: "cyclic graphs [are handled] by collapsing strongly connected
//!   components into one node").
//! * [`traverse`] — DFS/BFS iterators and reachable-set computation (the
//!   "pointer chasing" the paper wants to avoid at query time, and the ground
//!   truth our tests compare against).
//! * [`generators`] — the synthetic workloads of §3.3: random DAGs with a
//!   specified average out-degree (following Agrawal & Jagadish, VLDB'87),
//!   trees, the bipartite worst cases of Fig 3.6/3.7, layered DAGs, and the
//!   exhaustive small-DAG enumeration behind Fig 3.12.
//! * [`dot`] / [`edgelist`] — Graphviz export and a plain-text edge-list
//!   format for getting graphs in and out.
//!
//! # Example
//!
//! ```
//! use tc_graph::{DiGraph, NodeId};
//!
//! let mut g = DiGraph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! let c = g.add_node();
//! g.add_edge(a, b);
//! g.add_edge(b, c);
//! assert!(tc_graph::topo::is_acyclic(&g));
//! let order = tc_graph::topo::topo_sort(&g).unwrap();
//! assert_eq!(order[0], a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bitset;
mod digraph;
mod node;

pub mod dot;
pub mod edgelist;
pub mod generators;
pub mod metrics;
pub mod scc;
pub mod topo;
pub mod traverse;

pub use bitset::BitSet;
pub use digraph::{DiGraph, EdgeKindError};
pub use node::NodeId;
