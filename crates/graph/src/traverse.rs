//! Graph traversal: DFS/BFS iterators and reachable-set computation.
//!
//! These are the "pointer chasing" primitives the paper wants to replace at
//! query time (§2.1). They serve three roles in this workspace: ground truth
//! for correctness tests, the on-the-fly baseline in `tc-baselines`, and
//! building blocks for closure construction.

use crate::{BitSet, DiGraph, NodeId};

/// Iterative depth-first traversal from a start node (preorder).
pub struct Dfs<'g> {
    graph: &'g DiGraph,
    stack: Vec<NodeId>,
    visited: BitSet,
}

impl<'g> Dfs<'g> {
    /// Starts a DFS at `start`. The start node itself is yielded first.
    pub fn new(graph: &'g DiGraph, start: NodeId) -> Self {
        let mut visited = BitSet::new(graph.node_count());
        visited.insert(start.index());
        Dfs {
            graph,
            stack: vec![start],
            visited,
        }
    }
}

impl Iterator for Dfs<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.stack.pop()?;
        // Push successors in reverse so the first successor is visited first.
        for &succ in self.graph.successors(node).iter().rev() {
            if self.visited.insert(succ.index()) {
                self.stack.push(succ);
            }
        }
        Some(node)
    }
}

/// Breadth-first traversal from a start node.
pub struct Bfs<'g> {
    graph: &'g DiGraph,
    queue: std::collections::VecDeque<NodeId>,
    visited: BitSet,
}

impl<'g> Bfs<'g> {
    /// Starts a BFS at `start`. The start node itself is yielded first.
    pub fn new(graph: &'g DiGraph, start: NodeId) -> Self {
        let mut visited = BitSet::new(graph.node_count());
        visited.insert(start.index());
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        Bfs { graph, queue, visited }
    }
}

impl Iterator for Bfs<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.queue.pop_front()?;
        for &succ in self.graph.successors(node) {
            if self.visited.insert(succ.index()) {
                self.queue.push_back(succ);
            }
        }
        Some(node)
    }
}

/// Computes the set of nodes reachable from `start` (including `start`
/// itself — the paper assumes "every node can reach itself").
pub fn reachable_set(g: &DiGraph, start: NodeId) -> BitSet {
    let mut visited = BitSet::new(g.node_count());
    let mut stack = vec![start];
    visited.insert(start.index());
    while let Some(node) = stack.pop() {
        for &succ in g.successors(node) {
            if visited.insert(succ.index()) {
                stack.push(succ);
            }
        }
    }
    visited
}

/// Whether a path `src →* dst` exists (reflexive: `reaches(g, v, v)` is
/// always true). This is the naive query the compressed closure replaces.
pub fn reaches(g: &DiGraph, src: NodeId, dst: NodeId) -> bool {
    if src == dst {
        return true;
    }
    let mut visited = BitSet::new(g.node_count());
    let mut stack = vec![src];
    visited.insert(src.index());
    while let Some(node) = stack.pop() {
        for &succ in g.successors(node) {
            if succ == dst {
                return true;
            }
            if visited.insert(succ.index()) {
                stack.push(succ);
            }
        }
    }
    false
}

/// Computes the reflexive transitive closure as one bitset row per node.
///
/// Works on any graph (cyclic included) by propagating rows in reverse
/// order of Tarjan component index; for the acyclic case this is a reverse
/// topological sweep, the standard O(n·m/64) dense-closure computation.
pub fn closure_rows(g: &DiGraph) -> Vec<BitSet> {
    let n = g.node_count();
    let scc = crate::scc::tarjan_scc(g);
    // Tarjan component indices are reverse-topological (sinks first), so
    // processing nodes in ascending component index sees successors first.
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_by_key(|v| scc.component_of(*v));

    let mut rows: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    // Within an SCC every member reaches every other; handle components as
    // units: compute the union row for the component, then assign.
    for comp in &scc.members {
        let mut row = BitSet::new(n);
        for &v in comp {
            row.insert(v.index());
        }
        for &v in comp {
            for &succ in g.successors(v) {
                if scc.component_of(succ) != scc.component_of(v) {
                    // Successor component already finished (smaller index).
                    row.insert(succ.index());
                    let succ_row = rows[succ.index()].clone();
                    row.union_with(&succ_row);
                }
            }
        }
        for &v in comp {
            rows[v.index()] = row.clone();
        }
    }
    rows
}

/// Number of arcs in the *irreflexive* transitive closure (the quantity the
/// paper's §3.3 storage plots report: "the number of successors at each
/// node").
pub fn closure_size(g: &DiGraph) -> usize {
    closure_rows(g)
        .iter()
        .map(|row| row.len() - 1) // subtract the reflexive self-bit
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn dfs_visits_all_reachable_once() {
        let g = diamond();
        let seen: Vec<NodeId> = Dfs::new(&g, NodeId(0)).collect();
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], NodeId(0));
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn dfs_respects_successor_order() {
        let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3)]);
        let seen: Vec<NodeId> = Dfs::new(&g, NodeId(0)).collect();
        assert_eq!(seen, vec![NodeId(0), NodeId(1), NodeId(3), NodeId(2)]);
    }

    #[test]
    fn bfs_visits_level_by_level() {
        let g = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)]);
        let seen: Vec<NodeId> = Bfs::new(&g, NodeId(0)).collect();
        assert_eq!(seen, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn reachable_set_includes_self() {
        let g = diamond();
        let set = reachable_set(&g, NodeId(1));
        assert!(set.contains(1));
        assert!(set.contains(3));
        assert!(!set.contains(0));
        assert!(!set.contains(2));
    }

    #[test]
    fn reaches_is_reflexive_and_transitive() {
        let g = diamond();
        assert!(reaches(&g, NodeId(2), NodeId(2)));
        assert!(reaches(&g, NodeId(0), NodeId(3)));
        assert!(!reaches(&g, NodeId(3), NodeId(0)));
        assert!(!reaches(&g, NodeId(1), NodeId(2)));
    }

    #[test]
    fn closure_rows_match_per_node_dfs() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (3, 1), (2, 4), (3, 4)]);
        let rows = closure_rows(&g);
        for v in g.nodes() {
            let direct = reachable_set(&g, v);
            assert_eq!(rows[v.index()], direct, "row mismatch for {v:?}");
        }
    }

    #[test]
    fn closure_rows_handle_cycles() {
        let g = DiGraph::from_edges([(0, 1), (1, 0), (1, 2)]);
        let rows = closure_rows(&g);
        assert!(rows[0].contains(0) && rows[0].contains(1) && rows[0].contains(2));
        assert!(rows[1].contains(0) && rows[1].contains(2));
        assert!(!rows[2].contains(0));
    }

    #[test]
    fn closure_size_counts_irreflexive_pairs() {
        // Chain 0->1->2: closure pairs are (0,1),(0,2),(1,2).
        let g = DiGraph::from_edges([(0, 1), (1, 2)]);
        assert_eq!(closure_size(&g), 3);
        assert_eq!(closure_size(&diamond()), 1 + 1 + 2 + 1); // 3->Ø,1->{3},2->{3},0->{1,2,3}
    }

    #[test]
    fn traversal_on_isolated_node() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        assert_eq!(Dfs::new(&g, a).collect::<Vec<_>>(), vec![a]);
        assert_eq!(Bfs::new(&g, a).collect::<Vec<_>>(), vec![a]);
        assert_eq!(reachable_set(&g, a).len(), 1);
    }
}
