//! Node identifiers.

use std::fmt;

/// A dense node identifier.
///
/// Nodes are numbered `0..n` in creation order, which lets every layer above
/// use plain `Vec`s indexed by node instead of hash maps. The type is a
/// newtype over `u32`, so graphs are limited to ~4.29 billion nodes — far
/// beyond anything the in-memory algorithms here can hold anyway.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `ix` does not fit in a `u32`.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        assert!(ix <= u32::MAX as usize, "node index {ix} overflows u32");
        NodeId(ix as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let n = NodeId::from_index(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n, NodeId(42));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId(7)), "7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn from_index_overflow_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(NodeId(0) < NodeId(u32::MAX));
    }
}
