//! Synthetic graph generators — the workloads of the paper's §3.3.
//!
//! The paper evaluates on "synthetic graphs ... Two primary parameters define
//! a database that can be represented as a graph: the average degree of a
//! node and the number of nodes", following Agrawal & Jagadish (VLDB 1987).
//! [`random_dag`] implements that model. The other generators build the
//! specific structures the paper discusses: trees (§3.1), the bipartite
//! worst case of Fig 3.6 and its hub rewrite of Fig 3.7, layered DAGs
//! resembling IS-A hierarchies (§2.1), and the exhaustive enumeration of all
//! small DAGs behind Fig 3.12.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{DiGraph, NodeId};

/// Configuration for the random-DAG model of \[AJ87\] as used in §3.3.
#[derive(Debug, Clone, Copy)]
pub struct RandomDagConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Average out-degree; the generator creates `round(nodes * degree)`
    /// distinct arcs.
    pub avg_out_degree: f64,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
}

/// Generates a random DAG with the given node count and average out-degree,
/// following the synthetic-database model of Agrawal & Jagadish (VLDB 1987)
/// that the paper's §3.3 uses.
///
/// Nodes are given a random topological order (a random permutation); each
/// node then draws (approximately) `avg_out_degree` arcs to targets chosen
/// uniformly among the nodes *after* it in that order. The per-node
/// out-degree budget is the defining property of the model: branching stays
/// near `d` throughout the order, so for `d ≳ 3` the transitive closure
/// covers most of the `n(n-1)/2` possible pairs — the paper observes
/// "442,000 \[of\] 495,000 possible arcs ... already present in the closure of
/// graph of degree 4". (A uniform-pairs model would starve late nodes of
/// out-arcs and produce far sparser closures.)
///
/// Nodes near the end of the order have fewer than `d` possible targets and
/// are capped; the realized average degree is therefore slightly below the
/// requested one, exactly as in the original model.
pub fn random_dag(cfg: RandomDagConfig) -> DiGraph {
    let n = cfg.nodes;
    assert!(n >= 1, "need at least one node");
    assert!(cfg.avg_out_degree >= 0.0, "degree must be non-negative");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Random topological order: perm[pos] = node at that position.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut rng);

    let base = cfg.avg_out_degree.floor() as usize;
    let frac = cfg.avg_out_degree - base as f64;

    let mut g = DiGraph::with_nodes(n);
    for pos in 0..n {
        let available = n - 1 - pos;
        let mut want = base + usize::from(frac > 0.0 && rng.random_bool(frac));
        want = want.min(available);
        let mut added = 0usize;
        let mut attempts = 0usize;
        // Rejection sampling of distinct later positions; the attempt cap
        // only matters when `want` is close to `available`.
        while added < want && attempts < 20 * want + 50 {
            attempts += 1;
            let target = rng.random_range(pos + 1..n);
            if g.add_edge(NodeId(perm[pos]), NodeId(perm[target])) {
                added += 1;
            }
        }
    }
    g
}

/// Generates a uniformly random directed tree on `n` nodes with arcs from
/// parents to children. Node 0 is the root; the parent of node `i > 0` is
/// drawn uniformly from `0..i`, giving the "random recursive tree" model.
pub fn random_tree(n: usize, seed: u64) -> DiGraph {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::with_nodes(n);
    for i in 1..n {
        let parent = rng.random_range(0..i);
        g.add_edge(NodeId::from_index(parent), NodeId::from_index(i));
    }
    g
}

/// Generates a complete `branching`-ary tree of the given `depth`
/// (depth 0 = a single root). Arcs run from parents to children.
pub fn balanced_tree(branching: usize, depth: usize) -> DiGraph {
    assert!(branching >= 1);
    let mut g = DiGraph::new();
    let root = g.add_node();
    let mut frontier = vec![root];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * branching);
        for &parent in &frontier {
            for _ in 0..branching {
                let child = g.add_node();
                g.add_edge(parent, child);
                next.push(child);
            }
        }
        frontier = next;
    }
    g
}

/// A simple chain `0 -> 1 -> ... -> n-1`.
pub fn chain(n: usize) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId::from_index(i - 1), NodeId::from_index(i));
    }
    g
}

/// The bipartite worst case of Fig 3.6: `top` source nodes each with arcs to
/// all of `bottom` sink nodes. With `n = top + bottom` and `top = bottom =
/// (n-1)/2 + …` the compressed closure needs Θ(n²/4) intervals.
///
/// Returned layout: nodes `0..top` are the sources, `top..top+bottom` the
/// sinks.
pub fn bipartite_worst(top: usize, bottom: usize) -> DiGraph {
    let mut g = DiGraph::with_nodes(top + bottom);
    for s in 0..top {
        for t in 0..bottom {
            g.add_edge(NodeId::from_index(s), NodeId::from_index(top + t));
        }
    }
    g
}

/// The Fig 3.7 rewrite of [`bipartite_worst`]: the same reachability routed
/// through a single intermediary hub, dropping the compressed closure back
/// to O(n) intervals.
///
/// Layout: nodes `0..top` are sources, node `top` is the hub, nodes
/// `top+1 ..= top+bottom` the sinks.
pub fn bipartite_with_hub(top: usize, bottom: usize) -> DiGraph {
    let mut g = DiGraph::with_nodes(top + bottom + 1);
    let hub = NodeId::from_index(top);
    for s in 0..top {
        g.add_edge(NodeId::from_index(s), hub);
    }
    for t in 0..bottom {
        g.add_edge(hub, NodeId::from_index(top + 1 + t));
    }
    g
}

/// A layered DAG shaped like the IS-A hierarchies of §2.1: `layers` levels of
/// `width` nodes each; every node gets `parents` arcs from distinct random
/// nodes of the previous layer. Level 0 nodes are roots.
pub fn layered_dag(layers: usize, width: usize, parents: usize, seed: u64) -> DiGraph {
    assert!(layers >= 1 && width >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::with_nodes(layers * width);
    for layer in 1..layers {
        for w in 0..width {
            let node = NodeId::from_index(layer * width + w);
            let k = parents.min(width);
            // Sample k distinct parents from the previous layer.
            let mut choices: Vec<usize> = (0..width).collect();
            choices.shuffle(&mut rng);
            for &p in choices.iter().take(k) {
                g.add_edge(NodeId::from_index((layer - 1) * width + p), node);
            }
        }
    }
    g
}

/// A layered DAG that is *hostile* to interval compression: every node
/// draws `degree` arcs from nodes scattered across **all** earlier layers,
/// not just the previous one. Long-range scattered parents make each
/// node's successor set a fragmented subset of the postorder line, so
/// per-node interval counts grow toward the successor count instead of
/// collapsing into a few runs — the regime where the hybrid oracle's
/// bitset rows beat interval rows (ROADMAP item 4).
pub fn dense_layered(layers: usize, width: usize, degree: usize, seed: u64) -> DiGraph {
    assert!(layers >= 1 && width >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::with_nodes(layers * width);
    for layer in 1..layers {
        let pool = layer * width; // every node of every earlier layer
        for w in 0..width {
            let node = NodeId::from_index(layer * width + w);
            let want = degree.min(pool);
            let mut added = 0usize;
            let mut attempts = 0usize;
            while added < want && attempts < 20 * want + 50 {
                attempts += 1;
                let p = rng.random_range(0..pool);
                if g.add_edge(NodeId::from_index(p), node) {
                    added += 1;
                }
            }
        }
    }
    g
}

/// `chains` parallel chains of `chain_len` nodes plus `cross` random
/// forward cross-links between distinct chains — a high-*path-width* DAG.
/// Node `c * chain_len + j` is position `j` of chain `c`; cross arcs run
/// from `(c, j)` to `(c', j + 1)` with `c' != c`. Any tree cover must pick
/// one chain per node, so the other chains' members land as scattered
/// singleton intervals: interval counts scale with `chains`, which is
/// exactly the hostile regime the hybrid oracle's threshold targets.
pub fn long_path_width(chains: usize, chain_len: usize, cross: usize, seed: u64) -> DiGraph {
    assert!(chains >= 1 && chain_len >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::with_nodes(chains * chain_len);
    let at = |c: usize, j: usize| NodeId::from_index(c * chain_len + j);
    for c in 0..chains {
        for j in 1..chain_len {
            g.add_edge(at(c, j - 1), at(c, j));
        }
    }
    if chains >= 2 && chain_len >= 2 {
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < cross && attempts < 20 * cross + 50 {
            attempts += 1;
            let c = rng.random_range(0..chains);
            let j = rng.random_range(0..chain_len - 1);
            let mut c2 = rng.random_range(0..chains - 1);
            if c2 >= c {
                c2 += 1;
            }
            if g.add_edge(at(c, j), at(c2, j + 1)) {
                added += 1;
            }
        }
    }
    g
}

/// The arcs of `g` in a seeded random order — the *random-insertion-order*
/// adversary. Replaying these arcs one by one through the §4 incremental
/// update path (instead of a bulk build) denies the tree cover its
/// topological sweep, so labels accumulate far more fragments than the
/// same graph built at once. Node ids are unchanged; only arc order moves.
pub fn shuffled_edges(g: &DiGraph, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    edges.shuffle(&mut StdRng::seed_from_u64(seed));
    edges
}

/// Total number of distinct DAGs over `n` labeled nodes **with the fixed
/// topological order 0 < 1 < … < n-1**, i.e. `2^(n(n-1)/2)` upper-triangular
/// adjacency matrices. This is the Fig 3.12 enumeration universe.
///
/// # Panics
///
/// Panics for `n > 11` (the mask no longer fits in a `u64`).
pub fn dag_mask_count(n: usize) -> u64 {
    let bits = n * (n - 1) / 2;
    assert!(bits < 64, "mask universe for n={n} exceeds u64");
    1u64 << bits
}

/// Decodes a Fig 3.12 enumeration mask into a graph.
///
/// Bit `k` of `mask` corresponds to the k-th pair `(i, j)`, `i < j`, in
/// lexicographic order; a set bit adds the arc `i -> j`.
pub fn dag_from_mask(n: usize, mask: u64) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    let mut bit = 0;
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            if mask & (1u64 << bit) != 0 {
                g.add_edge(NodeId(i), NodeId(j));
            }
            bit += 1;
        }
    }
    g
}

/// Iterator over every `n`-node DAG mask (see [`dag_from_mask`]).
pub fn enumerate_dag_masks(n: usize) -> impl Iterator<Item = u64> {
    0..dag_mask_count(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::is_acyclic;

    #[test]
    fn random_dag_has_requested_size_and_is_acyclic() {
        let g = random_dag(RandomDagConfig {
            nodes: 200,
            avg_out_degree: 3.0,
            seed: 7,
        });
        assert_eq!(g.node_count(), 200);
        // Realized degree is slightly under the request (tail nodes run out
        // of targets) but close.
        assert!(g.edge_count() >= 560 && g.edge_count() <= 600, "{}", g.edge_count());
        assert!(is_acyclic(&g));
        assert!(g.check_consistency());
    }

    #[test]
    fn random_dag_keeps_branching_through_the_order() {
        // The defining property of the [AJ87] model: a degree-4 graph's
        // closure covers the large majority of all possible pairs (the paper
        // measured 442k of 495k at n=1000).
        let g = random_dag(RandomDagConfig {
            nodes: 300,
            avg_out_degree: 4.0,
            seed: 5,
        });
        let possible = 300 * 299 / 2;
        let closure = crate::traverse::closure_size(&g);
        assert!(
            closure as f64 > 0.35 * possible as f64,
            "closure {closure} of {possible}"
        );
    }

    #[test]
    fn random_dag_fractional_degree() {
        let g = random_dag(RandomDagConfig {
            nodes: 1000,
            avg_out_degree: 1.5,
            seed: 11,
        });
        let realized = g.average_out_degree();
        assert!((1.3..=1.6).contains(&realized), "realized degree {realized}");
    }

    #[test]
    fn random_dag_is_deterministic_per_seed() {
        let cfg = RandomDagConfig {
            nodes: 50,
            avg_out_degree: 2.0,
            seed: 42,
        };
        let a: Vec<_> = random_dag(cfg).edges().collect();
        let b: Vec<_> = random_dag(cfg).edges().collect();
        assert_eq!(a, b);
        let c: Vec<_> = random_dag(RandomDagConfig { seed: 43, ..cfg }).edges().collect();
        assert_ne!(a, c, "different seeds should give different graphs");
    }

    #[test]
    fn random_dag_dense_regime_caps_at_max() {
        // Requesting more arcs than n(n-1)/2 must clamp, not loop forever.
        let g = random_dag(RandomDagConfig {
            nodes: 20,
            avg_out_degree: 100.0,
            seed: 1,
        });
        assert!(g.edge_count() <= 20 * 19 / 2);
        assert!(g.edge_count() > 150, "near-complete: {}", g.edge_count());
        assert!(is_acyclic(&g));
    }

    #[test]
    fn random_dag_degree_zero() {
        let g = random_dag(RandomDagConfig {
            nodes: 10,
            avg_out_degree: 0.0,
            seed: 1,
        });
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn random_tree_is_a_tree() {
        let g = random_tree(100, 3);
        assert_eq!(g.edge_count(), 99);
        assert!(is_acyclic(&g));
        // Every non-root has exactly one parent.
        assert_eq!(g.in_degree(NodeId(0)), 0);
        for i in 1..100 {
            assert_eq!(g.in_degree(NodeId(i)), 1);
        }
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(3, 2); // 1 + 3 + 9 nodes
        assert_eq!(g.node_count(), 13);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.out_degree(NodeId(0)), 3);
        assert_eq!(g.leaves().count(), 9);
    }

    #[test]
    fn chain_shape() {
        let g = chain(5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(NodeId(3), NodeId(4)));
    }

    #[test]
    fn bipartite_worst_shape() {
        let g = bipartite_worst(3, 4);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        for s in 0..3 {
            assert_eq!(g.out_degree(NodeId(s)), 4);
        }
    }

    #[test]
    fn bipartite_hub_preserves_reachability() {
        use crate::traverse::reaches;
        let flat = bipartite_worst(3, 4);
        let hub = bipartite_with_hub(3, 4);
        // Source s reaches sink t in both versions (sink ids shift by one).
        for s in 0..3u32 {
            for t in 0..4u32 {
                assert!(reaches(&flat, NodeId(s), NodeId(3 + t)));
                assert!(reaches(&hub, NodeId(s), NodeId(4 + t)));
            }
        }
    }

    #[test]
    fn layered_dag_has_expected_structure() {
        let g = layered_dag(4, 10, 2, 9);
        assert_eq!(g.node_count(), 40);
        assert!(is_acyclic(&g));
        // Nodes below layer 0 have in-degree == parents.
        for i in 10..40 {
            assert_eq!(g.in_degree(NodeId(i)), 2);
        }
    }

    #[test]
    fn dense_layered_is_acyclic_and_scattered() {
        let g = dense_layered(5, 20, 4, 7);
        assert_eq!(g.node_count(), 100);
        assert!(is_acyclic(&g));
        // Parents come from *any* earlier layer: at least one arc must skip
        // a layer (overwhelmingly likely at this size/seed).
        let skips = g
            .edges()
            .filter(|(s, d)| d.index() / 20 > s.index() / 20 + 1)
            .count();
        assert!(skips > 0, "no layer-skipping arcs");
        for i in 20..100 {
            assert!(g.in_degree(NodeId(i)) >= 1);
        }
    }

    #[test]
    fn long_path_width_has_chains_and_cross_links() {
        let g = long_path_width(4, 10, 12, 3);
        assert_eq!(g.node_count(), 40);
        assert!(is_acyclic(&g));
        // Chain arcs all present.
        for c in 0..4 {
            for j in 1..10 {
                assert!(g.has_edge(NodeId((c * 10 + j - 1) as u32), NodeId((c * 10 + j) as u32)));
            }
        }
        assert_eq!(g.edge_count(), 4 * 9 + 12);
        // Degenerate shapes stay valid.
        assert_eq!(long_path_width(1, 5, 10, 0).edge_count(), 4);
    }

    #[test]
    fn shuffled_edges_permutes_without_loss() {
        let g = layered_dag(3, 5, 2, 11);
        let shuffled = shuffled_edges(&g, 1);
        assert_eq!(shuffled.len(), g.edge_count());
        let mut sorted = shuffled.clone();
        sorted.sort();
        let mut original: Vec<(NodeId, NodeId)> = g.edges().collect();
        original.sort();
        assert_eq!(sorted, original);
        // Seeded: same seed, same order; different seed, (almost surely) not.
        assert_eq!(shuffled_edges(&g, 1), shuffled);
        assert_ne!(shuffled_edges(&g, 2), shuffled);
    }

    #[test]
    fn dag_mask_roundtrip() {
        assert_eq!(dag_mask_count(3), 8);
        // Mask with all bits set on 3 nodes: arcs (0,1),(0,2),(1,2).
        let g = dag_from_mask(3, 0b111);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(1), NodeId(2)));
        // Empty mask: no edges.
        assert_eq!(dag_from_mask(3, 0).edge_count(), 0);
    }

    #[test]
    fn enumerate_small_all_acyclic() {
        for mask in enumerate_dag_masks(4) {
            assert!(is_acyclic(&dag_from_mask(4, mask)));
        }
        assert_eq!(enumerate_dag_masks(4).count(), 64);
    }
}
