//! Plain-text edge-list serialization.
//!
//! Format: one `src dst` pair per line, `#`-prefixed comment lines and blank
//! lines ignored. This is the least-common-denominator interchange format
//! for reachability datasets, so graphs can be moved in and out of the
//! workspace tools.

use std::fmt;

use crate::{DiGraph, NodeId};

/// Error from parsing an edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number where the error occurred.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edge list line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an edge list from text.
pub fn parse(text: &str) -> Result<DiGraph, ParseError> {
    let mut edges = Vec::new();
    for (ix, line) in text.lines().enumerate() {
        let line_no = ix + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let src = parse_field(parts.next(), line_no, "missing source")?;
        let dst = parse_field(parts.next(), line_no, "missing destination")?;
        if let Some(extra) = parts.next() {
            return Err(ParseError {
                line: line_no,
                message: format!("unexpected trailing token {extra:?}"),
            });
        }
        edges.push((src, dst));
    }
    Ok(DiGraph::from_edges(edges))
}

fn parse_field(field: Option<&str>, line: usize, missing: &str) -> Result<u32, ParseError> {
    let field = field.ok_or_else(|| ParseError {
        line,
        message: missing.to_string(),
    })?;
    field.parse::<u32>().map_err(|e| ParseError {
        line,
        message: format!("invalid node id {field:?}: {e}"),
    })
}

/// Serializes a graph to edge-list text, preceded by a comment header with
/// node and edge counts.
pub fn write(g: &DiGraph) -> String {
    let mut out = format!("# nodes={} edges={}\n", g.node_count(), g.edge_count());
    for (s, d) in g.edges() {
        out.push_str(&format!("{s} {d}\n"));
    }
    out
}

/// Convenience: does the serialized form of `g` parse back to the same edge
/// set? Isolated trailing nodes (with ids above the largest endpoint) are
/// not representable in this format, so this returns `false` for them.
pub fn roundtrips(g: &DiGraph) -> bool {
    match parse(&write(g)) {
        Ok(parsed) => {
            let mut a: Vec<(NodeId, NodeId)> = g.edges().collect();
            let mut b: Vec<(NodeId, NodeId)> = parsed.edges().collect();
            a.sort();
            b.sort();
            a == b && parsed.node_count() <= g.node_count()
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let g = parse("0 1\n1 2\n").unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = parse("# header\n\n0 1\n   \n# tail\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = parse("0 1\nbogus 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn missing_destination() {
        let err = parse("7\n").unwrap_err();
        assert_eq!(err.message, "missing destination");
    }

    #[test]
    fn trailing_token_rejected() {
        let err = parse("0 1 2\n").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn roundtrip() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 2)]);
        assert!(roundtrips(&g));
        let text = write(&g);
        assert!(text.starts_with("# nodes=3 edges=3"));
    }
}
