//! Topological sorting and cycle detection.
//!
//! The compression scheme of the paper processes nodes "in the reverse
//! topological order" (§3.2) and Alg1 runs "in topological order"; this
//! module provides both orders plus cycle detection with an explicit cycle
//! witness for error reporting.

use std::fmt;

use crate::{DiGraph, NodeId};

/// Error carrying one directed cycle found in a graph that was expected to be
/// acyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Nodes along the cycle, in order; the last node has an arc back to the
    /// first.
    pub cycle: Vec<NodeId>,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph contains a cycle: ")?;
        for (i, n) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, " -> {}", self.cycle[0])
    }
}

impl std::error::Error for CycleError {}

/// Computes a topological order using Kahn's algorithm.
///
/// Returns the nodes in an order where every arc goes from an earlier to a
/// later position. On a cyclic graph, returns a [`CycleError`] with a cycle
/// witness.
pub fn topo_sort(g: &DiGraph) -> Result<Vec<NodeId>, CycleError> {
    let n = g.node_count();
    let mut in_deg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId::from_index(i))).collect();
    let mut queue: Vec<NodeId> = g.roots().collect();
    let mut order = Vec::with_capacity(n);
    while let Some(node) = queue.pop() {
        order.push(node);
        for &succ in g.successors(node) {
            in_deg[succ.index()] -= 1;
            if in_deg[succ.index()] == 0 {
                queue.push(succ);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(CycleError {
            cycle: find_cycle(g).expect("Kahn found fewer nodes, a cycle must exist"),
        })
    }
}

/// Returns `true` iff the graph has no directed cycle.
pub fn is_acyclic(g: &DiGraph) -> bool {
    topo_sort(g).is_ok()
}

/// Returns the position of each node in a topological order: `rank[v]` is the
/// index of `v` in `topo_sort(g)`.
pub fn topo_rank(g: &DiGraph) -> Result<Vec<usize>, CycleError> {
    let order = topo_sort(g)?;
    let mut rank = vec![0usize; g.node_count()];
    for (ix, node) in order.iter().enumerate() {
        rank[node.index()] = ix;
    }
    Ok(rank)
}

/// Finds one directed cycle, if any, via iterative DFS with a three-color
/// scheme.
pub fn find_cycle(g: &DiGraph) -> Option<Vec<NodeId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = g.node_count();
    let mut color = vec![Color::White; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];

    for start in g.nodes() {
        if color[start.index()] != Color::White {
            continue;
        }
        // Stack of (node, next-successor-index) frames.
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
        color[start.index()] = Color::Gray;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succ = g.successors(node);
            if *next < succ.len() {
                let child = succ[*next];
                *next += 1;
                match color[child.index()] {
                    Color::White => {
                        parent[child.index()] = Some(node);
                        color[child.index()] = Color::Gray;
                        stack.push((child, 0));
                    }
                    Color::Gray => {
                        // Found a back edge node -> child: unwind the parent
                        // chain from `node` up to `child`.
                        let mut cycle = vec![node];
                        let mut cur = node;
                        while cur != child {
                            cur = parent[cur.index()].expect("gray node must have a parent");
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[node.index()] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

/// A DFS-based topological order (reverse postorder). Provided in addition to
/// Kahn's algorithm because tests cross-check the two and some callers want
/// the DFS tie-breaking.
pub fn topo_sort_dfs(g: &DiGraph) -> Result<Vec<NodeId>, CycleError> {
    if let Some(cycle) = find_cycle(g) {
        return Err(CycleError { cycle });
    }
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    for start in g.nodes() {
        if visited[start.index()] {
            continue;
        }
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
        visited[start.index()] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succ = g.successors(node);
            if *next < succ.len() {
                let child = succ[*next];
                *next += 1;
                if !visited[child.index()] {
                    visited[child.index()] = true;
                    stack.push((child, 0));
                }
            } else {
                postorder.push(node);
                stack.pop();
            }
        }
    }
    postorder.reverse();
    Ok(postorder)
}

/// Validates that `order` is a topological order of `g`.
pub fn is_topo_order(g: &DiGraph, order: &[NodeId]) -> bool {
    if order.len() != g.node_count() {
        return false;
    }
    let mut pos = vec![usize::MAX; g.node_count()];
    for (ix, node) in order.iter().enumerate() {
        if pos[node.index()] != usize::MAX {
            return false; // duplicate
        }
        pos[node.index()] = ix;
    }
    g.edges().all(|(s, d)| pos[s.index()] < pos[d.index()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn kahn_produces_valid_order() {
        let g = diamond();
        let order = topo_sort(&g).unwrap();
        assert!(is_topo_order(&g, &order));
    }

    #[test]
    fn dfs_produces_valid_order() {
        let g = diamond();
        let order = topo_sort_dfs(&g).unwrap();
        assert!(is_topo_order(&g, &order));
    }

    #[test]
    fn cycle_detected_with_witness() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let err = topo_sort(&g).unwrap_err();
        let c = &err.cycle;
        assert!(c.len() >= 2);
        // Every consecutive pair (and the wrap-around) must be a real arc.
        for w in c.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "cycle edge {:?}->{:?} missing", w[0], w[1]);
        }
        assert!(g.has_edge(*c.last().unwrap(), c[0]));
        assert!(!is_acyclic(&g));
        let msg = err.to_string();
        assert!(msg.contains("cycle"));
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        assert!(find_cycle(&diamond()).is_none());
        assert!(is_acyclic(&diamond()));
    }

    #[test]
    fn empty_and_singleton() {
        let g = DiGraph::new();
        assert_eq!(topo_sort(&g).unwrap(), vec![]);
        let mut g = DiGraph::new();
        let a = g.add_node();
        assert_eq!(topo_sort(&g).unwrap(), vec![a]);
    }

    #[test]
    fn rank_matches_order() {
        let g = diamond();
        let order = topo_sort(&g).unwrap();
        let rank = topo_rank(&g).unwrap();
        for (ix, node) in order.iter().enumerate() {
            assert_eq!(rank[node.index()], ix);
        }
    }

    #[test]
    fn is_topo_order_rejects_bad_orders() {
        let g = diamond();
        assert!(!is_topo_order(&g, &[NodeId(3), NodeId(1), NodeId(2), NodeId(0)]));
        assert!(!is_topo_order(&g, &[NodeId(0), NodeId(1), NodeId(2)])); // wrong length
        assert!(!is_topo_order(&g, &[NodeId(0), NodeId(0), NodeId(1), NodeId(2)])); // duplicate
    }

    #[test]
    fn disconnected_components_sorted() {
        let g = DiGraph::from_edges([(0, 1), (2, 3)]);
        let order = topo_sort(&g).unwrap();
        assert!(is_topo_order(&g, &order));
    }

    #[test]
    fn two_node_cycle() {
        let g = DiGraph::from_edges([(0, 1), (1, 0)]);
        let err = topo_sort(&g).unwrap_err();
        assert_eq!(err.cycle.len(), 2);
    }
}
