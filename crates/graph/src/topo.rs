//! Topological sorting and cycle detection.
//!
//! The compression scheme of the paper processes nodes "in the reverse
//! topological order" (§3.2) and Alg1 runs "in topological order"; this
//! module provides both orders plus cycle detection with an explicit cycle
//! witness for error reporting.

use std::fmt;

use crate::{DiGraph, NodeId};

/// Error carrying one directed cycle found in a graph that was expected to be
/// acyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Nodes along the cycle, in order; the last node has an arc back to the
    /// first.
    pub cycle: Vec<NodeId>,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph contains a cycle: ")?;
        for (i, n) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, " -> {}", self.cycle[0])
    }
}

impl std::error::Error for CycleError {}

/// Computes a topological order using Kahn's algorithm.
///
/// Returns the nodes in an order where every arc goes from an earlier to a
/// later position. On a cyclic graph, returns a [`CycleError`] with a cycle
/// witness.
pub fn topo_sort(g: &DiGraph) -> Result<Vec<NodeId>, CycleError> {
    let n = g.node_count();
    let mut in_deg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId::from_index(i))).collect();
    let mut queue: Vec<NodeId> = g.roots().collect();
    let mut order = Vec::with_capacity(n);
    while let Some(node) = queue.pop() {
        order.push(node);
        for &succ in g.successors(node) {
            in_deg[succ.index()] -= 1;
            if in_deg[succ.index()] == 0 {
                queue.push(succ);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(CycleError {
            cycle: find_cycle(g).expect("Kahn found fewer nodes, a cycle must exist"),
        })
    }
}

/// Returns `true` iff the graph has no directed cycle.
pub fn is_acyclic(g: &DiGraph) -> bool {
    topo_sort(g).is_ok()
}

/// Returns the position of each node in a topological order: `rank[v]` is the
/// index of `v` in `topo_sort(g)`.
pub fn topo_rank(g: &DiGraph) -> Result<Vec<usize>, CycleError> {
    let order = topo_sort(g)?;
    let mut rank = vec![0usize; g.node_count()];
    for (ix, node) in order.iter().enumerate() {
        rank[node.index()] = ix;
    }
    Ok(rank)
}

/// Finds one directed cycle, if any, via iterative DFS with a three-color
/// scheme.
pub fn find_cycle(g: &DiGraph) -> Option<Vec<NodeId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = g.node_count();
    let mut color = vec![Color::White; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];

    for start in g.nodes() {
        if color[start.index()] != Color::White {
            continue;
        }
        // Stack of (node, next-successor-index) frames.
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
        color[start.index()] = Color::Gray;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succ = g.successors(node);
            if *next < succ.len() {
                let child = succ[*next];
                *next += 1;
                match color[child.index()] {
                    Color::White => {
                        parent[child.index()] = Some(node);
                        color[child.index()] = Color::Gray;
                        stack.push((child, 0));
                    }
                    Color::Gray => {
                        // Found a back edge node -> child: unwind the parent
                        // chain from `node` up to `child`.
                        let mut cycle = vec![node];
                        let mut cur = node;
                        while cur != child {
                            cur = parent[cur.index()].expect("gray node must have a parent");
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[node.index()] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

/// A DFS-based topological order (reverse postorder). Provided in addition to
/// Kahn's algorithm because tests cross-check the two and some callers want
/// the DFS tie-breaking.
pub fn topo_sort_dfs(g: &DiGraph) -> Result<Vec<NodeId>, CycleError> {
    if let Some(cycle) = find_cycle(g) {
        return Err(CycleError { cycle });
    }
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    for start in g.nodes() {
        if visited[start.index()] {
            continue;
        }
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
        visited[start.index()] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succ = g.successors(node);
            if *next < succ.len() {
                let child = succ[*next];
                *next += 1;
                if !visited[child.index()] {
                    visited[child.index()] = true;
                    stack.push((child, 0));
                }
            } else {
                postorder.push(node);
                stack.pop();
            }
        }
    }
    postorder.reverse();
    Ok(postorder)
}

/// A topological *level decomposition* of a DAG.
///
/// The level of a node is the length of the longest directed path from it to
/// a sink: sinks sit at level 0, and for every arc `(p, q)` the source lies
/// at a strictly higher level than the target (`level(p) >= level(q) + 1`).
/// Consequently no two nodes on the same level are connected by an arc —
/// they are mutually independent, which is what makes levels the unit of
/// parallelism for the closure-construction sweeps: a level's nodes can be
/// processed concurrently once all lower (for reverse-topological
/// propagation) or higher (for Alg1's forward sweep) levels are complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levels {
    /// `level[v]` = topological level of node `v`.
    level: Vec<usize>,
    /// `buckets[l]` = nodes at level `l`, ascending by id.
    buckets: Vec<Vec<NodeId>>,
}

impl Levels {
    /// The level of `node`.
    #[inline]
    pub fn level_of(&self, node: NodeId) -> usize {
        self.level[node.index()]
    }

    /// Number of distinct levels (0 for the empty graph). The longest path
    /// in the graph has `height() - 1` arcs.
    pub fn height(&self) -> usize {
        self.buckets.len()
    }

    /// Number of nodes across all levels.
    pub fn node_count(&self) -> usize {
        self.level.len()
    }

    /// The nodes at level `l`, in ascending id order.
    #[inline]
    pub fn nodes_at(&self, l: usize) -> &[NodeId] {
        &self.buckets[l]
    }

    /// Iterates levels from the sinks up to the sources (level 0 first) —
    /// the order of the reverse-topological propagation sweep.
    pub fn iter_up(&self) -> impl Iterator<Item = &[NodeId]> {
        self.buckets.iter().map(Vec::as_slice)
    }

    /// Iterates levels from the sources down to the sinks (highest level
    /// first) — the order of Alg1's forward sweep.
    pub fn iter_down(&self) -> impl Iterator<Item = &[NodeId]> {
        self.buckets.iter().rev().map(Vec::as_slice)
    }
}

/// Computes the topological level decomposition of `g` in one reverse pass
/// over a topological order: `level(v) = 1 + max(level of successors)`, with
/// sinks at level 0. Fails with a [`CycleError`] on cyclic input.
pub fn levels(g: &DiGraph) -> Result<Levels, CycleError> {
    let order = topo_sort(g)?;
    let mut level = vec![0usize; g.node_count()];
    for &v in order.iter().rev() {
        let best = g
            .successors(v)
            .iter()
            .map(|s| level[s.index()] + 1)
            .max()
            .unwrap_or(0);
        level[v.index()] = best;
    }
    let height = level.iter().copied().max().map_or(0, |m| m + 1);
    let mut buckets = vec![Vec::new(); height];
    // Bucket by ascending node id so the per-level order is deterministic.
    for (ix, &l) in level.iter().enumerate() {
        buckets[l].push(NodeId::from_index(ix));
    }
    Ok(Levels { level, buckets })
}

/// Validates that `order` is a topological order of `g`.
pub fn is_topo_order(g: &DiGraph, order: &[NodeId]) -> bool {
    if order.len() != g.node_count() {
        return false;
    }
    let mut pos = vec![usize::MAX; g.node_count()];
    for (ix, node) in order.iter().enumerate() {
        if pos[node.index()] != usize::MAX {
            return false; // duplicate
        }
        pos[node.index()] = ix;
    }
    g.edges().all(|(s, d)| pos[s.index()] < pos[d.index()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn kahn_produces_valid_order() {
        let g = diamond();
        let order = topo_sort(&g).unwrap();
        assert!(is_topo_order(&g, &order));
    }

    #[test]
    fn dfs_produces_valid_order() {
        let g = diamond();
        let order = topo_sort_dfs(&g).unwrap();
        assert!(is_topo_order(&g, &order));
    }

    #[test]
    fn cycle_detected_with_witness() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let err = topo_sort(&g).unwrap_err();
        let c = &err.cycle;
        assert!(c.len() >= 2);
        // Every consecutive pair (and the wrap-around) must be a real arc.
        for w in c.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "cycle edge {:?}->{:?} missing", w[0], w[1]);
        }
        assert!(g.has_edge(*c.last().unwrap(), c[0]));
        assert!(!is_acyclic(&g));
        let msg = err.to_string();
        assert!(msg.contains("cycle"));
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        assert!(find_cycle(&diamond()).is_none());
        assert!(is_acyclic(&diamond()));
    }

    #[test]
    fn empty_and_singleton() {
        let g = DiGraph::new();
        assert_eq!(topo_sort(&g).unwrap(), vec![]);
        let mut g = DiGraph::new();
        let a = g.add_node();
        assert_eq!(topo_sort(&g).unwrap(), vec![a]);
    }

    #[test]
    fn rank_matches_order() {
        let g = diamond();
        let order = topo_sort(&g).unwrap();
        let rank = topo_rank(&g).unwrap();
        for (ix, node) in order.iter().enumerate() {
            assert_eq!(rank[node.index()], ix);
        }
    }

    #[test]
    fn is_topo_order_rejects_bad_orders() {
        let g = diamond();
        assert!(!is_topo_order(&g, &[NodeId(3), NodeId(1), NodeId(2), NodeId(0)]));
        assert!(!is_topo_order(&g, &[NodeId(0), NodeId(1), NodeId(2)])); // wrong length
        assert!(!is_topo_order(&g, &[NodeId(0), NodeId(0), NodeId(1), NodeId(2)])); // duplicate
    }

    #[test]
    fn disconnected_components_sorted() {
        let g = DiGraph::from_edges([(0, 1), (2, 3)]);
        let order = topo_sort(&g).unwrap();
        assert!(is_topo_order(&g, &order));
    }

    #[test]
    fn two_node_cycle() {
        let g = DiGraph::from_edges([(0, 1), (1, 0)]);
        let err = topo_sort(&g).unwrap_err();
        assert_eq!(err.cycle.len(), 2);
    }

    /// Reference for `levels`: longest path to a sink by exhaustive DFS.
    fn longest_to_sink(g: &DiGraph, v: NodeId) -> usize {
        g.successors(v)
            .iter()
            .map(|&s| 1 + longest_to_sink(g, s))
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn levels_of_known_shapes() {
        // Diamond: 3 is the only sink (level 0), 1 and 2 sit at 1, 0 at 2.
        let lv = levels(&diamond()).unwrap();
        assert_eq!(lv.height(), 3);
        assert_eq!(lv.level_of(NodeId(3)), 0);
        assert_eq!(lv.level_of(NodeId(1)), 1);
        assert_eq!(lv.level_of(NodeId(2)), 1);
        assert_eq!(lv.level_of(NodeId(0)), 2);
        assert_eq!(lv.nodes_at(1), &[NodeId(1), NodeId(2)]);

        // A chain has one node per level; an edgeless graph a single level.
        let chain = DiGraph::from_edges([(0, 1), (1, 2), (2, 3)]);
        let lv = levels(&chain).unwrap();
        assert_eq!(lv.height(), 4);
        assert!(lv.iter_up().all(|bucket| bucket.len() == 1));

        let mut loose = DiGraph::new();
        loose.add_node();
        loose.add_node();
        let lv = levels(&loose).unwrap();
        assert_eq!(lv.height(), 1);
        assert_eq!(lv.nodes_at(0).len(), 2);

        assert_eq!(levels(&DiGraph::new()).unwrap().height(), 0);
    }

    #[test]
    fn levels_partition_the_node_set() {
        let g = crate::generators::random_dag(crate::generators::RandomDagConfig {
            nodes: 200,
            avg_out_degree: 3.0,
            seed: 17,
        });
        let lv = levels(&g).unwrap();
        assert_eq!(lv.node_count(), g.node_count());
        let mut seen = vec![0usize; g.node_count()];
        for (l, bucket) in lv.iter_up().enumerate() {
            for &v in bucket {
                seen[v.index()] += 1;
                assert_eq!(lv.level_of(v), l, "bucket/level_of disagree at {v:?}");
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "levels must partition the nodes");
        let total: usize = lv.iter_up().map(<[NodeId]>::len).sum();
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn every_arc_descends_strictly() {
        let g = crate::generators::random_dag(crate::generators::RandomDagConfig {
            nodes: 300,
            avg_out_degree: 2.5,
            seed: 23,
        });
        let lv = levels(&g).unwrap();
        for (p, q) in g.edges() {
            assert!(
                lv.level_of(p) > lv.level_of(q),
                "arc ({p:?},{q:?}) does not descend: {} -> {}",
                lv.level_of(p),
                lv.level_of(q)
            );
        }
    }

    #[test]
    fn levels_agree_with_topo_sort_on_exhaustive_small_dags() {
        // Over every 4- and 5-node DAG mask: the level of a node is the
        // longest path to a sink, and sorting by descending level is itself
        // a valid topological order (levels refine topo_sort's contract).
        for n in [4usize, 5] {
            for mask in crate::generators::enumerate_dag_masks(n) {
                let g = crate::generators::dag_from_mask(n, mask);
                let lv = levels(&g).unwrap();
                for v in g.nodes() {
                    assert_eq!(
                        lv.level_of(v),
                        longest_to_sink(&g, v),
                        "n={n} mask={mask:#b} node {v:?}"
                    );
                }
                let by_level: Vec<NodeId> =
                    lv.iter_down().flat_map(|b| b.iter().copied()).collect();
                assert!(
                    is_topo_order(&g, &by_level),
                    "n={n} mask={mask:#b}: descending levels are not a topo order"
                );
                assert!(topo_sort(&g).is_ok());
            }
        }
    }

    #[test]
    fn levels_reject_cycles() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 0)]);
        assert!(levels(&g).is_err());
    }
}
