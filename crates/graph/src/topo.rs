//! Topological sorting and cycle detection.
//!
//! The compression scheme of the paper processes nodes "in the reverse
//! topological order" (§3.2) and Alg1 runs "in topological order"; this
//! module provides both orders plus cycle detection with an explicit cycle
//! witness for error reporting.

use std::fmt;

use crate::{DiGraph, NodeId};

/// Error carrying one directed cycle found in a graph that was expected to be
/// acyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Nodes along the cycle, in order; the last node has an arc back to the
    /// first.
    pub cycle: Vec<NodeId>,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph contains a cycle: ")?;
        for (i, n) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, " -> {}", self.cycle[0])
    }
}

impl std::error::Error for CycleError {}

/// Computes a topological order using Kahn's algorithm.
///
/// Returns the nodes in an order where every arc goes from an earlier to a
/// later position. On a cyclic graph, returns a [`CycleError`] with a cycle
/// witness.
pub fn topo_sort(g: &DiGraph) -> Result<Vec<NodeId>, CycleError> {
    let n = g.node_count();
    let mut in_deg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId::from_index(i))).collect();
    let mut queue: Vec<NodeId> = g.roots().collect();
    let mut order = Vec::with_capacity(n);
    while let Some(node) = queue.pop() {
        order.push(node);
        for &succ in g.successors(node) {
            in_deg[succ.index()] -= 1;
            if in_deg[succ.index()] == 0 {
                queue.push(succ);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(CycleError {
            cycle: find_cycle(g).expect("Kahn found fewer nodes, a cycle must exist"),
        })
    }
}

/// Returns `true` iff the graph has no directed cycle.
pub fn is_acyclic(g: &DiGraph) -> bool {
    topo_sort(g).is_ok()
}

/// Returns the position of each node in a topological order: `rank[v]` is the
/// index of `v` in `topo_sort(g)`.
pub fn topo_rank(g: &DiGraph) -> Result<Vec<usize>, CycleError> {
    let order = topo_sort(g)?;
    let mut rank = vec![0usize; g.node_count()];
    for (ix, node) in order.iter().enumerate() {
        rank[node.index()] = ix;
    }
    Ok(rank)
}

/// Finds one directed cycle, if any, via iterative DFS with a three-color
/// scheme.
pub fn find_cycle(g: &DiGraph) -> Option<Vec<NodeId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = g.node_count();
    let mut color = vec![Color::White; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];

    for start in g.nodes() {
        if color[start.index()] != Color::White {
            continue;
        }
        // Stack of (node, next-successor-index) frames.
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
        color[start.index()] = Color::Gray;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succ = g.successors(node);
            if *next < succ.len() {
                let child = succ[*next];
                *next += 1;
                match color[child.index()] {
                    Color::White => {
                        parent[child.index()] = Some(node);
                        color[child.index()] = Color::Gray;
                        stack.push((child, 0));
                    }
                    Color::Gray => {
                        // Found a back edge node -> child: unwind the parent
                        // chain from `node` up to `child`.
                        let mut cycle = vec![node];
                        let mut cur = node;
                        while cur != child {
                            cur = parent[cur.index()].expect("gray node must have a parent");
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[node.index()] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

/// A DFS-based topological order (reverse postorder). Provided in addition to
/// Kahn's algorithm because tests cross-check the two and some callers want
/// the DFS tie-breaking.
pub fn topo_sort_dfs(g: &DiGraph) -> Result<Vec<NodeId>, CycleError> {
    if let Some(cycle) = find_cycle(g) {
        return Err(CycleError { cycle });
    }
    let n = g.node_count();
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    for start in g.nodes() {
        if visited[start.index()] {
            continue;
        }
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
        visited[start.index()] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succ = g.successors(node);
            if *next < succ.len() {
                let child = succ[*next];
                *next += 1;
                if !visited[child.index()] {
                    visited[child.index()] = true;
                    stack.push((child, 0));
                }
            } else {
                postorder.push(node);
                stack.pop();
            }
        }
    }
    postorder.reverse();
    Ok(postorder)
}

/// GRAIL-style negative-cutoff labels over one DFS of a DAG (Yıldırım,
/// Chaoji & Zaki's GRAIL index, reduced to a single traversal).
///
/// One iterative DFS over the whole graph (roots in ascending id order,
/// successors in stored order) assigns every node its postorder finish
/// index `post(v)`, and `mn(v) = min(post(v), min over successors' mn)` is
/// folded in as each node finishes. On a DAG every arc `(u, v)` has
/// `post(v) < post(u)` (finish times are a reverse topological order), and
/// `mn` is monotone along arcs, so:
///
/// > `u` reaches `v`  ⟹  `mn(u) <= mn(v)` and `post(v) <= post(u)`.
///
/// The contrapositive is the cutoff: when the label containment fails, `v`
/// is *provably* unreachable from `u` and the caller can answer "no"
/// without consulting any index. A passing check proves nothing — distinct
/// subtrees share label ranges — so positives must still be confirmed.
/// Two `u32`s per node; building is one O(n + m) traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutoffLabels {
    /// `mn[v]`: minimum postorder finish index reachable from `v`.
    mn: Vec<u32>,
    /// `post[v]`: `v`'s own postorder finish index.
    post: Vec<u32>,
}

impl CutoffLabels {
    /// Labels every node of `g` in one DFS. `g` must be acyclic: the
    /// soundness argument above leans on finish times being a reverse
    /// topological order, which only holds for DAGs (the closure layer
    /// guarantees this; cyclic inputs would yield labels that cut off
    /// reachable pairs).
    pub fn build(g: &DiGraph) -> CutoffLabels {
        let n = g.node_count();
        let mut mn = vec![u32::MAX; n];
        let mut post = vec![0u32; n];
        let mut entered = vec![false; n];
        let mut next_post = 0u32;
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for start in g.nodes() {
            if entered[start.index()] {
                continue;
            }
            entered[start.index()] = true;
            stack.push((start, 0));
            while let Some(&mut (node, ref mut next)) = stack.last_mut() {
                let succ = g.successors(node);
                if *next < succ.len() {
                    let child = succ[*next];
                    *next += 1;
                    if !entered[child.index()] {
                        entered[child.index()] = true;
                        stack.push((child, 0));
                    }
                } else {
                    // On a DAG every successor is already finished here
                    // (a gray successor would witness a cycle), so its mn
                    // is final.
                    let own = next_post;
                    next_post += 1;
                    post[node.index()] = own;
                    let mut low = own;
                    for &s in succ {
                        low = low.min(mn[s.index()]);
                    }
                    mn[node.index()] = low;
                    stack.pop();
                }
            }
        }
        CutoffLabels { mn, post }
    }

    /// Reassembles labels from their serialized halves (validated only for
    /// shape; the arrays are trusted to come from [`CutoffLabels::build`]).
    pub fn from_parts(mn: Vec<u32>, post: Vec<u32>) -> CutoffLabels {
        assert_eq!(mn.len(), post.len(), "cutoff label halves disagree");
        CutoffLabels { mn, post }
    }

    /// Number of labeled nodes.
    pub fn len(&self) -> usize {
        self.post.len()
    }

    /// Whether no nodes are labeled.
    pub fn is_empty(&self) -> bool {
        self.post.is_empty()
    }

    /// The `mn` halves, for serialization.
    pub fn mn(&self) -> &[u32] {
        &self.mn
    }

    /// The `post` halves, for serialization.
    pub fn post(&self) -> &[u32] {
        &self.post
    }

    /// `false` only when `u` provably cannot reach `v`; `true` means the
    /// labels cannot rule the pair out and the caller must consult a real
    /// index. Reflexive pairs always pass.
    #[inline]
    pub fn may_reach(&self, u: NodeId, v: NodeId) -> bool {
        self.mn[u.index()] <= self.mn[v.index()] && self.post[v.index()] <= self.post[u.index()]
    }
}

/// A topological *level decomposition* of a DAG.
///
/// The level of a node is the length of the longest directed path from it to
/// a sink: sinks sit at level 0, and for every arc `(p, q)` the source lies
/// at a strictly higher level than the target (`level(p) >= level(q) + 1`).
/// Consequently no two nodes on the same level are connected by an arc —
/// they are mutually independent, which is what makes levels the unit of
/// parallelism for the closure-construction sweeps: a level's nodes can be
/// processed concurrently once all lower (for reverse-topological
/// propagation) or higher (for Alg1's forward sweep) levels are complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levels {
    /// `level[v]` = topological level of node `v`.
    level: Vec<usize>,
    /// `buckets[l]` = nodes at level `l`, ascending by id.
    buckets: Vec<Vec<NodeId>>,
}

impl Levels {
    /// The level of `node`.
    #[inline]
    pub fn level_of(&self, node: NodeId) -> usize {
        self.level[node.index()]
    }

    /// Number of distinct levels (0 for the empty graph). The longest path
    /// in the graph has `height() - 1` arcs.
    pub fn height(&self) -> usize {
        self.buckets.len()
    }

    /// Number of nodes across all levels.
    pub fn node_count(&self) -> usize {
        self.level.len()
    }

    /// The nodes at level `l`, in ascending id order.
    #[inline]
    pub fn nodes_at(&self, l: usize) -> &[NodeId] {
        &self.buckets[l]
    }

    /// Iterates levels from the sinks up to the sources (level 0 first) —
    /// the order of the reverse-topological propagation sweep.
    pub fn iter_up(&self) -> impl Iterator<Item = &[NodeId]> {
        self.buckets.iter().map(Vec::as_slice)
    }

    /// Iterates levels from the sources down to the sinks (highest level
    /// first) — the order of Alg1's forward sweep.
    pub fn iter_down(&self) -> impl Iterator<Item = &[NodeId]> {
        self.buckets.iter().rev().map(Vec::as_slice)
    }
}

/// Computes the topological level decomposition of `g` in one reverse pass
/// over a topological order: `level(v) = 1 + max(level of successors)`, with
/// sinks at level 0. Fails with a [`CycleError`] on cyclic input.
pub fn levels(g: &DiGraph) -> Result<Levels, CycleError> {
    let order = topo_sort(g)?;
    let mut level = vec![0usize; g.node_count()];
    for &v in order.iter().rev() {
        let best = g
            .successors(v)
            .iter()
            .map(|s| level[s.index()] + 1)
            .max()
            .unwrap_or(0);
        level[v.index()] = best;
    }
    let height = level.iter().copied().max().map_or(0, |m| m + 1);
    let mut buckets = vec![Vec::new(); height];
    // Bucket by ascending node id so the per-level order is deterministic.
    for (ix, &l) in level.iter().enumerate() {
        buckets[l].push(NodeId::from_index(ix));
    }
    Ok(Levels { level, buckets })
}

/// A disjoint assignment of every node to one of a fixed number of shards.
///
/// Produced by [`partition`]; consumed by the sharded closure layer, which
/// runs one compressed closure per shard and composes cross-shard answers
/// through a boundary structure over the arcs the partition cuts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `shard_of[v]` = shard of node `v`.
    shard_of: Vec<u32>,
    /// Number of shards (at least 1 whenever the graph is non-empty).
    shards: usize,
}

impl Partition {
    /// The trivial partition: every node in shard 0.
    pub fn singleton(nodes: usize) -> Partition {
        Partition { shard_of: vec![0; nodes], shards: 1 }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of nodes assigned.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard holding `node`.
    #[inline]
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_of[node.index()] as usize
    }

    /// The nodes of `shard`, ascending by id.
    pub fn members(&self, shard: usize) -> Vec<NodeId> {
        self.shard_of
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s as usize == shard)
            .map(|(ix, _)| NodeId::from_index(ix))
            .collect()
    }

    /// Node count per shard.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shards];
        for &s in &self.shard_of {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Arcs of `g` whose endpoints land in different shards.
    pub fn cross_arcs(&self, g: &DiGraph) -> Vec<(NodeId, NodeId)> {
        g.edges()
            .filter(|&(s, d)| self.shard_of[s.index()] != self.shard_of[d.index()])
            .collect()
    }
}

/// Partitions a DAG into at most `shards` shards for independent closure
/// maintenance.
///
/// The primary rule is *weakly connected components*: two nodes joined by an
/// arc (in either direction) always share a component, so packing whole
/// components into shards cuts **zero** arcs — every shard's closure is
/// self-contained. Components are bin-packed largest-first onto the
/// least-loaded shard, which keeps shard sizes balanced and is fully
/// deterministic (ties break toward the lowest shard index).
///
/// When one component dominates the graph (more than half the nodes — the
/// classic single-giant-component case), it falls back to a *level cut*: the
/// component's nodes are ordered by descending topological level
/// ([`levels`]; sources first) and sliced into contiguous bands of roughly
/// the target size. Arcs always descend levels, so every arc the cut severs
/// runs from an earlier band to a later one — the quotient over bands stays
/// acyclic, which keeps the cross-shard boundary structure small and
/// loop-free.
///
/// Fails with a [`CycleError`] on cyclic input (the level cut needs a
/// topological order). `shards <= 1` returns the trivial partition.
pub fn partition(g: &DiGraph, shards: usize) -> Result<Partition, CycleError> {
    let n = g.node_count();
    if shards <= 1 || n == 0 {
        levels(g)?; // still reject cyclic input, independent of shard count
        return Ok(Partition::singleton(n));
    }
    let lv = levels(g)?;

    // Weakly connected components by union-find over the arc set.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for (s, d) in g.edges() {
        let (a, b) = (find(&mut parent, s.0), find(&mut parent, d.0));
        if a != b {
            // Union by lowest root id: deterministic regardless of edge order.
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            parent[hi as usize] = lo;
        }
    }
    let mut comp_nodes: Vec<Vec<u32>> = Vec::new();
    let mut comp_ix: Vec<u32> = vec![u32::MAX; n];
    for v in 0..n as u32 {
        let root = find(&mut parent, v) as usize;
        if comp_ix[root] == u32::MAX {
            comp_ix[root] = comp_nodes.len() as u32;
            comp_nodes.push(Vec::new());
        }
        comp_nodes[comp_ix[root] as usize].push(v);
    }

    // Split *dominant* components (more than half the graph — the classic
    // single-giant-component shape) into level-cut pieces of roughly the
    // balance target; everything else stays whole, so small components are
    // never diced just to fill shard slots.
    let target = n.div_ceil(shards);
    let mut pieces: Vec<Vec<u32>> = Vec::new();
    for mut nodes in comp_nodes {
        if nodes.len() <= target || nodes.len() * 2 <= n {
            pieces.push(nodes);
            continue;
        }
        // Descending level, ascending id: a contiguous slice ordering in
        // which every arc points from an earlier position to a later one.
        nodes.sort_unstable_by_key(|&v| (usize::MAX - lv.level_of(NodeId(v)), v));
        let cuts = nodes.len().div_ceil(target);
        let band = nodes.len().div_ceil(cuts);
        for chunk in nodes.chunks(band) {
            pieces.push(chunk.to_vec());
        }
    }

    // Largest-first onto the least-loaded shard; ties break toward the
    // earlier piece / lower shard index so the result is deterministic.
    pieces.sort_by_key(|p| (usize::MAX - p.len(), p.first().copied().unwrap_or(0)));
    let shards = shards.min(pieces.len().max(1));
    let mut load = vec![0usize; shards];
    let mut shard_of = vec![0u32; n];
    for piece in pieces {
        let s = (0..shards).min_by_key(|&s| (load[s], s)).expect("at least one shard");
        load[s] += piece.len();
        for v in piece {
            shard_of[v as usize] = s as u32;
        }
    }
    Ok(Partition { shard_of, shards })
}

/// Validates that `order` is a topological order of `g`.
pub fn is_topo_order(g: &DiGraph, order: &[NodeId]) -> bool {
    if order.len() != g.node_count() {
        return false;
    }
    let mut pos = vec![usize::MAX; g.node_count()];
    for (ix, node) in order.iter().enumerate() {
        if pos[node.index()] != usize::MAX {
            return false; // duplicate
        }
        pos[node.index()] = ix;
    }
    g.edges().all(|(s, d)| pos[s.index()] < pos[d.index()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn kahn_produces_valid_order() {
        let g = diamond();
        let order = topo_sort(&g).unwrap();
        assert!(is_topo_order(&g, &order));
    }

    #[test]
    fn dfs_produces_valid_order() {
        let g = diamond();
        let order = topo_sort_dfs(&g).unwrap();
        assert!(is_topo_order(&g, &order));
    }

    #[test]
    fn cycle_detected_with_witness() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let err = topo_sort(&g).unwrap_err();
        let c = &err.cycle;
        assert!(c.len() >= 2);
        // Every consecutive pair (and the wrap-around) must be a real arc.
        for w in c.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "cycle edge {:?}->{:?} missing", w[0], w[1]);
        }
        assert!(g.has_edge(*c.last().unwrap(), c[0]));
        assert!(!is_acyclic(&g));
        let msg = err.to_string();
        assert!(msg.contains("cycle"));
    }

    #[test]
    fn acyclic_graph_has_no_cycle() {
        assert!(find_cycle(&diamond()).is_none());
        assert!(is_acyclic(&diamond()));
    }

    #[test]
    fn empty_and_singleton() {
        let g = DiGraph::new();
        assert_eq!(topo_sort(&g).unwrap(), vec![]);
        let mut g = DiGraph::new();
        let a = g.add_node();
        assert_eq!(topo_sort(&g).unwrap(), vec![a]);
    }

    #[test]
    fn rank_matches_order() {
        let g = diamond();
        let order = topo_sort(&g).unwrap();
        let rank = topo_rank(&g).unwrap();
        for (ix, node) in order.iter().enumerate() {
            assert_eq!(rank[node.index()], ix);
        }
    }

    #[test]
    fn is_topo_order_rejects_bad_orders() {
        let g = diamond();
        assert!(!is_topo_order(&g, &[NodeId(3), NodeId(1), NodeId(2), NodeId(0)]));
        assert!(!is_topo_order(&g, &[NodeId(0), NodeId(1), NodeId(2)])); // wrong length
        assert!(!is_topo_order(&g, &[NodeId(0), NodeId(0), NodeId(1), NodeId(2)])); // duplicate
    }

    #[test]
    fn disconnected_components_sorted() {
        let g = DiGraph::from_edges([(0, 1), (2, 3)]);
        let order = topo_sort(&g).unwrap();
        assert!(is_topo_order(&g, &order));
    }

    #[test]
    fn two_node_cycle() {
        let g = DiGraph::from_edges([(0, 1), (1, 0)]);
        let err = topo_sort(&g).unwrap_err();
        assert_eq!(err.cycle.len(), 2);
    }

    /// Reference for `levels`: longest path to a sink by exhaustive DFS.
    fn longest_to_sink(g: &DiGraph, v: NodeId) -> usize {
        g.successors(v)
            .iter()
            .map(|&s| 1 + longest_to_sink(g, s))
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn levels_of_known_shapes() {
        // Diamond: 3 is the only sink (level 0), 1 and 2 sit at 1, 0 at 2.
        let lv = levels(&diamond()).unwrap();
        assert_eq!(lv.height(), 3);
        assert_eq!(lv.level_of(NodeId(3)), 0);
        assert_eq!(lv.level_of(NodeId(1)), 1);
        assert_eq!(lv.level_of(NodeId(2)), 1);
        assert_eq!(lv.level_of(NodeId(0)), 2);
        assert_eq!(lv.nodes_at(1), &[NodeId(1), NodeId(2)]);

        // A chain has one node per level; an edgeless graph a single level.
        let chain = DiGraph::from_edges([(0, 1), (1, 2), (2, 3)]);
        let lv = levels(&chain).unwrap();
        assert_eq!(lv.height(), 4);
        assert!(lv.iter_up().all(|bucket| bucket.len() == 1));

        let mut loose = DiGraph::new();
        loose.add_node();
        loose.add_node();
        let lv = levels(&loose).unwrap();
        assert_eq!(lv.height(), 1);
        assert_eq!(lv.nodes_at(0).len(), 2);

        assert_eq!(levels(&DiGraph::new()).unwrap().height(), 0);
    }

    #[test]
    fn levels_partition_the_node_set() {
        let g = crate::generators::random_dag(crate::generators::RandomDagConfig {
            nodes: 200,
            avg_out_degree: 3.0,
            seed: 17,
        });
        let lv = levels(&g).unwrap();
        assert_eq!(lv.node_count(), g.node_count());
        let mut seen = vec![0usize; g.node_count()];
        for (l, bucket) in lv.iter_up().enumerate() {
            for &v in bucket {
                seen[v.index()] += 1;
                assert_eq!(lv.level_of(v), l, "bucket/level_of disagree at {v:?}");
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "levels must partition the nodes");
        let total: usize = lv.iter_up().map(<[NodeId]>::len).sum();
        assert_eq!(total, g.node_count());
    }

    #[test]
    fn every_arc_descends_strictly() {
        let g = crate::generators::random_dag(crate::generators::RandomDagConfig {
            nodes: 300,
            avg_out_degree: 2.5,
            seed: 23,
        });
        let lv = levels(&g).unwrap();
        for (p, q) in g.edges() {
            assert!(
                lv.level_of(p) > lv.level_of(q),
                "arc ({p:?},{q:?}) does not descend: {} -> {}",
                lv.level_of(p),
                lv.level_of(q)
            );
        }
    }

    #[test]
    fn levels_agree_with_topo_sort_on_exhaustive_small_dags() {
        // Over every 4- and 5-node DAG mask: the level of a node is the
        // longest path to a sink, and sorting by descending level is itself
        // a valid topological order (levels refine topo_sort's contract).
        for n in [4usize, 5] {
            for mask in crate::generators::enumerate_dag_masks(n) {
                let g = crate::generators::dag_from_mask(n, mask);
                let lv = levels(&g).unwrap();
                for v in g.nodes() {
                    assert_eq!(
                        lv.level_of(v),
                        longest_to_sink(&g, v),
                        "n={n} mask={mask:#b} node {v:?}"
                    );
                }
                let by_level: Vec<NodeId> =
                    lv.iter_down().flat_map(|b| b.iter().copied()).collect();
                assert!(
                    is_topo_order(&g, &by_level),
                    "n={n} mask={mask:#b}: descending levels are not a topo order"
                );
                assert!(topo_sort(&g).is_ok());
            }
        }
    }

    #[test]
    fn levels_reject_cycles() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 0)]);
        assert!(levels(&g).is_err());
    }

    /// Three weakly connected components of sizes 3, 2, 1.
    fn three_components() -> DiGraph {
        let mut g = DiGraph::from_edges([(0, 1), (1, 2), (3, 4)]);
        g.add_node(); // isolated node 5
        g
    }

    #[test]
    fn partition_keeps_weak_components_whole() {
        let g = three_components();
        let p = partition(&g, 2).unwrap();
        assert_eq!(p.shards(), 2);
        // Arc endpoints always share a shard: no arc is cut.
        assert!(p.cross_arcs(&g).is_empty());
        for (s, d) in g.edges() {
            assert_eq!(p.shard_of(s), p.shard_of(d));
        }
        // Balanced: the size-3 component alone, the 2+1 together.
        let mut sizes = p.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn partition_is_deterministic_and_covers_all_nodes() {
        let g = crate::generators::random_dag(crate::generators::RandomDagConfig {
            nodes: 200,
            avg_out_degree: 1.2,
            seed: 5,
        });
        let p1 = partition(&g, 4).unwrap();
        let p2 = partition(&g, 4).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.node_count(), 200);
        assert_eq!(p1.sizes().iter().sum::<usize>(), 200);
        let members: usize = (0..p1.shards()).map(|s| p1.members(s).len()).sum();
        assert_eq!(members, 200);
    }

    #[test]
    fn giant_component_falls_back_to_level_cut() {
        // A single path of 40 nodes is one weak component; the level cut
        // must still split it into 4 shards of 10 with forward-only arcs.
        let g = DiGraph::from_edges((0..39u32).map(|i| (i, i + 1)));
        let p = partition(&g, 4).unwrap();
        assert_eq!(p.shards(), 4);
        assert_eq!(p.sizes(), vec![10, 10, 10, 10]);
        let cross = p.cross_arcs(&g);
        assert_eq!(cross.len(), 3, "a path cut into 4 bands severs 3 arcs");
        // The quotient over shards is acyclic: order shards by the first
        // time they appear along the path and check arcs never go back.
        let lv = levels(&g).unwrap();
        for (s, d) in cross {
            assert!(lv.level_of(s) > lv.level_of(d));
        }
    }

    #[test]
    fn level_cut_bands_are_acyclic_as_a_quotient() {
        let g = crate::generators::random_dag(crate::generators::RandomDagConfig {
            nodes: 400,
            avg_out_degree: 3.0,
            seed: 11,
        });
        let p = partition(&g, 4).unwrap();
        // Quotient graph over shards must be a DAG.
        let mut q = DiGraph::with_nodes(p.shards());
        for (s, d) in p.cross_arcs(&g) {
            let (a, b) = (p.shard_of(s), p.shard_of(d));
            if a != b {
                let _ = q.try_add_edge(NodeId(a as u32), NodeId(b as u32));
            }
        }
        assert!(is_acyclic(&q), "level-cut quotient has a cycle");
    }

    #[test]
    fn partition_trivial_cases() {
        assert_eq!(partition(&DiGraph::new(), 4).unwrap().shards(), 1);
        let g = three_components();
        let p = partition(&g, 1).unwrap();
        assert_eq!(p.shards(), 1);
        assert!((0..6).all(|v| p.shard_of(NodeId(v)) == 0));
        // More shards than components: capped at the piece count.
        let p = partition(&g, 16).unwrap();
        assert!(p.shards() <= 16);
        assert!(p.cross_arcs(&g).is_empty());
        // Cyclic input is rejected regardless of shard count.
        let c = DiGraph::from_edges([(0, 1), (1, 0)]);
        assert!(partition(&c, 1).is_err());
        assert!(partition(&c, 4).is_err());
    }

    #[test]
    fn cutoff_labels_never_cut_reachable_pairs() {
        use crate::generators;
        use crate::traverse::reachable_set;
        for seed in 0..4 {
            let g = generators::random_dag(generators::RandomDagConfig {
                nodes: 60,
                avg_out_degree: 2.5,
                seed,
            });
            let labels = CutoffLabels::build(&g);
            assert_eq!(labels.len(), 60);
            for u in g.nodes() {
                let reach = reachable_set(&g, u);
                for v in g.nodes() {
                    if reach.contains(v.index()) {
                        // Soundness: reachable pairs must always pass.
                        assert!(labels.may_reach(u, v), "{u:?} reaches {v:?} but was cut off");
                    }
                }
            }
        }
    }

    #[test]
    fn cutoff_labels_cut_most_negatives_on_a_chain() {
        // On a chain, labels are exact: i reaches j iff i <= j.
        let g = crate::generators::chain(50);
        let labels = CutoffLabels::build(&g);
        for i in 0..50u32 {
            for j in 0..50u32 {
                assert_eq!(labels.may_reach(NodeId(i), NodeId(j)), i <= j);
            }
        }
    }

    #[test]
    fn cutoff_labels_roundtrip_parts() {
        let g = diamond();
        let labels = CutoffLabels::build(&g);
        let back = CutoffLabels::from_parts(labels.mn().to_vec(), labels.post().to_vec());
        assert_eq!(back, labels);
        assert!(!back.is_empty());
    }
}
