//! The directed-graph representation.

use std::fmt;

use crate::NodeId;

/// Error returned when an edge operation references a malformed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKindError {
    /// The endpoints name nodes that do not exist.
    UnknownNode(NodeId),
    /// A self-loop was requested on a graph that forbids them.
    SelfLoop(NodeId),
}

impl fmt::Display for EdgeKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKindError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            EdgeKindError::SelfLoop(n) => write!(f, "self loop on {n:?} not allowed"),
        }
    }
}

impl std::error::Error for EdgeKindError {}

/// A growable directed graph with both out- and in-adjacency lists.
///
/// This is the base representation for a binary relation: one node per
/// distinct domain value and one arc per tuple (paper §3). Both adjacency
/// directions are kept because the paper's algorithms need them: Alg1 and
/// interval propagation walk *immediate predecessor* lists, while queries and
/// tree covers walk *immediate successor* lists. Parallel edges are
/// suppressed (a relation is a set of tuples); self-loops are rejected since
/// the compression scheme assumes reflexivity implicitly ("every node can
/// reach itself").
#[derive(Clone, Default)]
pub struct DiGraph {
    out_adj: Vec<Vec<NodeId>>,
    in_adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> Self {
        DiGraph {
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list, sizing the node set to the largest
    /// endpoint mentioned.
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let edges: Vec<(u32, u32)> = edges.into_iter().collect();
        let n = edges
            .iter()
            .map(|&(a, b)| a.max(b) as usize + 1)
            .max()
            .unwrap_or(0);
        let mut g = DiGraph::with_nodes(n);
        for (a, b) in edges {
            g.add_edge(NodeId(a), NodeId(b));
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of (distinct) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.out_adj.len());
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds `count` nodes, returning the id of the first.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = NodeId::from_index(self.out_adj.len());
        for _ in 0..count {
            self.add_node();
        }
        first
    }

    /// Adds the edge `src -> dst` if not already present.
    ///
    /// Returns `true` if the edge was newly added.
    ///
    /// # Panics
    ///
    /// Panics on unknown endpoints or self-loops; use [`DiGraph::try_add_edge`]
    /// for a fallible variant.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        self.try_add_edge(src, dst).expect("invalid edge")
    }

    /// Fallible edge insertion. Returns `Ok(true)` if the edge was new,
    /// `Ok(false)` if it already existed.
    pub fn try_add_edge(&mut self, src: NodeId, dst: NodeId) -> Result<bool, EdgeKindError> {
        let n = self.node_count();
        for end in [src, dst] {
            if end.index() >= n {
                return Err(EdgeKindError::UnknownNode(end));
            }
        }
        if src == dst {
            return Err(EdgeKindError::SelfLoop(src));
        }
        if self.has_edge(src, dst) {
            return Ok(false);
        }
        self.out_adj[src.index()].push(dst);
        self.in_adj[dst.index()].push(src);
        self.edge_count += 1;
        Ok(true)
    }

    /// Removes the edge `src -> dst`. Returns `true` if it was present.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        let out = &mut self.out_adj[src.index()];
        let Some(pos) = out.iter().position(|&d| d == dst) else {
            return false;
        };
        out.remove(pos);
        let inn = &mut self.in_adj[dst.index()];
        let pos = inn
            .iter()
            .position(|&s| s == src)
            .expect("in/out adjacency out of sync");
        inn.remove(pos);
        self.edge_count -= 1;
        true
    }

    /// Whether the edge `src -> dst` exists.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.out_adj
            .get(src.index())
            .is_some_and(|succ| succ.contains(&dst))
    }

    /// Immediate successors of `node` (the paper's "immediate successor list").
    #[inline]
    pub fn successors(&self, node: NodeId) -> &[NodeId] {
        &self.out_adj[node.index()]
    }

    /// Immediate predecessors of `node` (the paper's "immediate predecessor
    /// list").
    #[inline]
    pub fn predecessors(&self, node: NodeId) -> &[NodeId] {
        &self.in_adj[node.index()]
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_adj[node.index()].len()
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_adj[node.index()].len()
    }

    /// Iterates over all node ids, `0..n`.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterates over all edges as `(src, dst)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out_adj
            .iter()
            .enumerate()
            .flat_map(|(s, succ)| succ.iter().map(move |&d| (NodeId::from_index(s), d)))
    }

    /// Nodes with no incoming arcs.
    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| self.in_degree(n) == 0)
    }

    /// Nodes with no outgoing arcs.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&n| self.out_degree(n) == 0)
    }

    /// Returns the graph with every edge reversed.
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            out_adj: self.in_adj.clone(),
            in_adj: self.out_adj.clone(),
            edge_count: self.edge_count,
        }
    }

    /// Average out-degree (`edges / nodes`), the main workload parameter of
    /// the paper's evaluation (§3.3).
    pub fn average_out_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.edge_count as f64 / self.node_count() as f64
        }
    }

    /// Checks internal invariants; used by debug assertions and tests.
    pub fn check_consistency(&self) -> bool {
        let mut count = 0;
        for (s, succ) in self.out_adj.iter().enumerate() {
            for &d in succ {
                if !self.in_adj[d.index()].contains(&NodeId::from_index(s)) {
                    return false;
                }
                count += 1;
            }
        }
        count == self.edge_count
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DiGraph({} nodes, {} edges)", self.node_count(), self.edge_count)?;
        for n in self.nodes() {
            if !self.successors(n).is_empty() {
                writeln!(f, "  {:?} -> {:?}", n, self.successors(n))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        assert!(g.add_edge(a, b));
        assert!(g.add_edge(b, c));
        assert!(!g.add_edge(a, b), "parallel edge suppressed");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.successors(a), &[b]);
        assert_eq!(g.predecessors(c), &[b]);
        assert!(g.check_consistency());
    }

    #[test]
    fn from_edges_sizes_nodes() {
        let g = DiGraph::from_edges([(0, 5), (5, 2)]);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(5)));
    }

    #[test]
    fn remove_edge_updates_both_directions() {
        let mut g = DiGraph::from_edges([(0, 1), (0, 2)]);
        assert!(g.remove_edge(NodeId(0), NodeId(1)));
        assert!(!g.remove_edge(NodeId(0), NodeId(1)));
        assert_eq!(g.edge_count(), 1);
        assert!(g.predecessors(NodeId(1)).is_empty());
        assert!(g.check_consistency());
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = DiGraph::with_nodes(1);
        assert_eq!(
            g.try_add_edge(NodeId(0), NodeId(0)),
            Err(EdgeKindError::SelfLoop(NodeId(0)))
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let mut g = DiGraph::with_nodes(1);
        assert_eq!(
            g.try_add_edge(NodeId(0), NodeId(9)),
            Err(EdgeKindError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn roots_and_leaves() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.roots().collect::<Vec<_>>(), vec![NodeId(0)]);
        assert_eq!(g.leaves().collect::<Vec<_>>(), vec![NodeId(2)]);
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = DiGraph::from_edges([(0, 1), (1, 2)]);
        let r = g.reversed();
        assert!(r.has_edge(NodeId(1), NodeId(0)));
        assert!(r.has_edge(NodeId(2), NodeId(1)));
        assert!(!r.has_edge(NodeId(0), NodeId(1)));
        assert!(r.check_consistency());
    }

    #[test]
    fn edges_iterator_covers_everything() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 2)]);
        let mut edges: Vec<_> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn average_out_degree() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 2), (0, 3)]);
        assert!((g.average_out_degree() - 1.0).abs() < 1e-12);
        assert_eq!(DiGraph::new().average_out_degree(), 0.0);
    }
}
