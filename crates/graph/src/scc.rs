//! Strongly-connected components and condensation.
//!
//! The paper handles cyclic relations "by collapsing strongly connected
//! components into one node" (§3). This module provides Tarjan's algorithm
//! (iterative, so deep graphs cannot overflow the call stack) and the
//! condensation construction used by `tc-core::cyclic`.

use crate::{DiGraph, NodeId};

/// The strongly-connected components of a graph.
#[derive(Debug, Clone)]
pub struct SccResult {
    /// `component[v]` is the index of the component containing `v`.
    /// Component indices are in *reverse topological order of the
    /// condensation* (Tarjan emits sinks first).
    pub component: Vec<usize>,
    /// The members of each component.
    pub members: Vec<Vec<NodeId>>,
}

impl SccResult {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Component index of `node`.
    pub fn component_of(&self, node: NodeId) -> usize {
        self.component[node.index()]
    }

    /// Whether two nodes are in the same component (mutually reachable).
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.component_of(a) == self.component_of(b)
    }
}

/// Computes strongly-connected components with an iterative Tarjan.
pub fn tarjan_scc(g: &DiGraph) -> SccResult {
    const UNVISITED: usize = usize::MAX;
    let n = g.node_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0usize;
    let mut component = vec![UNVISITED; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();

    // Explicit DFS frames: (node, next-successor-position).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();

    for start in g.nodes() {
        if index[start.index()] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start.index()] = next_index;
        lowlink[start.index()] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start.index()] = true;

        while let Some(&mut (v, ref mut next)) = frames.last_mut() {
            let succ = g.successors(v);
            if *next < succ.len() {
                let w = succ[*next];
                *next += 1;
                if index[w.index()] == UNVISITED {
                    index[w.index()] = next_index;
                    lowlink[w.index()] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w.index()] = true;
                    frames.push((w, 0));
                } else if on_stack[w.index()] {
                    lowlink[v.index()] = lowlink[v.index()].min(index[w.index()]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent.index()] = lowlink[parent.index()].min(lowlink[v.index()]);
                }
                if lowlink[v.index()] == index[v.index()] {
                    // v is the root of an SCC: pop the stack down to v.
                    let comp_ix = members.len();
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        on_stack[w.index()] = false;
                        component[w.index()] = comp_ix;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.push(comp);
                }
            }
        }
    }

    SccResult { component, members }
}

/// The condensation of a graph: one node per SCC, one arc per pair of
/// adjacent components.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// The acyclic condensed graph. Node `i` corresponds to component `i` of
    /// [`Condensation::scc`].
    pub dag: DiGraph,
    /// The SCC decomposition the condensation was built from.
    pub scc: SccResult,
}

impl Condensation {
    /// The condensed node holding an original node.
    pub fn node_of(&self, original: NodeId) -> NodeId {
        NodeId::from_index(self.scc.component_of(original))
    }

    /// The original nodes inside a condensed node.
    pub fn members_of(&self, condensed: NodeId) -> &[NodeId] {
        &self.scc.members[condensed.index()]
    }
}

/// Builds the condensation of `g`.
pub fn condense(g: &DiGraph) -> Condensation {
    let scc = tarjan_scc(g);
    let mut dag = DiGraph::with_nodes(scc.count());
    for (src, dst) in g.edges() {
        let (cs, cd) = (scc.component_of(src), scc.component_of(dst));
        if cs != cd {
            // `add_edge` suppresses duplicates, which is what we want here.
            dag.add_edge(NodeId::from_index(cs), NodeId::from_index(cd));
        }
    }
    Condensation { dag, scc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::is_acyclic;

    #[test]
    fn acyclic_graph_has_singleton_components() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (0, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 3);
        for n in g.nodes() {
            assert_eq!(scc.members[scc.component_of(n)], vec![n]);
        }
    }

    #[test]
    fn simple_cycle_is_one_component() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 0)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 1);
        assert!(scc.same_component(NodeId(0), NodeId(2)));
    }

    #[test]
    fn mixed_graph_components() {
        // 0 <-> 1 form a component, 2 <-> 3 another, 4 alone; 1 -> 2 -> 4.
        let g = DiGraph::from_edges([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (2, 4)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 3);
        assert!(scc.same_component(NodeId(0), NodeId(1)));
        assert!(scc.same_component(NodeId(2), NodeId(3)));
        assert!(!scc.same_component(NodeId(1), NodeId(2)));
        assert!(!scc.same_component(NodeId(2), NodeId(4)));
    }

    #[test]
    fn condensation_is_acyclic_and_preserves_edges() {
        let g = DiGraph::from_edges([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (2, 4)]);
        let cond = condense(&g);
        assert!(is_acyclic(&cond.dag));
        assert_eq!(cond.dag.node_count(), 3);
        // Component of 0/1 must point at component of 2/3, which points at 4's.
        let c01 = cond.node_of(NodeId(0));
        let c23 = cond.node_of(NodeId(2));
        let c4 = cond.node_of(NodeId(4));
        assert!(cond.dag.has_edge(c01, c23));
        assert!(cond.dag.has_edge(c23, c4));
        assert_eq!(cond.dag.edge_count(), 2);
        assert_eq!(cond.members_of(c4), &[NodeId(4)]);
    }

    #[test]
    fn component_order_is_reverse_topological() {
        // Tarjan emits sink components first: with 0 -> 1, component(1) < component(0).
        let g = DiGraph::from_edges([(0, 1)]);
        let scc = tarjan_scc(&g);
        assert!(scc.component_of(NodeId(1)) < scc.component_of(NodeId(0)));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 100k-node chain; a recursive Tarjan would blow the stack.
        let n = 100_000u32;
        let g = DiGraph::from_edges((0..n - 1).map(|i| (i, i + 1)));
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), n as usize);
    }

    #[test]
    fn big_cycle_collapses() {
        let n = 10_000u32;
        let mut edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        let g = DiGraph::from_edges(edges);
        let cond = condense(&g);
        assert_eq!(cond.dag.node_count(), 1);
        assert_eq!(cond.dag.edge_count(), 0);
        assert_eq!(cond.members_of(NodeId(0)).len(), n as usize);
    }
}
