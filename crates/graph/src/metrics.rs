//! Structural graph metrics.
//!
//! The paper characterizes workloads by "the average degree of a node and
//! the number of nodes" (§3.3); these metrics extend that with the shape
//! properties that drive compression quality — depth, width and density —
//! for experiment reporting and the CLI's `info` command.

use crate::{scc, topo, DiGraph};

/// A summary of a graph's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of arcs.
    pub arcs: usize,
    /// Average out-degree (the §3.3 workload parameter).
    pub avg_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Nodes with no incoming arcs.
    pub roots: usize,
    /// Nodes with no outgoing arcs.
    pub leaves: usize,
    /// Whether the graph is acyclic.
    pub is_dag: bool,
    /// Number of strongly-connected components.
    pub scc_count: usize,
    /// Length (in arcs) of the longest path in the condensation — the
    /// "depth" of the hierarchy. For a DAG this is the longest path of the
    /// graph itself.
    pub longest_path: usize,
}

impl GraphMetrics {
    /// Computes all metrics in O(V + E) plus one SCC pass.
    pub fn compute(g: &DiGraph) -> Self {
        let condensation = scc::condense(g);
        let dag = &condensation.dag;
        let order = topo::topo_sort(dag).expect("condensation is acyclic");
        // Longest-path DP over the condensation in topological order.
        let mut depth = vec![0usize; dag.node_count()];
        let mut longest = 0usize;
        for &v in &order {
            for &s in dag.successors(v) {
                let candidate = depth[v.index()] + 1;
                if candidate > depth[s.index()] {
                    depth[s.index()] = candidate;
                    longest = longest.max(candidate);
                }
            }
        }

        GraphMetrics {
            nodes: g.node_count(),
            arcs: g.edge_count(),
            avg_out_degree: g.average_out_degree(),
            max_out_degree: g.nodes().map(|v| g.out_degree(v)).max().unwrap_or(0),
            max_in_degree: g.nodes().map(|v| g.in_degree(v)).max().unwrap_or(0),
            roots: g.roots().count(),
            leaves: g.leaves().count(),
            is_dag: condensation.dag.node_count() == g.node_count(),
            scc_count: condensation.dag.node_count(),
            longest_path: longest,
        }
    }
}

impl std::fmt::Display for GraphMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "nodes            {}", self.nodes)?;
        writeln!(f, "arcs             {}", self.arcs)?;
        writeln!(f, "avg out-degree   {:.2}", self.avg_out_degree)?;
        writeln!(f, "max out-degree   {}", self.max_out_degree)?;
        writeln!(f, "max in-degree    {}", self.max_in_degree)?;
        writeln!(f, "roots / leaves   {} / {}", self.roots, self.leaves)?;
        writeln!(f, "acyclic          {}", self.is_dag)?;
        writeln!(f, "SCCs             {}", self.scc_count)?;
        write!(f, "longest path     {}", self.longest_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::DiGraph;

    #[test]
    fn chain_metrics() {
        let m = GraphMetrics::compute(&generators::chain(5));
        assert_eq!(m.nodes, 5);
        assert_eq!(m.arcs, 4);
        assert_eq!(m.roots, 1);
        assert_eq!(m.leaves, 1);
        assert!(m.is_dag);
        assert_eq!(m.longest_path, 4);
        assert_eq!(m.scc_count, 5);
    }

    #[test]
    fn tree_metrics() {
        let m = GraphMetrics::compute(&generators::balanced_tree(3, 2));
        assert_eq!(m.nodes, 13);
        assert_eq!(m.max_out_degree, 3);
        assert_eq!(m.max_in_degree, 1);
        assert_eq!(m.leaves, 9);
        assert_eq!(m.longest_path, 2);
    }

    #[test]
    fn cyclic_metrics_use_condensation() {
        let g = DiGraph::from_edges([(0, 1), (1, 0), (1, 2), (2, 3)]);
        let m = GraphMetrics::compute(&g);
        assert!(!m.is_dag);
        assert_eq!(m.scc_count, 3);
        assert_eq!(m.longest_path, 2, "SCC{{0,1}} -> 2 -> 3");
    }

    #[test]
    fn empty_and_singleton() {
        let m = GraphMetrics::compute(&DiGraph::new());
        assert_eq!(m.nodes, 0);
        assert_eq!(m.longest_path, 0);
        let mut g = DiGraph::new();
        g.add_node();
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.roots, 1);
        assert_eq!(m.leaves, 1);
    }

    #[test]
    fn display_is_complete() {
        let text = GraphMetrics::compute(&generators::chain(3)).to_string();
        for needle in ["nodes", "arcs", "acyclic", "longest path"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

}
