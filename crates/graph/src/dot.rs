//! Graphviz (DOT) export, with optional per-node labels.
//!
//! Handy for visually inspecting the small paper figures (Fig 3.1, 3.2, 4.1)
//! and for debugging tree covers: `tc-core` renders tree arcs solid and
//! non-tree arcs dashed through [`to_dot_with`].

use std::fmt::Write as _;

use crate::{DiGraph, NodeId};

/// Styling decisions for one rendered edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeStyle {
    /// Solid edge (default).
    Solid,
    /// Dashed edge (used for non-tree arcs).
    Dashed,
}

/// Renders the graph in DOT format with default styling and numeric labels.
pub fn to_dot(g: &DiGraph) -> String {
    to_dot_with(g, |n| n.to_string(), |_, _| EdgeStyle::Solid)
}

/// Renders the graph in DOT format with custom node labels and edge styles.
pub fn to_dot_with(
    g: &DiGraph,
    mut label: impl FnMut(NodeId) -> String,
    mut style: impl FnMut(NodeId, NodeId) -> EdgeStyle,
) -> String {
    let mut out = String::new();
    out.push_str("digraph g {\n");
    for n in g.nodes() {
        let _ = writeln!(out, "  {} [label=\"{}\"];", n.0, escape(&label(n)));
    }
    for (s, d) in g.edges() {
        match style(s, d) {
            EdgeStyle::Solid => {
                let _ = writeln!(out, "  {} -> {};", s.0, d.0);
            }
            EdgeStyle::Dashed => {
                let _ = writeln!(out, "  {} -> {} [style=dashed];", s.0, d.0);
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let g = DiGraph::from_edges([(0, 1), (1, 2)]);
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("1 -> 2;"));
        assert!(dot.contains("[label=\"2\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn custom_labels_and_styles() {
        let g = DiGraph::from_edges([(0, 1), (0, 2)]);
        let dot = to_dot_with(
            &g,
            |n| format!("node-{n}"),
            |_, d| if d == NodeId(2) { EdgeStyle::Dashed } else { EdgeStyle::Solid },
        );
        assert!(dot.contains("[label=\"node-1\"]"));
        assert!(dot.contains("0 -> 2 [style=dashed];"));
        assert!(dot.contains("0 -> 1;"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut g = DiGraph::new();
        g.add_node();
        let dot = to_dot_with(&g, |_| "a\"b\\c".to_string(), |_, _| EdgeStyle::Solid);
        assert!(dot.contains("label=\"a\\\"b\\\\c\""));
    }
}
