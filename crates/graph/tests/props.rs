//! Property tests for the graph substrate.

use proptest::prelude::*;
use tc_graph::{generators, scc, topo, traverse, DiGraph, NodeId};

/// An arbitrary directed graph (cycles allowed) as an edge list.
fn arb_digraph(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = DiGraph> {
    (2..=max_nodes).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_edges).prop_map(move |edges| {
            let mut g = DiGraph::with_nodes(n as usize);
            for (a, b) in edges {
                if a != b {
                    g.add_edge(NodeId(a), NodeId(b));
                }
            }
            g
        })
    })
}

proptest! {
    /// In/out adjacency stay mutually consistent under arbitrary edge sets.
    #[test]
    fn adjacency_consistency(g in arb_digraph(12, 40)) {
        prop_assert!(g.check_consistency());
        let total_out: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let total_in: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(total_out, g.edge_count());
        prop_assert_eq!(total_in, g.edge_count());
    }

    /// Reversing twice is the identity (as edge sets).
    #[test]
    fn double_reverse_is_identity(g in arb_digraph(12, 40)) {
        let rr = g.reversed().reversed();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = rr.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Condensation: same-SCC nodes are mutually reachable; the condensed
    /// graph is acyclic; reachability factors through it.
    #[test]
    fn condensation_preserves_reachability(g in arb_digraph(10, 30)) {
        let cond = scc::condense(&g);
        prop_assert!(topo::is_acyclic(&cond.dag));
        for u in g.nodes() {
            let reach = traverse::reachable_set(&g, u);
            for v in g.nodes() {
                let same = cond.node_of(u) == cond.node_of(v);
                if same {
                    prop_assert!(reach.contains(v.index()));
                }
                let via_cond = traverse::reaches(&cond.dag, cond.node_of(u), cond.node_of(v));
                prop_assert_eq!(via_cond, reach.contains(v.index()),
                    "({:?},{:?})", u, v);
            }
        }
    }

    /// A graph is acyclic iff `find_cycle` returns nothing, and any returned
    /// cycle is a genuine arc cycle.
    #[test]
    fn cycle_witness_is_genuine(g in arb_digraph(10, 30)) {
        match topo::find_cycle(&g) {
            None => prop_assert!(topo::is_acyclic(&g)),
            Some(cycle) => {
                prop_assert!(cycle.len() >= 2);
                for w in cycle.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
                prop_assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
            }
        }
    }

    /// DFS and BFS visit exactly the reachable set, each node once.
    #[test]
    fn traversals_cover_reachable_set(g in arb_digraph(12, 40), start in 0u32..12) {
        prop_assume!((start as usize) < g.node_count());
        let start = NodeId(start);
        let expect = traverse::reachable_set(&g, start);
        for order in [
            traverse::Dfs::new(&g, start).collect::<Vec<_>>(),
            traverse::Bfs::new(&g, start).collect::<Vec<_>>(),
        ] {
            prop_assert_eq!(order.len(), expect.len());
            let mut sorted: Vec<_> = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), order.len(), "duplicate visit");
            prop_assert!(order.iter().all(|v| expect.contains(v.index())));
        }
    }

    /// Edge-list serialization round-trips any graph without isolated
    /// trailing nodes.
    #[test]
    fn edgelist_roundtrip(g in arb_digraph(12, 40)) {
        prop_assume!(g.edge_count() > 0);
        prop_assert!(tc_graph::edgelist::roundtrips(&g));
    }

    /// The random-DAG generator honors its contract for any parameters.
    #[test]
    fn random_dag_contract(nodes in 1usize..200, degree in 0.0f64..6.0, seed in 0u64..50) {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes, avg_out_degree: degree, seed,
        });
        prop_assert_eq!(g.node_count(), nodes);
        prop_assert!(topo::is_acyclic(&g));
        prop_assert!(g.check_consistency());
    }
}
