//! `interval-tc` — command-line front end for the compressed transitive
//! closure.
//!
//! ```text
//! interval-tc info <graph>                  structural metrics (works on cyclic graphs)
//! interval-tc stats <graph>                 storage accounting vs baselines
//! interval-tc query <graph> <src> <dst>     reachability by interval lookup
//! interval-tc successors <graph> <node>     decode the reachable set
//! interval-tc predecessors <graph> <node>   who reaches <node>
//! interval-tc path <graph> <src> <dst>      one concrete path witness
//! interval-tc dot <graph>                   Graphviz with interval labels
//! interval-tc compress <graph> <out.itc>    persist the closure
//! interval-tc gen <nodes> <degree> [seed]   emit a random §3.3 edge list
//! interval-tc bench <graph> [--queries N]   time point/batch/predecessor queries
//! interval-tc serve <graph> [flags]         concurrent snapshot-serving benchmark
//! interval-tc serve <graph> --listen ADDR   network daemon (line protocol, string keys)
//! interval-tc kb <script>                   run a knowledge-base command script
//! interval-tc fuzz [flags]                  differential update-churn fuzzing
//! ```
//!
//! `<graph>` is an edge-list file (`src dst` per line, `#` comments, `-`
//! for stdin) or a previously compressed `.itc` closure — the tool detects
//! which by content.
//!
//! A global `--threads N` flag (any position) runs closure construction and
//! the scan-style queries level-parallel on `N` worker threads (`0` = one
//! per CPU); the result is identical to the serial build. A global
//! `--frozen` flag freezes a read-optimized query plane after loading, so
//! every query answers from the immutable snapshot (see DESIGN.md, "Frozen
//! query plane"). A global `--paged N` flag makes those freezes out-of-core:
//! the plane streams to disk and queries page it through an `N`-frame
//! buffer pool, answering bit-identically to the resident plane. A global
//! `--hybrid T` flag arms the hybrid oracle: frozen planes carry
//! negative-cutoff labels and switch any row with more than `T` merged
//! intervals to a bitset representation (see DESIGN.md, "Hybrid oracle").

#![forbid(unsafe_code)]

use std::io::Read;
use std::process::ExitCode;

use tc_baselines::{FullClosure, ReachMatrix, ReachabilityIndex};
use tc_core::{ClosureConfig, CompressedClosure};
use tc_graph::{edgelist, generators, NodeId};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  interval-tc info <graph>
  interval-tc stats <graph>
  interval-tc query <graph> <src> <dst>
  interval-tc successors <graph> <node>
  interval-tc predecessors <graph> <node>
  interval-tc path <graph> <src> <dst>
  interval-tc dot <graph>
  interval-tc compress <graph> <out.itc>
  interval-tc gen <nodes> <degree> [seed]
  interval-tc bench <graph> [--queries N]
  interval-tc serve <graph> [--readers N] [--duration-ms D] [--churn]
  interval-tc serve <graph> --listen ADDR
  interval-tc kb <script> [--check]
  interval-tc fuzz [--ops N] [--seed S] [--seeds K] [--gap G] [--reserve R]
                   [--merge] [--freeze] [--serve] [--delete-bias] [--shrink]
                   [--codec] [--kb] [--out FILE] [--replay FILE]

global flags: --threads N   build/query on N worker threads (0 = one per CPU)
              --frozen      freeze the query plane after loading; all queries
                            answer from the immutable snapshot
              --scoped-deletes <on|off>
                            on (default): deletions recompute only the
                            affected region; off: historical global sweep
                            (same answers, kept as a cross-check oracle)
              --shards N    partition the DAG into N shards (weak components,
                            level-cut fallback) with one closure and one
                            writer per shard; serve scatter-gathers across
                            shards and fuzz replays every trace through the
                            sharded service in lockstep (1 = unsharded)
              --paged N     freeze query planes out-of-core: the frozen plane
                            streams to a temp file and queries page it through
                            an N-frame buffer pool instead of holding it
                            resident (answers are bit-identical); compress
                            appends a PLN1 plane section for instant restart
                            via open_paged, and fuzz mixes paged-probe round
                            trips into the op stream
              --hybrid T    arm the hybrid oracle for frozen planes: rows with
                            more than T merged intervals freeze as bitsets and
                            every reaches probe consults negative-cutoff
                            labels first (answers are bit-identical); with
                            --paged the bitset overlay rides the plane file as
                            a resident HYB1 section
<graph> = edge-list file ('src dst' lines, '-' for stdin) or a .itc closure

bench: builds (or loads) the closure, then times single-probe reaches, batch
reaches, successors and predecessors over a deterministic query mix; combine
with --frozen / --threads to compare query paths.

serve: spins up the concurrent serving layer (lock-free snapshot readers,
one background writer), spot-checks reader answers against the closure,
then measures reader throughput for --duration-ms (default 1000) on
--readers threads (default 2); --churn keeps the writer busy with mixed
add/remove update batches meanwhile and reports publish counts and
staleness. With --listen ADDR the same machinery is exposed as a TCP
daemon speaking a line protocol with string node keys (n0, n1, ... for
the initial graph): reads answer from lock-free snapshots, writes go
through the batched background writers, and a client's `shutdown` verb
stops the daemon (combine with --shards to serve the partitioned
engine).

fuzz: random update sequences against the closure, each applied op followed
by a structural audit and periodically cross-checked against a brute-force
DFS oracle and the chain-decomposition baseline. --seeds K runs K
consecutive seeds starting at --seed. On failure --shrink minimizes the
sequence and prints (or --out writes) a replayable trace; --replay runs a
previously saved trace instead of generating. --freeze mixes freeze/thaw ops
into the stream so audits and oracles also run against frozen query planes
(combine with the global --hybrid T to run every frozen plane, and its
paged image, through the hybrid oracle on the same seeds);
--serve mixes service-publish/service-query ops that pin serving-layer
snapshots mid-churn and later check them against the publish-time relation;
--delete-bias skews the op mix toward arc/node removals interleaved with
refines and relabels (combine with --scoped-deletes off to exercise the
global-sweep oracle on the same seeds). --codec switches to byte-mutation
mode: --seeds K corrupted .itc streams (bit flips, truncation, length-field
sabotage, half with re-signed trailers) are fed to the decoder, which must
reject each with a structured error — any panic fails the run; the same
seeds then corrupt a paged (ITC1 + PLN1) image opened and probed through a
2-frame buffer pool, and a serialized ITCK taxonomy (interior ITC1 trailer
re-signed so corruption reaches the name table), under the same zero-panic
rule. --kb switches to knowledge-base differential mode: --seeds K seeded
campaigns of random rule-driven assert/retract/feature churn, each
checkpointed against a from-scratch naive re-derivation of the whole model
— any divergence fails the run with the offending seed and step.

kb: executes a knowledge-base command script (one command per line, '#'
comments, '-' for stdin) against a fresh in-process knowledge base and
prints each command's answer; see DESIGN.md for the command set (rule,
assert, retract, ask, below, feature, set-prop, get-prop, check, stats).
--check additionally runs the naive-re-derivation differential gate after
the script, failing if the incrementally maintained closure diverges.";

/// Global flags stripped from anywhere in the argument list.
#[derive(Clone, Copy)]
struct Globals {
    /// Worker threads for builds and scan-style queries; `None` (flag
    /// absent) means serial for fresh builds but leaves the thread count a
    /// deserialized closure carries in its config footer untouched.
    threads: Option<usize>,
    /// Freeze a query plane right after loading.
    frozen: bool,
    /// Override for [`tc_core::ClosureConfig::scoped_deletes`]; `None`
    /// keeps the default (or, for `.itc` input, whatever the builder chose).
    scoped: Option<bool>,
    /// Shard count for the sharded closure layer; `None` or `Some(1)` means
    /// the unsharded engine.
    shards: Option<usize>,
    /// Buffer-pool size (in pages) for out-of-core frozen planes; `None`
    /// keeps freezes fully resident.
    paged: Option<usize>,
    /// Hybrid-oracle threshold: frozen rows with more merged intervals than
    /// this switch to bitsets and every probe consults negative-cutoff
    /// labels first; `None` keeps planes pure-interval.
    hybrid: Option<usize>,
}

impl Globals {
    /// The thread count for code paths that need a concrete number.
    fn threads_or_serial(&self) -> usize {
        self.threads.unwrap_or(1)
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (args, globals) = extract_globals(args)?;
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "info" => info(arg(&args, 1)?),
        "stats" => stats(arg(&args, 1)?, globals),
        "query" => query(arg(&args, 1)?, arg(&args, 2)?, arg(&args, 3)?, globals),
        "successors" => neighbors(arg(&args, 1)?, arg(&args, 2)?, true, globals),
        "predecessors" => neighbors(arg(&args, 1)?, arg(&args, 2)?, false, globals),
        "path" => path(arg(&args, 1)?, arg(&args, 2)?, arg(&args, 3)?, globals),
        "dot" => dot(arg(&args, 1)?, globals),
        "compress" => compress(arg(&args, 1)?, arg(&args, 2)?, globals),
        "gen" => gen(&args),
        "bench" => bench(&args, globals),
        "serve" => serve(&args, globals),
        "kb" => kb(&args),
        "fuzz" => fuzz(&args, globals),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Strips the global flags (`--threads N`, `--frozen`,
/// `--scoped-deletes on|off`, `--shards N`, `--paged N`, `--hybrid T`)
/// from anywhere in the argument list. Absent, the tool stays serial,
/// unfrozen, scoped, unsharded, fully resident and pure-interval.
fn extract_globals(args: &[String]) -> Result<(Vec<String>, Globals), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut globals = Globals {
        threads: None,
        frozen: false,
        scoped: None,
        shards: None,
        paged: None,
        hybrid: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            let v = it.next().ok_or("--threads requires a value")?;
            globals.threads = Some(
                v.parse()
                    .map_err(|_| format!("invalid thread count {v:?}"))?,
            );
        } else if a == "--frozen" {
            globals.frozen = true;
        } else if a == "--scoped-deletes" || a.starts_with("--scoped-deletes=") {
            let v = match a.strip_prefix("--scoped-deletes=") {
                Some(v) => v.to_string(),
                None => it
                    .next()
                    .ok_or("--scoped-deletes requires on|off")?
                    .clone(),
            };
            globals.scoped = Some(match v.as_str() {
                "on" => true,
                "off" => false,
                other => {
                    return Err(format!("invalid --scoped-deletes value {other:?} (want on|off)"))
                }
            });
        } else if a == "--shards" || a.starts_with("--shards=") {
            let v = match a.strip_prefix("--shards=") {
                Some(v) => v.to_string(),
                None => it.next().ok_or("--shards requires a value")?.clone(),
            };
            let shards: usize = v
                .parse()
                .map_err(|_| format!("invalid --shards value {v:?}"))?;
            if shards == 0 {
                return Err("--shards must be at least 1".into());
            }
            globals.shards = Some(shards);
        } else if a == "--paged" || a.starts_with("--paged=") {
            let v = match a.strip_prefix("--paged=") {
                Some(v) => v.to_string(),
                None => it.next().ok_or("--paged requires a value")?.clone(),
            };
            let pages: usize = v
                .parse()
                .map_err(|_| format!("invalid --paged value {v:?}"))?;
            if pages == 0 {
                return Err("--paged must be at least 1 buffer-pool page".into());
            }
            globals.paged = Some(pages);
        } else if a == "--hybrid" || a.starts_with("--hybrid=") {
            let v = match a.strip_prefix("--hybrid=") {
                Some(v) => v.to_string(),
                None => it.next().ok_or("--hybrid requires a value")?.clone(),
            };
            let threshold: usize = v
                .parse()
                .map_err(|_| format!("invalid --hybrid value {v:?}"))?;
            globals.hybrid = Some(threshold);
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, globals))
}

fn arg(args: &[String], ix: usize) -> Result<&str, String> {
    args.get(ix)
        .map(String::as_str)
        .ok_or_else(|| format!("missing argument #{ix}"))
}

fn read_input(path: &str) -> Result<Vec<u8>, String> {
    if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

/// Loads either a serialized closure or an edge list (building the closure),
/// with all construction and subsequent scans on `globals.threads` workers;
/// `--frozen` snapshots a query plane before any query runs.
fn load(path: &str, globals: Globals) -> Result<CompressedClosure, String> {
    let data = read_input(path)?;
    let mut closure = if data.starts_with(b"ITC1") {
        // `from_bytes_auto` also accepts `save_paged` images, skipping the
        // trailing plane section.
        let mut closure =
            CompressedClosure::from_bytes_auto(&data).map_err(|e| e.to_string())?;
        // An explicit --threads overrides the stream's config footer; absent,
        // the closure keeps the thread count it was saved with.
        if let Some(threads) = globals.threads {
            closure.set_threads(threads);
        }
        closure
    } else {
        let text =
            String::from_utf8(data).map_err(|_| "input is neither a closure nor UTF-8 text")?;
        let graph = edgelist::parse(&text).map_err(|e| e.to_string())?;
        ClosureConfig::new()
            .threads(globals.threads_or_serial())
            .build(&graph)
            .map_err(|e| e.to_string())?
    };
    if let Some(scoped) = globals.scoped {
        closure.set_scoped_deletes(scoped);
    }
    if let Some(pool) = globals.paged {
        // Routes the next freeze (including the --frozen one below, and the
        // serving layer's snapshot freezes) through an out-of-core plane
        // paged on a `pool`-frame buffer pool.
        closure.set_paged_pool(pool);
    }
    if let Some(threshold) = globals.hybrid {
        closure.set_hybrid_threshold(threshold);
    }
    if globals.frozen {
        closure.freeze();
    }
    Ok(closure)
}

fn parse_node(c: &CompressedClosure, s: &str) -> Result<NodeId, String> {
    let id: u32 = s.parse().map_err(|_| format!("invalid node id {s:?}"))?;
    if (id as usize) < c.node_count() {
        Ok(NodeId(id))
    } else {
        Err(format!("node {id} out of range (graph has {} nodes)", c.node_count()))
    }
}

fn info(path: &str) -> Result<(), String> {
    // `info` accepts cyclic graphs (it reports on the relation itself, not
    // the closure), so it parses the edge list directly.
    let data = read_input(path)?;
    let graph = if data.starts_with(b"ITC1") {
        CompressedClosure::from_bytes(&data)
            .map_err(|e| e.to_string())?
            .graph()
            .clone()
    } else {
        let text =
            String::from_utf8(data).map_err(|_| "input is neither a closure nor UTF-8 text")?;
        edgelist::parse(&text).map_err(|e| e.to_string())?
    };
    println!("{}", tc_graph::metrics::GraphMetrics::compute(&graph));
    Ok(())
}

fn stats(path: &str, globals: Globals) -> Result<(), String> {
    let closure = load(path, globals)?;
    let s = closure.stats();
    println!("nodes                 {}", s.nodes);
    println!("relation arcs         {}", s.graph_arcs);
    println!("closure pairs         {}", s.closure_size);
    println!("tree intervals        {}", s.tree_intervals);
    println!("non-tree intervals    {}", s.non_tree_intervals);
    let mut counts = closure.merged_interval_counts();
    counts.sort_unstable();
    if let Some(&max) = counts.last() {
        // The frozen plane stores rows post-merge, so this histogram — not
        // the raw set sizes above — is what the hybrid row-selection rule
        // sees (DESIGN.md, "Hybrid oracle").
        let pct = |p: f64| counts[((counts.len() - 1) as f64 * p) as usize];
        println!(
            "merged intervals/row  p50 {}  p95 {}  max {}",
            pct(0.50),
            pct(0.95),
            max
        );
        match closure.hybrid_threshold() {
            usize::MAX => println!("hybrid threshold      off (arm with --hybrid T)"),
            t => {
                let over = counts.iter().filter(|&&c| c > t).count();
                println!(
                    "hybrid threshold      {t}  ({over} of {} rows freeze as bitsets)",
                    counts.len()
                );
            }
        }
    }
    println!("compressed units      {}  ({:.2}x relation, {:.2}x closure)",
        s.compressed_units(), s.compressed_ratio(), 1.0 / s.compression_factor());
    let pooled = tc_core::pooled::PooledClosure::from_closure(&closure);
    println!(
        "pooled-range units    {}  ({} distinct ranges, {} refs)",
        pooled.storage_units(),
        pooled.pool_size(),
        pooled.ref_count()
    );
    println!("serialized bytes      {}", closure.to_bytes().len());
    let full = FullClosure::build(closure.graph());
    let matrix = ReachMatrix::build(closure.graph());
    println!("full closure units    {}", full.storage_units());
    println!("bit-matrix units      {} (u64 words)", matrix.storage_units());
    Ok(())
}

fn query(path: &str, src: &str, dst: &str, globals: Globals) -> Result<(), String> {
    let closure = load(path, globals)?;
    let s = parse_node(&closure, src)?;
    let d = parse_node(&closure, dst)?;
    let reachable = closure.reaches(s, d);
    println!("{s} ->* {d}: {reachable}");
    if !reachable {
        return Err(format!("no path from {s} to {d}"));
    }
    Ok(())
}

fn neighbors(path: &str, node: &str, forward: bool, globals: Globals) -> Result<(), String> {
    let closure = load(path, globals)?;
    let n = parse_node(&closure, node)?;
    let mut set = if forward {
        closure.successors(n)
    } else {
        closure.predecessors(n)
    };
    set.sort_unstable();
    for v in set {
        println!("{v}");
    }
    Ok(())
}

fn path(input: &str, src: &str, dst: &str, globals: Globals) -> Result<(), String> {
    let closure = load(input, globals)?;
    let s = parse_node(&closure, src)?;
    let d = parse_node(&closure, dst)?;
    match closure.find_path(s, d) {
        Some(route) => {
            let text: Vec<String> = route.iter().map(|n| n.to_string()).collect();
            println!("{}", text.join(" -> "));
            Ok(())
        }
        None => Err(format!("no path from {s} to {d}")),
    }
}

fn dot(path: &str, globals: Globals) -> Result<(), String> {
    let closure = load(path, globals)?;
    print!("{}", closure.to_dot());
    Ok(())
}

fn compress(path: &str, out: &str, globals: Globals) -> Result<(), String> {
    let closure = load(path, globals)?;
    // With --paged the image additionally carries a PLN1 plane section, so
    // `open_paged` restarts in O(directory) instead of re-freezing.
    let paged = globals.paged.is_some();
    let bytes = if paged { closure.to_paged_bytes() } else { closure.to_bytes() };
    std::fs::write(out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    let s = closure.stats();
    eprintln!(
        "wrote {out}: {} nodes, {} arcs, {} closure pairs in {} bytes{}",
        s.nodes,
        s.graph_arcs,
        s.closure_size,
        bytes.len(),
        if paged { " (with plane section for instant restart)" } else { "" }
    );
    Ok(())
}

/// Times the query surface over a deterministic mix: single `reaches`
/// probes, one `reaches_batch` sweep, and `successors`/`predecessors`
/// decodes for a sample of nodes. The same multiplicative-hash pair
/// sequence the fuzz oracle uses keeps runs comparable across
/// `--frozen`/`--threads` settings.
fn bench(args: &[String], globals: Globals) -> Result<(), String> {
    let path = arg(args, 1)?;
    let mut queries = 1_000_000usize;
    let mut it = args.iter().skip(2);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--queries" => {
                let v = it.next().ok_or("--queries requires a value")?;
                queries = v.parse().map_err(|_| "invalid --queries")?;
            }
            other => return Err(format!("unknown bench flag {other:?}")),
        }
    }
    let build_start = std::time::Instant::now();
    let closure = load(path, globals)?;
    let build = build_start.elapsed();
    let n = closure.node_count();
    if n == 0 {
        return Err("empty graph: nothing to bench".into());
    }
    println!(
        "loaded {} nodes / {} arcs in {:.3}s (threads {}, {})",
        n,
        closure.graph().edge_count(),
        build.as_secs_f64(),
        closure.threads(),
        if closure.is_frozen() { "frozen" } else { "mutable" },
    );

    let pairs: Vec<(NodeId, NodeId)> = (0..queries as u64)
        .map(|k| {
            let s = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n;
            let d = (k.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 32) as usize % n;
            (NodeId(s as u32), NodeId(d as u32))
        })
        .collect();

    let start = std::time::Instant::now();
    let mut hits = 0usize;
    for &(s, d) in &pairs {
        hits += usize::from(closure.reaches(s, d));
    }
    let single = start.elapsed();
    println!(
        "reaches       {queries} probes in {:.3}s  ({:.1} ns/probe, {hits} reachable)",
        single.as_secs_f64(),
        single.as_nanos() as f64 / queries as f64
    );

    let start = std::time::Instant::now();
    let answers = closure.reaches_batch(&pairs);
    let batch = start.elapsed();
    let batch_hits = answers.iter().filter(|&&b| b).count();
    if batch_hits != hits {
        return Err(format!("batch disagrees with single probes: {batch_hits} vs {hits}"));
    }
    println!(
        "reaches_batch {queries} probes in {:.3}s  ({:.1} ns/probe)",
        batch.as_secs_f64(),
        batch.as_nanos() as f64 / queries as f64
    );

    let sample: Vec<NodeId> = (0..(queries / 100).clamp(1, n) as u64)
        .map(|k| NodeId(((k.wrapping_mul(0xD6E8_FEB8_6659_FD93) >> 32) as usize % n) as u32))
        .collect();
    let start = std::time::Instant::now();
    let succ_total: usize = sample.iter().map(|&v| closure.successor_count(v)).sum();
    let succ = start.elapsed();
    println!(
        "successors    {} decodes in {:.3}s  ({:.1} us/decode, {succ_total} reachable total)",
        sample.len(),
        succ.as_secs_f64(),
        succ.as_micros() as f64 / sample.len() as f64
    );
    let start = std::time::Instant::now();
    let pred_total: usize = sample.iter().map(|&v| closure.predecessors(v).len()).sum();
    let pred = start.elapsed();
    println!(
        "predecessors  {} queries in {:.3}s  ({:.1} us/query, {pred_total} reaching total)",
        sample.len(),
        pred.as_secs_f64(),
        pred.as_micros() as f64 / sample.len() as f64
    );
    Ok(())
}

/// Runs the concurrent serving layer: spot-checks reader answers against
/// the closure, then measures snapshot-reader throughput (optionally under
/// writer churn) and reports publish counts and staleness.
fn serve(args: &[String], globals: Globals) -> Result<(), String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};
    use tc_core::{ClosureService, ServiceConfig, ServiceOp};

    let path = arg(args, 1)?;
    let mut readers = 2usize;
    let mut duration_ms = 1000u64;
    let mut churn = false;
    let mut it = args.iter().skip(2);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--readers" => {
                let v = it.next().ok_or("--readers requires a value")?;
                readers = v.parse().map_err(|_| "invalid --readers")?;
                if readers == 0 {
                    return Err("--readers must be at least 1".into());
                }
            }
            "--duration-ms" => {
                let v = it.next().ok_or("--duration-ms requires a value")?;
                duration_ms = v.parse().map_err(|_| "invalid --duration-ms")?;
            }
            "--churn" => churn = true,
            "--listen" => {
                let addr = it.next().ok_or("--listen requires an address")?;
                return serve_listen(path, addr, globals);
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }

    let closure = load(path, globals)?;
    let n = closure.node_count();
    if n == 0 {
        return Err("empty graph: nothing to serve".into());
    }
    let pairs: Vec<(NodeId, NodeId)> = (0..(4 * n).min(4096) as u64)
        .map(|k| {
            let s = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % n;
            let d = (k.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 32) as usize % n;
            (NodeId(s as u32), NodeId(d as u32))
        })
        .collect();
    let want = closure.reaches_batch(&pairs);

    if globals.shards.unwrap_or(1) > 1 {
        return serve_sharded(
            closure,
            &pairs,
            &want,
            readers,
            duration_ms,
            churn,
            globals,
        );
    }

    let service = ClosureService::start(closure, ServiceConfig::new());
    let mut reader = service.reader();
    if reader.reaches_batch(&pairs) != want {
        return Err("service snapshot answers diverge from the closure".into());
    }
    println!(
        "serving {n} nodes: {} probe pairs verified against the closure",
        pairs.len()
    );

    let stop = AtomicBool::new(false);
    let (per_reader, panicked) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let mut r = service.reader();
                let (stop, pairs) = (&stop, &pairs);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut probes = 0u64;
                    let mut max_stale = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        r.refresh().reaches_batch_into(pairs, &mut out);
                        probes += pairs.len() as u64;
                        max_stale = max_stale.max(r.staleness());
                    }
                    (probes, max_stale)
                })
            })
            .collect();
        let deadline = Instant::now() + Duration::from_millis(duration_ms);
        let mut k = 0u64;
        while Instant::now() < deadline {
            if churn {
                let batch: Vec<ServiceOp> = (0..64)
                    .map(|i| {
                        let node = NodeId(((k + i) % n as u64) as u32);
                        let other = NodeId(((k + i + 7) % n as u64) as u32);
                        // Any of these may skip (cycle, duplicate, missing
                        // arc) — that is part of the churn the service must
                        // absorb. Removals ride along since the scoped
                        // deletion recompute made them batch-friendly.
                        match (k + i) % 4 {
                            0 => ServiceOp::AddNode { parents: vec![node] },
                            1 | 2 => ServiceOp::AddEdge { src: node, dst: other },
                            _ => {
                                if (k + i) % 8 == 3 {
                                    ServiceOp::RemoveNode { node }
                                } else {
                                    ServiceOp::RemoveEdge { src: node, dst: other }
                                }
                            }
                        }
                    })
                    .collect();
                k += 64;
                service.submit_batch(batch).expect("service closed while harness submits");
                service.flush();
            } else {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        stop.store(true, Ordering::Relaxed);
        join_readers(handles)
    });
    if !panicked.is_empty() {
        return Err(format!(
            "reader thread(s) {panicked:?} panicked during serving \
             ({} of {readers} readers survived)",
            per_reader.len()
        ));
    }

    let total: u64 = per_reader.iter().map(|&(p, _)| p).sum();
    let max_stale = per_reader.iter().map(|&(_, s)| s).max().unwrap_or(0);
    let secs = duration_ms as f64 / 1000.0;
    println!(
        "readers {readers}: {total} probes in {secs:.2}s  ({:.0} probes/s, {:.0} per reader)",
        total as f64 / secs,
        total as f64 / secs / readers as f64
    );
    let (stats, _backend) = service.shutdown();
    println!(
        "writer: {} ops submitted, {} applied, {} skipped, {} snapshots published, \
         max observed staleness {max_stale} ops",
        stats.submitted, stats.applied, stats.skipped, stats.publishes
    );
    if let Some(v) = stats.audit_violation {
        return Err(format!("structural audit failed during serving: {v}"));
    }
    Ok(())
}

/// The `serve` benchmark on the sharded layer: the DAG is partitioned into
/// `--shards` pieces, answers are verified bit-identical against the
/// unsharded closure before any timing, then reader threads scatter-gather
/// batch probes while (optionally) churn fans out to the per-shard writers.
#[allow(clippy::too_many_arguments)]
fn serve_sharded(
    closure: CompressedClosure,
    pairs: &[(NodeId, NodeId)],
    want: &[bool],
    readers: usize,
    duration_ms: u64,
    churn: bool,
    globals: Globals,
) -> Result<(), String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};
    use tc_core::{ServiceConfig, ServiceOp, ShardedClosure, ShardedService};

    let shards = globals.shards.unwrap_or(1);
    let n = closure.node_count();
    let mut config = ClosureConfig::new().threads(globals.threads_or_serial());
    if let Some(scoped) = globals.scoped {
        config = config.scoped_deletes(scoped);
    }
    if let Some(pool) = globals.paged {
        // Each shard freezes its own out-of-core plane on its own pool.
        config = config.paged(pool);
    }
    if let Some(threshold) = globals.hybrid {
        config = config.hybrid(threshold);
    }
    let sharded =
        ShardedClosure::build(config, closure.graph(), shards).map_err(|e| e.to_string())?;
    if sharded.reaches_batch(pairs) != want {
        return Err("sharded answers diverge from the unsharded closure".into());
    }
    println!(
        "sharded {n} nodes into {} shards (sizes {:?}, {} cross arcs, boundary {}): \
         {} probe pairs verified against the unsharded closure",
        sharded.shard_count(),
        sharded.shard_sizes(),
        sharded.cross_arc_count(),
        sharded.boundary_size(),
        pairs.len()
    );

    let service = ShardedService::start(sharded, ServiceConfig::new());
    let mut reader = service.reader();
    if reader.reaches_batch(pairs) != want {
        return Err("sharded service snapshot answers diverge from the closure".into());
    }

    let stop = AtomicBool::new(false);
    let (per_reader, panicked) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                let mut r = service.reader();
                let (stop, pairs) = (&stop, pairs);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut probes = 0u64;
                    let mut max_stale = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        r.reaches_batch_into(pairs, &mut out);
                        probes += pairs.len() as u64;
                        max_stale = max_stale.max(r.staleness());
                    }
                    (probes, max_stale)
                })
            })
            .collect();
        let deadline = Instant::now() + Duration::from_millis(duration_ms);
        let mut k = 0u64;
        while Instant::now() < deadline {
            if churn {
                let batch: Vec<ServiceOp> = (0..64)
                    .map(|i| {
                        let node = NodeId(((k + i) % n as u64) as u32);
                        let other = NodeId(((k + i + 7) % n as u64) as u32);
                        match (k + i) % 4 {
                            0 => ServiceOp::AddNode { parents: vec![node] },
                            1 | 2 => ServiceOp::AddEdge { src: node, dst: other },
                            _ => {
                                if (k + i) % 8 == 3 {
                                    ServiceOp::RemoveNode { node }
                                } else {
                                    ServiceOp::RemoveEdge { src: node, dst: other }
                                }
                            }
                        }
                    })
                    .collect();
                k += 64;
                service.submit_batch(batch).expect("service closed while harness submits");
                service.flush();
            } else {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        stop.store(true, Ordering::Relaxed);
        join_readers(handles)
    });
    if !panicked.is_empty() {
        return Err(format!(
            "reader thread(s) {panicked:?} panicked during serving \
             ({} of {readers} readers survived)",
            per_reader.len()
        ));
    }

    let total: u64 = per_reader.iter().map(|&(p, _)| p).sum();
    let max_stale = per_reader.iter().map(|&(_, s)| s).max().unwrap_or(0);
    let secs = duration_ms as f64 / 1000.0;
    println!(
        "readers {readers}: {total} probes in {secs:.2}s  ({:.0} probes/s, {:.0} per reader)",
        total as f64 / secs,
        total as f64 / secs / readers as f64
    );
    let (stats, sc) = service.shutdown();
    println!(
        "front end: {} ops submitted, {} rejected, {} routed; shard writers: \
         {} applied, {} skipped; {} route publishes, max observed staleness {max_stale} ops",
        stats.submitted, stats.rejected, stats.routed, stats.applied, stats.skipped,
        stats.publishes
    );
    if let Some(v) = stats.audit_violation {
        return Err(format!("shard audit failed during serving: {v}"));
    }
    sc.audit()
        .map_err(|e| format!("sharded closure audit failed after shutdown: {e}"))?;
    Ok(())
}

/// Joins the benchmark's reader threads one by one, collecting the indices
/// of any that panicked instead of propagating the first panic — one
/// poisoned reader must not hide the fate of the others or leave the user
/// guessing which thread died.
fn join_readers<'scope>(
    handles: Vec<std::thread::ScopedJoinHandle<'scope, (u64, u64)>>,
) -> (Vec<(u64, u64)>, Vec<usize>) {
    let mut results = Vec::with_capacity(handles.len());
    let mut panicked = Vec::new();
    for (ix, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(r) => results.push(r),
            Err(_) => panicked.push(ix),
        }
    }
    (results, panicked)
}

/// `serve --listen ADDR`: run the network daemon instead of the in-process
/// benchmark. Nodes are addressed by string key (`n0`, `n1`, ... for the
/// initial graph); the daemon serves the line protocol until a client sends
/// the `shutdown` verb.
fn serve_listen(path: &str, addr: &str, globals: Globals) -> Result<(), String> {
    use tc_core::ShardedClosure;
    use tc_server::{Dict, Engine, EngineConfig, Server, ServerConfig};

    let closure = load(path, globals)?;
    let n = closure.node_count();
    if n == 0 {
        return Err("empty graph: nothing to serve".into());
    }
    let shards = globals.shards.unwrap_or(1);
    let mut config = ClosureConfig::new().threads(globals.threads_or_serial());
    if let Some(scoped) = globals.scoped {
        config = config.scoped_deletes(scoped);
    }
    if let Some(pool) = globals.paged {
        // Each shard freezes its own out-of-core plane on its own pool.
        config = config.paged(pool);
    }
    if let Some(threshold) = globals.hybrid {
        config = config.hybrid(threshold);
    }
    let sharded =
        ShardedClosure::build(config, closure.graph(), shards).map_err(|e| e.to_string())?;
    let engine = Engine::start(sharded, Dict::with_default_keys(n), EngineConfig::default());
    let server = Server::start(engine, addr, ServerConfig::default())
        .map_err(|e| format!("binding {addr}: {e}"))?;
    println!("serving {n} nodes ({shards} shard(s)) on {}", server.addr());
    println!("one request per line; try `ping`, `reaches n0 n1`, `stats`, `shutdown`");

    // Block until some client sends `shutdown` (which closes the engine);
    // the accept loop notices the closed engine and exits on its own.
    while !server.engine().is_closed() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let requests = server.requests();
    let panics = server.caught_panics();
    server
        .stop()
        .map_err(|e| format!("daemon shutdown: {e} ({requests} requests served)"))?;
    println!("shutdown: {requests} requests served, {panics} handler panic(s) caught");
    if panics > 0 {
        return Err(format!(
            "{panics} request handler(s) panicked (each answered with `err internal`)"
        ));
    }
    Ok(())
}

/// `kb <script> [--check]`: drive a fresh knowledge base through a command
/// script, echoing each command's answer. Command failures abort with the
/// offending line number; `--check` runs the naive-re-derivation
/// differential gate after the script.
fn kb(args: &[String]) -> Result<(), String> {
    use tc_kb::{KbCommand, KnowledgeBase};

    let path = arg(args, 1)?;
    let mut check = false;
    for flag in &args[2..] {
        match flag.as_str() {
            "--check" => check = true,
            other => return Err(format!("unknown kb flag {other:?}")),
        }
    }
    let text =
        String::from_utf8(read_input(path)?).map_err(|_| format!("{path} is not UTF-8"))?;
    let mut kb = KnowledgeBase::new();
    for (ix, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let answer = KbCommand::parse(line)
            .and_then(|cmd| cmd.execute(&mut kb))
            .map_err(|e| format!("{path}:{}: {line}: {e}", ix + 1))?;
        println!("{line} => {answer}");
    }
    if check {
        kb.check_against_naive()
            .map_err(|e| format!("differential check failed: {e}"))?;
        let s = kb.stats();
        println!(
            "check => consistent ({} concepts, {} asserted, {} derived, {} cycle-rejected, \
             {} derive-failed)",
            kb.concept_count(),
            s.asserted,
            s.derived,
            s.cycle_rejected,
            s.derive_failed
        );
    }
    Ok(())
}

fn fuzz(args: &[String], globals: Globals) -> Result<(), String> {
    let mut ops = 256usize;
    let mut seed = 0u64;
    let mut seeds = 1u64;
    let mut config = tc_fuzz::FuzzConfig {
        threads: globals.threads_or_serial(),
        scoped: globals.scoped.unwrap_or(true),
        // The global --hybrid flag arms the hybrid oracle in every freeze
        // the trace performs (combine with --freeze); the op stream itself
        // is unaffected, so seeds reproduce across thresholds.
        hybrid: globals.hybrid.map_or(u64::MAX, |t| t as u64),
        ..tc_fuzz::FuzzConfig::default()
    };
    let mut freeze = false;
    let mut serve = false;
    let mut delete_bias = false;
    let mut want_shrink = false;
    let mut codec = false;
    let mut kb_mode = false;
    // The global --paged flag doubles as the gen knob here: it mixes
    // paged-probe ops (full round trips through an eviction-forcing pool)
    // into the stream. The engine picks its own tiny pool, so the page
    // count itself is irrelevant to fuzzing.
    let paged = globals.paged.is_some();
    let mut out: Option<String> = None;
    let mut replay: Option<String> = None;

    let mut it = args.iter().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--ops" => ops = value("--ops")?.parse().map_err(|_| "invalid --ops")?,
            "--seed" => seed = value("--seed")?.parse().map_err(|_| "invalid --seed")?,
            "--seeds" => seeds = value("--seeds")?.parse().map_err(|_| "invalid --seeds")?,
            "--gap" => config.gap = value("--gap")?.parse().map_err(|_| "invalid --gap")?,
            "--reserve" => {
                config.reserve = value("--reserve")?.parse().map_err(|_| "invalid --reserve")?
            }
            "--merge" => config.merge = true,
            "--freeze" => freeze = true,
            "--serve" => serve = true,
            "--delete-bias" => delete_bias = true,
            "--shrink" => want_shrink = true,
            "--codec" => codec = true,
            "--kb" => kb_mode = true,
            "--out" => out = Some(value("--out")?.clone()),
            "--replay" => replay = Some(value("--replay")?.clone()),
            other => return Err(format!("unknown fuzz flag {other:?}")),
        }
    }
    let opts = tc_fuzz::CheckOptions {
        shards: globals.shards.unwrap_or(1),
        ..tc_fuzz::CheckOptions::default()
    };

    if codec {
        // Mutation mode: corrupt serialized closure streams instead of
        // churning update ops; `--seeds` counts mutated cases here. The
        // same seeds then mutate a save_paged image (ITC1 + PLN1 plane
        // section) probed through a 2-frame pool.
        let report = tc_fuzz::closure_campaign(seeds.max(1), seed);
        println!(
            "codec mutation campaign: {} cases — {} rejected, {} ok+verified, \
             {} ok-but-corrupt (re-signed trailers), {} panics",
            report.cases, report.rejected, report.ok_clean, report.ok_corrupt, report.panics
        );
        if report.failed() {
            return Err(format!(
                "decoder panicked on {} case(s); replay seeds {:?}",
                report.panics, report.panic_seeds
            ));
        }
        let report = tc_fuzz::paged_campaign(seeds.max(1), seed);
        println!(
            "paged-plane mutation campaign: {} cases — {} rejected, {} ok+verified, \
             {} ok-but-corrupt (re-signed headers), {} panics",
            report.cases, report.rejected, report.ok_clean, report.ok_corrupt, report.panics
        );
        if report.failed() {
            return Err(format!(
                "paged open/probe panicked on {} case(s); replay seeds {:?}",
                report.panics, report.panic_seeds
            ));
        }
        let report = tc_fuzz::taxonomy_campaign(seeds.max(1), seed);
        println!(
            "taxonomy (ITCK) mutation campaign: {} cases — {} rejected, {} ok+verified, \
             {} ok-but-corrupt (re-signed interior trailers), {} panics",
            report.cases, report.rejected, report.ok_clean, report.ok_corrupt, report.panics
        );
        if report.failed() {
            return Err(format!(
                "taxonomy decoder panicked on {} case(s); replay seeds {:?}",
                report.panics, report.panic_seeds
            ));
        }
        return Ok(());
    }

    if kb_mode {
        // Knowledge-base differential mode: seeded campaigns of rule-driven
        // assert/retract/feature churn, each checkpointed against a naive
        // from-scratch re-derivation; `--ops` sets the steps per campaign.
        for s in seed..seed.saturating_add(seeds.max(1)) {
            let report = tc_fuzz::run_kb_campaign(&tc_fuzz::KbFuzzConfig {
                steps: ops as u64,
                seed: s,
                ..tc_fuzz::KbFuzzConfig::default()
            })?;
            println!(
                "kb seed {s}: ok — {} asserts, {} retracts, {} features, {} derived arcs, \
                 {} differential checkpoints",
                report.asserts, report.retracts, report.features, report.derived, report.checks
            );
        }
        return Ok(());
    }

    if let Some(path) = replay {
        let text = String::from_utf8(read_input(&path)?)
            .map_err(|_| format!("{path} is not UTF-8"))?;
        let trace = tc_fuzz::OpTrace::parse(&text)?;
        return match tc_fuzz::run_trace_catching(&trace, &opts) {
            Ok(r) => {
                println!(
                    "replay {path}: ok — {} applied, {} skipped, {} oracle checks, \
                     {} nodes / {} arcs at end",
                    r.applied, r.skipped, r.oracle_checks, r.final_nodes, r.final_edges
                );
                Ok(())
            }
            Err(v) => Err(format!("replay {path}: {v}")),
        };
    }

    for s in seed..seed.saturating_add(seeds) {
        let gcfg = tc_fuzz::GenConfig { ops, seed: s, freeze, serve, delete_bias, paged, config };
        let trace = tc_fuzz::generate(&gcfg);
        match tc_fuzz::run_trace_catching(&trace, &opts) {
            Ok(r) => println!(
                "seed {s}: ok — {} applied, {} skipped, {} oracle checks, \
                 {} nodes / {} arcs at end",
                r.applied, r.skipped, r.oracle_checks, r.final_nodes, r.final_edges
            ),
            Err(v) => {
                eprintln!("seed {s}: FAILED — {v}");
                if want_shrink {
                    // Candidate replays of a crashing trace panic on
                    // purpose; keep stderr readable while minimizing.
                    let prev = std::panic::take_hook();
                    std::panic::set_hook(Box::new(|_| {}));
                    let shrunk = tc_fuzz::shrink(&trace, &opts);
                    std::panic::set_hook(prev);
                    let text = shrunk.trace.to_text();
                    eprintln!(
                        "shrunk to {} ops in {} replays; reproducer:",
                        shrunk.trace.ops.len(),
                        shrunk.attempts
                    );
                    print!("{text}");
                    if let Some(path) = &out {
                        std::fs::write(path, &text)
                            .map_err(|e| format!("writing {path}: {e}"))?;
                        eprintln!("reproducer written to {path}");
                    }
                }
                return Err(format!("fuzzing failed at seed {s}"));
            }
        }
    }
    Ok(())
}

fn gen(args: &[String]) -> Result<(), String> {
    let nodes: usize = arg(args, 1)?
        .parse()
        .map_err(|_| "invalid node count".to_string())?;
    let degree: f64 = arg(args, 2)?
        .parse()
        .map_err(|_| "invalid degree".to_string())?;
    let seed: u64 = args.get(3).map_or(Ok(0), |s| {
        s.parse().map_err(|_| "invalid seed".to_string())
    })?;
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes,
        avg_out_degree: degree,
        seed,
    });
    print!("{}", edgelist::write(&g));
    Ok(())
}
