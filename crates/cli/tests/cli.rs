//! End-to-end tests driving the `interval-tc` binary as a subprocess.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_interval-tc"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interval_tc_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn gen_stats_query_pipeline() {
    let dir = tmpdir("pipeline");
    let edges = dir.join("g.txt");

    let out = bin().args(["gen", "30", "2.0", "5"]).output().unwrap();
    assert!(out.status.success());
    std::fs::write(&edges, &out.stdout).unwrap();

    let out = bin().args(["stats", edges.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("nodes                 30"));
    assert!(text.contains("compressed units"));
    assert!(text.contains("full closure units"));

    // A reflexive query always succeeds.
    let out = bin()
        .args(["query", edges.to_str().unwrap(), "3", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(stdout(&out).contains("3 ->* 3: true"));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn compress_then_query_closure_file() {
    let dir = tmpdir("compress");
    let edges = dir.join("g.txt");
    let itc = dir.join("g.itc");
    std::fs::write(&edges, "0 1\n1 2\n2 3\n").unwrap();

    let out = bin()
        .args(["compress", edges.to_str().unwrap(), itc.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(itc.exists());

    // Query straight from the compressed artifact (no rebuild).
    let out = bin()
        .args(["query", itc.to_str().unwrap(), "0", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(stdout(&out).contains("true"));

    // Unreachable pairs exit non-zero.
    let out = bin()
        .args(["query", itc.to_str().unwrap(), "3", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stdout(&out).contains("false"));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn successors_and_predecessors() {
    let dir = tmpdir("succ");
    let edges = dir.join("g.txt");
    std::fs::write(&edges, "0 1\n0 2\n1 3\n2 3\n").unwrap();

    let out = bin()
        .args(["successors", edges.to_str().unwrap(), "0"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(stdout(&out), "0\n1\n2\n3\n");

    let out = bin()
        .args(["predecessors", edges.to_str().unwrap(), "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(stdout(&out), "0\n1\n2\n3\n");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn path_prints_a_witness() {
    let dir = tmpdir("path");
    let edges = dir.join("g.txt");
    std::fs::write(&edges, "0 1\n1 2\n0 3\n").unwrap();
    let out = bin()
        .args(["path", edges.to_str().unwrap(), "0", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(stdout(&out), "0 -> 1 -> 2\n");
    let out = bin()
        .args(["path", edges.to_str().unwrap(), "3", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("no path"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn info_reports_metrics_even_for_cyclic_graphs() {
    let dir = tmpdir("info");
    let edges = dir.join("g.txt");
    std::fs::write(&edges, "0 1\n1 0\n1 2\n").unwrap();
    // stats would fail (cyclic), info must not.
    let out = bin().args(["info", edges.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("acyclic          false"));
    assert!(text.contains("SCCs             2"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn dot_renders() {
    let dir = tmpdir("dot");
    let edges = dir.join("g.txt");
    std::fs::write(&edges, "0 1\n").unwrap();
    let out = bin().args(["dot", edges.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("0 -> 1"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn serve_command_verifies_and_reports_throughput() {
    let dir = tmpdir("serve");
    let edges = dir.join("g.txt");
    let out = bin().args(["gen", "60", "2.0", "9"]).output().unwrap();
    assert!(out.status.success());
    std::fs::write(&edges, &out.stdout).unwrap();

    let out = bin()
        .args([
            "serve",
            edges.to_str().unwrap(),
            "--readers",
            "2",
            "--duration-ms",
            "150",
            "--churn",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("verified against the closure"), "{text}");
    assert!(text.contains("probes/s"), "{text}");
    assert!(text.contains("snapshots published"), "{text}");

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn serve_shards_flag_in_both_spellings() {
    let dir = tmpdir("serve_shards");
    let edges = dir.join("g.txt");
    let out = bin().args(["gen", "60", "2.0", "9"]).output().unwrap();
    assert!(out.status.success());
    std::fs::write(&edges, &out.stdout).unwrap();

    // `--shards N` spelling, with churn fanned out to the per-shard writers.
    let out = bin()
        .args([
            "serve",
            edges.to_str().unwrap(),
            "--readers",
            "2",
            "--duration-ms",
            "150",
            "--churn",
            "--shards",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("into 2 shards"), "{text}");
    assert!(text.contains("verified against the unsharded closure"), "{text}");
    assert!(text.contains("probes/s"), "{text}");
    assert!(text.contains("front end:"), "{text}");

    // `--shards=N` spelling, read-only.
    let out = bin()
        .args([
            "serve",
            edges.to_str().unwrap(),
            "--duration-ms",
            "100",
            "--shards=3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("into 3 shards"), "{text}");

    // `--shards 1` is the unsharded serving path, unchanged.
    let out = bin()
        .args([
            "serve",
            edges.to_str().unwrap(),
            "--duration-ms",
            "100",
            "--shards",
            "1",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("snapshots published"), "{text}");
    assert!(!text.contains("front end:"), "{text}");

    // Zero and garbage are rejected up front.
    let out = bin()
        .args(["serve", edges.to_str().unwrap(), "--shards", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--shards must be at least 1"));

    let out = bin()
        .args(["serve", edges.to_str().unwrap(), "--shards", "many"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("invalid --shards"));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn fuzz_shards_flag_replays_through_the_sharded_service() {
    let out = bin()
        .args(["fuzz", "--ops", "60", "--seed", "3", "--shards", "2", "--reserve", "4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("ok"));
}

#[test]
fn fuzz_serve_flag_runs_clean() {
    let out = bin()
        .args(["fuzz", "--ops", "80", "--seed", "2", "--serve", "--reserve", "4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("ok"));
}

#[test]
fn fuzz_delete_bias_runs_under_both_deletion_recomputes() {
    // The same deletion-heavy seed must come out clean with the scoped
    // affected-region recompute (default) and with the historical global
    // sweep selected by the global flag, in both spellings.
    let out = bin()
        .args(["fuzz", "--ops", "100", "--seed", "4", "--delete-bias", "--reserve", "4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("ok"));

    let out = bin()
        .args([
            "fuzz",
            "--ops",
            "100",
            "--seed",
            "4",
            "--delete-bias",
            "--reserve",
            "4",
            "--scoped-deletes",
            "off",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("ok"));

    let out = bin()
        .args(["fuzz", "--ops", "40", "--seed", "4", "--scoped-deletes=on"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));

    let out = bin()
        .args(["fuzz", "--ops", "10", "--scoped-deletes", "sideways"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("invalid --scoped-deletes"));
}

#[test]
fn paged_flag_round_trips_compress_query_serve_and_fuzz() {
    let dir = tmpdir("paged");
    let edges = dir.join("g.txt");
    let itc = dir.join("g.itc");
    let out = bin().args(["gen", "80", "2.0", "7"]).output().unwrap();
    assert!(out.status.success());
    std::fs::write(&edges, &out.stdout).unwrap();

    // compress --paged appends the PLN1 plane section ...
    let out = bin()
        .args(["compress", edges.to_str().unwrap(), itc.to_str().unwrap(), "--paged", "4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("instant restart"), "{}", stderr(&out));
    let image = std::fs::read(&itc).unwrap();
    assert_eq!(&image[image.len() - 4..], b"PLN1");

    // ... and every command still reads the image, resident or paged
    // through a deliberately tiny (eviction-forcing) pool. Answers must
    // match the pure edge-list build.
    for probe in [
        vec!["successors", itc.to_str().unwrap(), "0"],
        vec!["successors", itc.to_str().unwrap(), "0", "--paged=2", "--frozen"],
        vec!["successors", edges.to_str().unwrap(), "0"],
    ] {
        let out = bin().args(&probe).output().unwrap();
        assert!(out.status.success(), "{probe:?}: {}", stderr(&out));
    }
    let resident = bin().args(["successors", itc.to_str().unwrap(), "0"]).output().unwrap();
    let paged = bin()
        .args(["successors", itc.to_str().unwrap(), "0", "--paged=2", "--frozen"])
        .output()
        .unwrap();
    assert_eq!(stdout(&resident), stdout(&paged));

    // The serving benchmark publishes out-of-core snapshots and still
    // verifies every spot-check against the closure.
    let out = bin()
        .args([
            "serve",
            edges.to_str().unwrap(),
            "--duration-ms",
            "100",
            "--paged",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("verified against the closure"), "{}", stdout(&out));

    // Fuzz: --paged mixes paged-probe ops into the stream.
    let out = bin()
        .args(["fuzz", "--ops", "60", "--seed", "5", "--reserve", "4", "--paged", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("ok"));

    // Zero and garbage pool sizes are rejected up front.
    let out = bin()
        .args(["stats", edges.to_str().unwrap(), "--paged", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--paged must be at least 1"));
    let out = bin()
        .args(["stats", edges.to_str().unwrap(), "--paged", "lots"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("invalid --paged"));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn fuzz_codec_runs_both_mutation_campaigns() {
    let out = bin()
        .args(["fuzz", "--codec", "--seeds", "48", "--seed", "11"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("codec mutation campaign: 48 cases"), "{text}");
    assert!(text.contains("paged-plane mutation campaign: 48 cases"), "{text}");
    assert!(text.contains("0 panics"), "{text}");
}

#[test]
fn errors_are_reported() {
    // Unknown command.
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
    assert!(stderr(&out).contains("usage"));

    // Missing file.
    let out = bin().args(["stats", "/nonexistent/file"]).output().unwrap();
    assert!(!out.status.success());

    // Cyclic input.
    let dir = tmpdir("cycle");
    let edges = dir.join("g.txt");
    std::fs::write(&edges, "0 1\n1 0\n").unwrap();
    let out = bin().args(["stats", edges.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cycle"));

    // Node out of range.
    std::fs::write(&edges, "0 1\n").unwrap();
    let out = bin()
        .args(["query", edges.to_str().unwrap(), "0", "99"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("out of range"));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn stdin_input() {
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = bin()
        .args(["successors", "-", "0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"0 1\n1 2\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(stdout(&out), "0\n1\n2\n");
}
