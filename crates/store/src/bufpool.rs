//! An LRU buffer pool over the [`Pager`].

use std::collections::HashMap;

use crate::{PageId, Pager};

/// Hit/miss statistics of a buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fetches served from the pool.
    pub hits: u64,
    /// Fetches that had to go to the pager (disk reads).
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl PoolStats {
    /// Hit ratio in `[0, 1]` (`NaN` with no fetches).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        self.hits as f64 / total as f64
    }
}

/// A fixed-capacity LRU cache of page images.
///
/// Read-only (the stores in this crate are build-once/query-many, like the
/// paper's materialized closure), so eviction never writes back.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// page -> (image, last-use tick)
    frames: HashMap<PageId, (Box<[u8]>, u64)>,
    tick: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: HashMap::with_capacity(capacity),
            tick: 0,
            stats: PoolStats::default(),
        }
    }

    /// Fetches a page through the pool, touching the pager only on a miss.
    pub fn fetch<'a>(&'a mut self, pager: &Pager, id: PageId) -> &'a [u8] {
        self.tick += 1;
        let tick = self.tick;
        if self.frames.contains_key(&id) {
            self.stats.hits += 1;
            let entry = self.frames.get_mut(&id).expect("checked above");
            entry.1 = tick;
            return &entry.0;
        }
        self.stats.misses += 1;
        if self.frames.len() >= self.capacity {
            let victim = *self
                .frames
                .iter()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(id, _)| id)
                .expect("pool is non-empty when full");
            self.frames.remove(&victim);
            self.stats.evictions += 1;
        }
        let image: Box<[u8]> = pager.read(id).into();
        &self
            .frames
            .entry(id)
            .or_insert((image, tick))
            .0
    }

    /// Access statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Clears cached pages and statistics (for cold-cache measurements).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.stats = PoolStats::default();
        self.tick = 0;
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk_with(n: usize) -> Pager {
        let mut pager = Pager::with_page_size(64);
        for i in 0..n {
            let id = pager.alloc();
            let mut img = vec![0u8; 64];
            img[0] = i as u8;
            pager.write(id, &img);
        }
        pager.reset_counters();
        pager
    }

    #[test]
    fn hits_avoid_disk() {
        let pager = disk_with(2);
        let mut pool = BufferPool::new(2);
        assert_eq!(pool.fetch(&pager, PageId(0))[0], 0);
        assert_eq!(pool.fetch(&pager, PageId(0))[0], 0);
        assert_eq!(pool.stats(), PoolStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(pager.reads(), 1, "second fetch never touched the pager");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pager = disk_with(3);
        let mut pool = BufferPool::new(2);
        pool.fetch(&pager, PageId(0));
        pool.fetch(&pager, PageId(1));
        pool.fetch(&pager, PageId(0)); // 1 is now LRU
        pool.fetch(&pager, PageId(2)); // evicts 1
        assert_eq!(pool.stats().evictions, 1);
        // 0 must still be resident.
        let before = pager.reads();
        pool.fetch(&pager, PageId(0));
        assert_eq!(pager.reads(), before, "page 0 survived eviction");
        // 1 must not be.
        pool.fetch(&pager, PageId(1));
        assert_eq!(pager.reads(), before + 1);
    }

    #[test]
    fn clear_resets_everything() {
        let pager = disk_with(1);
        let mut pool = BufferPool::new(4);
        pool.fetch(&pager, PageId(0));
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
        pool.fetch(&pager, PageId(0));
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn hit_ratio() {
        let pager = disk_with(1);
        let mut pool = BufferPool::new(1);
        pool.fetch(&pager, PageId(0));
        pool.fetch(&pager, PageId(0));
        pool.fetch(&pager, PageId(0));
        assert!((pool.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }
}
