//! Page-resident reachability stores.

use bytes::{Buf, BufMut};
use tc_core::CompressedClosure;
use tc_graph::{BitSet, DiGraph, NodeId};

use crate::{BlobStore, BufferPool};

/// The compressed closure on disk: one interval-list record per node, plus
/// an in-memory postorder index (the analogue of a key index a DBMS would
/// keep hot).
///
/// A reachability query reads the source node's record — typically a single
/// page — and does one binary-search-equivalent scan of its few intervals.
#[derive(Debug)]
pub struct LabelStore {
    blob: BlobStore,
    post: Vec<u64>,
    /// Whether endpoints are stored as u64 (`true`) or u32 (`false`). A
    /// closure built with `gap(1)` — the natural choice for a static disk
    /// image — fits in u32, matching the 4-byte entries of successor lists.
    wide: bool,
}

impl LabelStore {
    /// Serializes the closure's labels onto a fresh disk. Endpoint width is
    /// chosen automatically from the largest postorder number.
    pub fn build(closure: &CompressedClosure, page_size: usize) -> Self {
        let n = closure.node_count();
        let wide = closure
            .graph()
            .nodes()
            .any(|v| closure.intervals(v).iter().any(|iv| iv.hi() > u32::MAX as u64));
        let mut records = Vec::with_capacity(n);
        let mut post = Vec::with_capacity(n);
        for v in closure.graph().nodes() {
            post.push(closure.post_number(v));
            let set = closure.intervals(v);
            let width = if wide { 16 } else { 8 };
            let mut rec = Vec::with_capacity(4 + width * set.count());
            rec.put_u32_le(set.count() as u32);
            for iv in set.iter() {
                if wide {
                    rec.put_u64_le(iv.lo());
                    rec.put_u64_le(iv.hi());
                } else {
                    rec.put_u32_le(iv.lo() as u32);
                    rec.put_u32_le(iv.hi() as u32);
                }
            }
            records.push(rec);
        }
        LabelStore {
            blob: BlobStore::build(&records, page_size),
            post,
            wide,
        }
    }

    /// Disk-resident reachability query.
    pub fn reaches(&self, src: NodeId, dst: NodeId, pool: &mut BufferPool) -> bool {
        let target = self.post[dst.index()];
        let rec = self.blob.read(src.index(), pool);
        let mut buf = rec.as_slice();
        let count = buf.get_u32_le();
        for _ in 0..count {
            let (lo, hi) = if self.wide {
                (buf.get_u64_le(), buf.get_u64_le())
            } else {
                (buf.get_u32_le() as u64, buf.get_u32_le() as u64)
            };
            if lo <= target && target <= hi {
                return true;
            }
        }
        false
    }

    /// The underlying record store (counters, page counts).
    pub fn blob(&self) -> &BlobStore {
        &self.blob
    }
}

/// The full materialized transitive closure on disk: one sorted successor
/// list per node. Long lists span many pages — the storage *and* I/O cost
/// the compression scheme is built to avoid.
#[derive(Debug)]
pub struct TcListStore {
    blob: BlobStore,
}

impl TcListStore {
    /// Materializes the closure of `g` and serializes the successor lists.
    pub fn build(g: &DiGraph, page_size: usize) -> Self {
        let rows = tc_graph::traverse::closure_rows(g);
        let records: Vec<Vec<u8>> = rows
            .iter()
            .enumerate()
            .map(|(ix, row)| {
                let succ: Vec<u32> = row
                    .iter()
                    .filter(|&v| v != ix)
                    .map(|v| v as u32)
                    .collect();
                let mut rec = Vec::with_capacity(4 + 4 * succ.len());
                rec.put_u32_le(succ.len() as u32);
                for s in succ {
                    rec.put_u32_le(s);
                }
                rec
            })
            .collect();
        TcListStore {
            blob: BlobStore::build(&records, page_size),
        }
    }

    /// Disk-resident reachability query: reads the whole successor record
    /// and binary-searches it.
    pub fn reaches(&self, src: NodeId, dst: NodeId, pool: &mut BufferPool) -> bool {
        if src == dst {
            return true;
        }
        let rec = self.blob.read(src.index(), pool);
        let mut buf = rec.as_slice();
        let count = buf.get_u32_le() as usize;
        let mut succ = Vec::with_capacity(count);
        for _ in 0..count {
            succ.push(buf.get_u32_le());
        }
        succ.binary_search(&dst.0).is_ok()
    }

    /// The underlying record store.
    pub fn blob(&self) -> &BlobStore {
        &self.blob
    }
}

/// The base relation's adjacency lists on disk, queried by pointer chasing —
/// "the current approach" (§2.1). Every node visited during the DFS costs a
/// record read.
#[derive(Debug)]
pub struct AdjStore {
    blob: BlobStore,
    nodes: usize,
}

impl AdjStore {
    /// Serializes `g`'s adjacency onto a fresh disk.
    pub fn build(g: &DiGraph, page_size: usize) -> Self {
        let records: Vec<Vec<u8>> = g
            .nodes()
            .map(|v| {
                let succ = g.successors(v);
                let mut rec = Vec::with_capacity(4 + 4 * succ.len());
                rec.put_u32_le(succ.len() as u32);
                for s in succ {
                    rec.put_u32_le(s.0);
                }
                rec
            })
            .collect();
        AdjStore {
            blob: BlobStore::build(&records, page_size),
            nodes: g.node_count(),
        }
    }

    /// Disk-resident DFS reachability query.
    pub fn reaches(&self, src: NodeId, dst: NodeId, pool: &mut BufferPool) -> bool {
        if src == dst {
            return true;
        }
        let mut visited = BitSet::new(self.nodes);
        visited.insert(src.index());
        let mut stack = vec![src];
        while let Some(node) = stack.pop() {
            let rec = self.blob.read(node.index(), pool);
            let mut buf = rec.as_slice();
            let count = buf.get_u32_le();
            for _ in 0..count {
                let succ = NodeId(buf.get_u32_le());
                if succ == dst {
                    return true;
                }
                if visited.insert(succ.index()) {
                    stack.push(succ);
                }
            }
        }
        false
    }

    /// The underlying record store.
    pub fn blob(&self) -> &BlobStore {
        &self.blob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::generators;

    fn sample_graph() -> DiGraph {
        generators::random_dag(generators::RandomDagConfig {
            nodes: 60,
            avg_out_degree: 2.5,
            seed: 13,
        })
    }

    #[test]
    fn all_three_stores_agree_with_dfs() {
        let g = sample_graph();
        let closure = CompressedClosure::build(&g).unwrap();
        let labels = LabelStore::build(&closure, 256);
        let tclists = TcListStore::build(&g, 256);
        let adj = AdjStore::build(&g, 256);
        let mut p1 = BufferPool::new(16);
        let mut p2 = BufferPool::new(16);
        let mut p3 = BufferPool::new(16);
        for u in g.nodes() {
            let truth = tc_graph::traverse::reachable_set(&g, u);
            for v in g.nodes() {
                let expect = truth.contains(v.index());
                assert_eq!(labels.reaches(u, v, &mut p1), expect, "labels ({u:?},{v:?})");
                assert_eq!(tclists.reaches(u, v, &mut p2), expect, "tclists ({u:?},{v:?})");
                assert_eq!(adj.reaches(u, v, &mut p3), expect, "adj ({u:?},{v:?})");
            }
        }
    }

    #[test]
    fn label_queries_touch_few_pages() {
        let g = sample_graph();
        let closure = CompressedClosure::build(&g).unwrap();
        let labels = LabelStore::build(&closure, 4096);
        // Cold cache, one query:
        let mut pool = BufferPool::new(1);
        labels.reaches(NodeId(0), NodeId(59), &mut pool);
        assert!(
            labels.blob().pager().reads() <= 2,
            "interval record should span at most a couple of pages"
        );
    }

    #[test]
    fn pointer_chasing_costs_scale_with_path_visits() {
        // A long chain: querying end-to-end reachability by pointer chasing
        // must read one record per visited node (dozens of distinct pages),
        // while the label store reads exactly one page.
        let g = generators::chain(5000);
        let closure = CompressedClosure::build(&g).unwrap();
        let labels = LabelStore::build(&closure, 256);
        let adj = AdjStore::build(&g, 256);

        let mut cold = BufferPool::new(1); // capacity 1 = effectively no caching
        adj.reaches(NodeId(0), NodeId(4999), &mut cold);
        let chasing_reads = adj.blob().pager().reads();

        let mut cold = BufferPool::new(1);
        labels.reaches(NodeId(0), NodeId(4999), &mut cold);
        let label_reads = labels.blob().pager().reads();

        assert!(
            chasing_reads > 50 * label_reads,
            "chasing {chasing_reads} vs labels {label_reads}"
        );
        assert_eq!(label_reads, 1);
    }

    #[test]
    fn closure_lists_span_many_pages_on_dense_graphs() {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 300,
            avg_out_degree: 4.0,
            seed: 3,
        });
        let tclists = TcListStore::build(&g, 256);
        // gap(1) keeps numbers small, so endpoints pack as u32 — the natural
        // encoding for a static disk image.
        let closure = tc_core::ClosureConfig::new().gap(1).build(&g).unwrap();
        let labels = LabelStore::build(&closure, 256);
        // Total footprint: the compressed labels occupy fewer pages.
        assert!(
            labels.blob().page_count() < tclists.blob().page_count(),
            "labels {} pages vs closure lists {} pages",
            labels.blob().page_count(),
            tclists.blob().page_count()
        );
    }
}
