//! The simulated disk: fixed-size pages with access counters.

use std::cell::Cell;

/// Default page size: 4 KiB, the classic database page.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Identifier of a page on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// A page-granular "disk". Every read and write is counted; the experiment
/// harness reads the counters to compare I/O traffic across storage layouts.
#[derive(Debug)]
pub struct Pager {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
    reads: Cell<u64>,
    writes: Cell<u64>,
}

impl Pager {
    /// Creates an empty disk with the [`DEFAULT_PAGE_SIZE`].
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Creates an empty disk with a custom page size (must be ≥ 64 bytes).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size {page_size} unrealistically small");
        Pager {
            page_size,
            pages: Vec::new(),
            reads: Cell::new(0),
            writes: Cell::new(0),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Allocates a zeroed page.
    pub fn alloc(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u32);
        self.pages.push(vec![0u8; self.page_size].into_boxed_slice());
        id
    }

    /// Writes a full page image. Counted as one disk write.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page, or the page is unknown.
    pub fn write(&mut self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.page_size, "partial page write");
        self.writes.set(self.writes.get() + 1);
        self.pages[id.0 as usize].copy_from_slice(data);
    }

    /// Reads a page. Counted as one disk read.
    pub fn read(&self, id: PageId) -> &[u8] {
        self.reads.set(self.reads.get() + 1);
        &self.pages[id.0 as usize]
    }

    /// Total disk reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Total disk writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Resets both counters (e.g. after the build phase, before measuring a
    /// query workload).
    pub fn reset_counters(&self) {
        self.reads.set(0);
        self.writes.set(0);
    }
}

impl Default for Pager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut pager = Pager::with_page_size(128);
        let id = pager.alloc();
        let mut img = vec![0u8; 128];
        img[0] = 0xAB;
        img[127] = 0xCD;
        pager.write(id, &img);
        let back = pager.read(id);
        assert_eq!(back[0], 0xAB);
        assert_eq!(back[127], 0xCD);
        assert_eq!(pager.reads(), 1);
        assert_eq!(pager.writes(), 1);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut pager = Pager::with_page_size(64);
        let a = pager.alloc();
        let b = pager.alloc();
        pager.read(a);
        pager.read(b);
        pager.read(a);
        assert_eq!(pager.reads(), 3);
        pager.reset_counters();
        assert_eq!(pager.reads(), 0);
        assert_eq!(pager.page_count(), 2);
    }

    #[test]
    #[should_panic(expected = "partial page write")]
    fn partial_write_rejected() {
        let mut pager = Pager::with_page_size(64);
        let id = pager.alloc();
        pager.write(id, &[0u8; 10]);
    }

    #[test]
    #[should_panic(expected = "unrealistically small")]
    fn tiny_page_size_rejected() {
        let _ = Pager::with_page_size(8);
    }
}
