//! Paged secondary storage: pager, buffer pool, and page-resident stores.
//!
//! The paper motivates compression with I/O: "in the case of large
//! relations, the information will reside on secondary storage, and hence we
//! need to minimize I/O traffic" (§2.2). This crate supplies the storage
//! substrate: a [`Pager`] is a page-granular disk — either an in-memory
//! simulation with read/write counters, or a real `File` addressed with
//! `pread`/`pwrite` (optionally windowed to a section of a larger stream) —
//! and a [`BufferPool`] adds LRU caching with hit/miss statistics and
//! [`PagePin`] guards that keep a frame's bytes valid across eviction.
//!
//! Two layers build on it. The **paged query plane** in `tc-core`
//! (`PagedPlane`) serves frozen-closure reachability straight from a `PLN1`
//! file section through the pool, so graphs larger than RAM stay queryable.
//! And three page-resident stores replay the paper's §3.3 storage-layout
//! comparison, with every page touch counted:
//!
//! * [`LabelStore`] — the compressed closure's interval records; a
//!   reachability query typically costs **one** page read.
//! * [`TcListStore`] — the full materialized closure as successor lists;
//!   a membership query scans a list that may span many pages.
//! * [`AdjStore`] — the base relation's adjacency lists; answering by
//!   pointer chasing reads one record per visited node.
//! * [`IndexedLabelStore`] — the fully cold variant: a page-resident
//!   [`BTreeDirectory`] replaces the in-memory record directory, so a
//!   query's *entire* access path (directory descent + record pages) is
//!   counted I/O.
//!
//! The `io_costs` experiment binary in `tc-bench` drives all three over the
//! same query mix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod blob;
mod btree;
mod stores;

pub use blob::BlobStore;
pub use btree::{BTreeDirectory, IndexedLabelStore};
// The pager and buffer pool live in the dependency-free `tc-pager` crate
// (so `tc-core`'s paged plane can use them without a cycle); re-exported
// here unchanged.
pub use tc_pager::{BufferPool, PageId, PagePin, Pager, PoolStats, DEFAULT_PAGE_SIZE};
pub use stores::{AdjStore, LabelStore, TcListStore};
