//! Paged secondary-storage simulation.
//!
//! The paper motivates compression with I/O: "in the case of large
//! relations, the information will reside on secondary storage, and hence we
//! need to minimize I/O traffic" (§2.2). This crate makes that claim
//! measurable: a [`Pager`] simulates a page-granular disk with read/write
//! counters, a [`BufferPool`] adds LRU caching with hit/miss statistics, and
//! three page-resident stores answer reachability queries while every page
//! touch is counted:
//!
//! * [`LabelStore`] — the compressed closure's interval records; a
//!   reachability query typically costs **one** page read.
//! * [`TcListStore`] — the full materialized closure as successor lists;
//!   a membership query scans a list that may span many pages.
//! * [`AdjStore`] — the base relation's adjacency lists; answering by
//!   pointer chasing reads one record per visited node.
//! * [`IndexedLabelStore`] — the fully cold variant: a page-resident
//!   [`BTreeDirectory`] replaces the in-memory record directory, so a
//!   query's *entire* access path (directory descent + record pages) is
//!   counted I/O.
//!
//! The `io_costs` experiment binary in `tc-bench` drives all three over the
//! same query mix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod blob;
mod btree;
mod bufpool;
mod pager;
mod stores;

pub use blob::BlobStore;
pub use btree::{BTreeDirectory, IndexedLabelStore};
pub use bufpool::{BufferPool, PoolStats};
pub use pager::{PageId, Pager, DEFAULT_PAGE_SIZE};
pub use stores::{AdjStore, LabelStore, TcListStore};
