//! A page-resident B+tree directory.
//!
//! The [`crate::LabelStore`] keeps its node → record directory in memory,
//! which is fair for a hot index but understates I/O for a cold database.
//! [`BTreeDirectory`] puts the directory itself on pages — a static,
//! bulk-loaded B+tree — so a lookup pays for its descent like any other
//! disk structure, and [`IndexedLabelStore`] combines it with the record
//! blob for a fully disk-resident reachability index: every byte consulted
//! by a query is behind a counted page fetch.

use bytes::{Buf, BufMut};
use tc_core::CompressedClosure;
use tc_graph::NodeId;

use crate::{BlobStore, BufferPool, PageId, Pager};

/// Byte width of a leaf entry: key u32 + offset u64 + length u32.
const LEAF_ENTRY: usize = 16;
/// Byte width of an internal entry: separator key u32 + child page u32.
const INNER_ENTRY: usize = 8;
/// Per-page header: entry count u16.
const HEADER: usize = 2;

/// A static, bulk-loaded B+tree mapping `u32` keys to `(offset, length)`
/// record extents, stored entirely on pages.
#[derive(Debug)]
pub struct BTreeDirectory {
    pager: Pager,
    root: PageId,
    height: usize, // 1 = root is a leaf
    entries: usize,
}

impl BTreeDirectory {
    /// Bulk-loads the tree from entries sorted by key.
    ///
    /// # Panics
    ///
    /// Panics if the keys are not strictly ascending.
    pub fn build(entries: &[(u32, u64, u32)], page_size: usize) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "directory keys must be strictly ascending"
        );
        let mut pager = Pager::with_page_size(page_size);
        let leaf_cap = (page_size - HEADER) / LEAF_ENTRY;
        let inner_cap = (page_size - HEADER) / INNER_ENTRY;
        assert!(leaf_cap >= 2 && inner_cap >= 2, "page size too small for B+tree");

        // Leaf level.
        let mut level: Vec<(u32, PageId)> = Vec::new(); // (first key, page)
        if entries.is_empty() {
            let id = pager.alloc();
            pager.write(id, &vec![0u8; page_size]);
            level.push((0, id));
        }
        for chunk in entries.chunks(leaf_cap) {
            let mut img = Vec::with_capacity(page_size);
            img.put_u16_le(chunk.len() as u16);
            for &(key, off, len) in chunk {
                img.put_u32_le(key);
                img.put_u64_le(off);
                img.put_u32_le(len);
            }
            img.resize(page_size, 0);
            let id = pager.alloc();
            pager.write(id, &img);
            level.push((chunk[0].0, id));
        }

        // Internal levels until a single root remains.
        let mut height = 1;
        while level.len() > 1 {
            let mut next: Vec<(u32, PageId)> = Vec::new();
            for chunk in level.chunks(inner_cap) {
                let mut img = Vec::with_capacity(page_size);
                img.put_u16_le(chunk.len() as u16);
                for &(sep, child) in chunk {
                    img.put_u32_le(sep);
                    img.put_u32_le(child.0);
                }
                img.resize(page_size, 0);
                let id = pager.alloc();
                pager.write(id, &img);
                next.push((chunk[0].0, id));
            }
            level = next;
            height += 1;
        }

        let root = level[0].1;
        pager.reset_counters();
        BTreeDirectory {
            pager,
            root,
            height,
            entries: entries.len(),
        }
    }

    /// Looks up a key, descending through the buffer pool. Costs one page
    /// fetch per level (`height` fetches cold).
    pub fn lookup(&self, key: u32, pool: &mut BufferPool) -> Option<(u64, u32)> {
        let mut page = self.root;
        for _ in 0..self.height - 1 {
            let img = pool.fetch(&self.pager, page);
            let mut buf = img;
            let count = buf.get_u16_le() as usize;
            // Rightmost child whose separator <= key.
            let mut child = None;
            for _ in 0..count {
                let sep = buf.get_u32_le();
                let ptr = buf.get_u32_le();
                if sep <= key {
                    child = Some(PageId(ptr));
                } else {
                    break;
                }
            }
            page = child?;
        }
        let img = pool.fetch(&self.pager, page);
        let mut buf = img;
        let count = buf.get_u16_le() as usize;
        for _ in 0..count {
            let k = buf.get_u32_le();
            let off = buf.get_u64_le();
            let len = buf.get_u32_le();
            if k == key {
                return Some((off, len));
            }
            if k > key {
                return None;
            }
        }
        None
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of directory entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Pages occupied by the directory.
    pub fn page_count(&self) -> usize {
        self.pager.page_count()
    }

    /// The directory's disk (for counter access).
    pub fn pager(&self) -> &Pager {
        &self.pager
    }
}

/// A fully disk-resident compressed-closure index: B+tree directory pages
/// plus interval-record pages, every access counted.
///
/// The only in-memory state is the postorder key per node — the query
/// argument itself; a DBMS would obtain it from the same directory, adding
/// one more descent, which [`IndexedLabelStore::reaches_cold`] models.
#[derive(Debug)]
pub struct IndexedLabelStore {
    directory: BTreeDirectory,
    blob: BlobStore,
    post: Vec<u64>,
}

impl IndexedLabelStore {
    /// Serializes the closure's labels and bulk-loads the directory.
    pub fn build(closure: &CompressedClosure, page_size: usize) -> Self {
        let n = closure.node_count();
        let mut records = Vec::with_capacity(n);
        let mut post = Vec::with_capacity(n);
        for v in closure.graph().nodes() {
            post.push(closure.post_number(v));
            let set = closure.intervals(v);
            let mut rec = Vec::with_capacity(4 + 16 * set.count());
            rec.put_u32_le(set.count() as u32);
            for iv in set.iter() {
                rec.put_u64_le(iv.lo());
                rec.put_u64_le(iv.hi());
            }
            records.push(rec);
        }
        let blob = BlobStore::build(&records, page_size);
        // Directory entries mirror the blob's extents (offsets are the
        // cumulative record lengths) so the lookup path exercises the same
        // geometry a standalone directory would.
        let mut off = 0u64;
        let entries: Vec<(u32, u64, u32)> = (0..n as u32)
            .map(|v| {
                let len = blob.record_len(v as usize) as u32;
                let e = (v, off, len);
                off += len as u64;
                e
            })
            .collect();
        IndexedLabelStore {
            directory: BTreeDirectory::build(&entries, page_size),
            blob,
            post,
        }
    }

    /// Disk-resident reachability query: one directory descent plus the
    /// record pages.
    pub fn reaches(
        &self,
        src: NodeId,
        dst: NodeId,
        dir_pool: &mut BufferPool,
        rec_pool: &mut BufferPool,
    ) -> bool {
        let Some((_, _)) = self.directory.lookup(src.0, dir_pool) else {
            return false;
        };
        let target = self.post[dst.index()];
        let rec = self.blob.read(src.index(), rec_pool);
        let mut buf = rec.as_slice();
        let count = buf.get_u32_le();
        for _ in 0..count {
            let lo = buf.get_u64_le();
            let hi = buf.get_u64_le();
            if lo <= target && target <= hi {
                return true;
            }
        }
        false
    }

    /// Fully cold model: also resolves `dst`'s postorder number through the
    /// directory (two descents total), as a DBMS without a hot key index
    /// would.
    pub fn reaches_cold(
        &self,
        src: NodeId,
        dst: NodeId,
        dir_pool: &mut BufferPool,
        rec_pool: &mut BufferPool,
    ) -> bool {
        let _ = self.directory.lookup(dst.0, dir_pool);
        self.reaches(src, dst, dir_pool, rec_pool)
    }

    /// The directory component.
    pub fn directory(&self) -> &BTreeDirectory {
        &self.directory
    }

    /// The record component.
    pub fn blob(&self) -> &BlobStore {
        &self.blob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_graph::generators;

    #[test]
    fn directory_lookup_matches_model() {
        let entries: Vec<(u32, u64, u32)> =
            (0..1000u32).map(|k| (k * 3, k as u64 * 100, k + 1)).collect();
        let dir = BTreeDirectory::build(&entries, 128);
        assert!(dir.height() >= 2, "1000 entries cannot fit one 128B leaf");
        let mut pool = BufferPool::new(16);
        for &(k, off, len) in &entries {
            assert_eq!(dir.lookup(k, &mut pool), Some((off, len)), "key {k}");
        }
        // Misses: keys between the stored multiples of 3, and out of range.
        assert_eq!(dir.lookup(1, &mut pool), None);
        assert_eq!(dir.lookup(2999 * 3 + 1, &mut pool), None);
        assert_eq!(dir.len(), 1000);
    }

    #[test]
    fn empty_directory() {
        let dir = BTreeDirectory::build(&[], 128);
        assert!(dir.is_empty());
        let mut pool = BufferPool::new(2);
        assert_eq!(dir.lookup(0, &mut pool), None);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_keys_rejected() {
        let _ = BTreeDirectory::build(&[(3, 0, 1), (1, 8, 1)], 128);
    }

    #[test]
    fn cold_lookup_costs_height_pages() {
        let entries: Vec<(u32, u64, u32)> =
            (0..5000u32).map(|k| (k, k as u64, 1)).collect();
        let dir = BTreeDirectory::build(&entries, 256);
        let mut pool = BufferPool::new(1); // effectively uncached
        dir.pager().reset_counters();
        dir.lookup(2500, &mut pool);
        assert_eq!(dir.pager().reads() as usize, dir.height());
    }

    #[test]
    fn indexed_store_matches_closure() {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 150,
            avg_out_degree: 2.5,
            seed: 12,
        });
        let closure = CompressedClosure::build(&g).unwrap();
        let store = IndexedLabelStore::build(&closure, 256);
        let mut dp = BufferPool::new(8);
        let mut rp = BufferPool::new(8);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    store.reaches(u, v, &mut dp, &mut rp),
                    closure.reaches(u, v),
                    "({u:?},{v:?})"
                );
            }
        }
        // reaches_cold answers identically, just with more directory I/O.
        let mut dp = BufferPool::new(8);
        let mut rp = BufferPool::new(8);
        assert_eq!(
            store.reaches_cold(tc_graph::NodeId(0), tc_graph::NodeId(140), &mut dp, &mut rp),
            closure.reaches(tc_graph::NodeId(0), tc_graph::NodeId(140))
        );
    }

    #[test]
    fn total_cold_query_cost_is_bounded() {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: 2000,
            avg_out_degree: 2.0,
            seed: 8,
        });
        let closure = CompressedClosure::build(&g).unwrap();
        let store = IndexedLabelStore::build(&closure, 4096);
        let mut dp = BufferPool::new(1);
        let mut rp = BufferPool::new(1);
        store.directory().pager().reset_counters();
        store.blob().pager().reset_counters();
        store.reaches(tc_graph::NodeId(17), tc_graph::NodeId(1900), &mut dp, &mut rp);
        let total = store.directory().pager().reads() + store.blob().pager().reads();
        // Directory descent (height <= 2 at this size) + a 1-2 page record.
        assert!(total <= 4, "cold query cost {total} pages");
    }
}
