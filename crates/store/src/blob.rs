//! Page-resident record storage.
//!
//! Records (one per node) are serialized into a contiguous byte stream that
//! is chopped into pages; a directory maps each record to its byte extent.
//! Reading a record fetches exactly the pages its bytes span — so short
//! records (interval labels) cost one page read and long records (full
//! successor lists) cost proportionally many, which is precisely the effect
//! the experiments measure.

use bytes::BufMut;

use crate::{BufferPool, PageId, Pager};

/// A read-optimized store of per-node byte records on the simulated disk.
#[derive(Debug)]
pub struct BlobStore {
    pager: Pager,
    /// `(byte offset, byte length)` per record.
    directory: Vec<(u64, u32)>,
}

impl BlobStore {
    /// Packs `records` onto a fresh disk with the given page size.
    pub fn build(records: &[Vec<u8>], page_size: usize) -> Self {
        let mut stream = Vec::new();
        let mut directory = Vec::with_capacity(records.len());
        for rec in records {
            directory.push((stream.len() as u64, rec.len() as u32));
            stream.put_slice(rec);
        }

        let mut pager = Pager::with_page_size(page_size);
        for chunk in stream.chunks(page_size) {
            let id = pager.alloc();
            let mut img = vec![0u8; page_size];
            img[..chunk.len()].copy_from_slice(chunk);
            pager.write(id, &img);
        }
        pager.reset_counters();
        BlobStore { pager, directory }
    }

    /// Number of records.
    pub fn record_count(&self) -> usize {
        self.directory.len()
    }

    /// Byte length of record `ix`.
    pub fn record_len(&self, ix: usize) -> usize {
        self.directory[ix].1 as usize
    }

    /// Number of pages record `ix` spans (the cold-cache read cost).
    pub fn record_pages(&self, ix: usize) -> usize {
        let (off, len) = self.directory[ix];
        if len == 0 {
            return 0;
        }
        let ps = self.pager.page_size() as u64;
        let first = off / ps;
        let last = (off + len as u64 - 1) / ps;
        (last - first + 1) as usize
    }

    /// Reads record `ix` through a buffer pool, fetching each spanned page.
    pub fn read(&self, ix: usize, pool: &mut BufferPool) -> Vec<u8> {
        let (off, len) = self.directory[ix];
        let ps = self.pager.page_size() as u64;
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = off;
        let end = off + len as u64;
        while pos < end {
            let page = (pos / ps) as u32;
            let in_page = (pos % ps) as usize;
            let take = ((ps - pos % ps) as usize).min((end - pos) as usize);
            let img = pool.fetch(&self.pager, PageId(page));
            out.extend_from_slice(&img[in_page..in_page + take]);
            pos += take as u64;
        }
        out
    }

    /// The underlying disk (for counter access).
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Total pages on disk.
    pub fn page_count(&self) -> usize {
        self.pager.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_records() {
        let records = vec![vec![1u8, 2, 3], vec![], vec![9u8; 100]];
        let store = BlobStore::build(&records, 64);
        let mut pool = BufferPool::new(8);
        for (ix, rec) in records.iter().enumerate() {
            assert_eq!(&store.read(ix, &mut pool), rec, "record {ix}");
        }
    }

    #[test]
    fn spanning_records_cost_multiple_pages() {
        let records = vec![vec![7u8; 200]]; // spans 4 pages of 64 bytes
        let store = BlobStore::build(&records, 64);
        assert_eq!(store.record_pages(0), 4);
        let mut pool = BufferPool::new(8);
        let back = store.read(0, &mut pool);
        assert_eq!(back.len(), 200);
        assert_eq!(store.pager().reads(), 4, "one disk read per spanned page");
        // Re-read: everything cached.
        store.read(0, &mut pool);
        assert_eq!(store.pager().reads(), 4);
        assert_eq!(pool.stats().hits, 4);
    }

    #[test]
    fn small_records_share_pages() {
        let records: Vec<Vec<u8>> = (0..16).map(|i| vec![i as u8; 8]).collect();
        let store = BlobStore::build(&records, 64);
        assert_eq!(store.page_count(), 2, "16 x 8 bytes = 2 x 64-byte pages");
        for ix in 0..16 {
            assert_eq!(store.record_pages(ix), 1);
        }
    }

    #[test]
    fn empty_record_costs_nothing() {
        let store = BlobStore::build(&[vec![]], 64);
        assert_eq!(store.record_pages(0), 0);
        let mut pool = BufferPool::new(2);
        assert!(store.read(0, &mut pool).is_empty());
        assert_eq!(store.pager().reads(), 0);
    }
}
