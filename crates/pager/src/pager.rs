//! The disk: fixed-size pages with access counters.
//!
//! Two backends share one API. The in-memory backend is the original
//! "simulated disk" the experiment harness counts I/O against; the file
//! backend is a real `File` read and written at page granularity via
//! `pread`/`pwrite` (`std::os::unix::fs::FileExt`), optionally windowed to a
//! byte region inside a larger file — which is how the paged query plane
//! addresses its `PLN1` section inside an `.itc` stream.

use std::cell::Cell;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;

/// Default page size: 4 KiB, the classic database page.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Identifier of a page on the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

#[derive(Debug)]
enum Backend {
    /// Pages held in memory; supports borrowed [`Pager::read`].
    Mem(Vec<Box<[u8]>>),
    /// Pages live in `file` starting at byte `base`; reads copy into caller
    /// buffers ([`Pager::read_into`] / [`Pager::read_page`]).
    File { file: File, base: u64, pages: usize },
}

/// A page-granular disk. Every read and write is counted; the experiment
/// harness reads the counters to compare I/O traffic across storage layouts.
#[derive(Debug)]
pub struct Pager {
    page_size: usize,
    backend: Backend,
    reads: Cell<u64>,
    writes: Cell<u64>,
}

impl Pager {
    /// Creates an empty in-memory disk with the [`DEFAULT_PAGE_SIZE`].
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Creates an empty in-memory disk with a custom page size (≥ 64 bytes).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size {page_size} unrealistically small");
        Pager {
            page_size,
            backend: Backend::Mem(Vec::new()),
            reads: Cell::new(0),
            writes: Cell::new(0),
        }
    }

    /// Creates (or truncates) a file-backed disk at `path`.
    pub fn create_file<P: AsRef<Path>>(path: P, page_size: usize) -> io::Result<Self> {
        assert!(page_size >= 64, "page size {page_size} unrealistically small");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Pager {
            page_size,
            backend: Backend::File { file, base: 0, pages: 0 },
            reads: Cell::new(0),
            writes: Cell::new(0),
        })
    }

    /// Opens an existing file read-only as a whole-file disk. The page count
    /// is `len / page_size` (a ragged tail is not addressable).
    pub fn open_file<P: AsRef<Path>>(path: P, page_size: usize) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let pages = (len / page_size as u64) as usize;
        Ok(Self::open_file_region(file, 0, pages, page_size))
    }

    /// Windows `pages` pages of `file` starting at byte offset `base` —
    /// pages of a section embedded in a larger stream. `base` must be
    /// page-aligned relative to nothing but itself; page `i` lives at byte
    /// `base + i * page_size`.
    pub fn open_file_region(file: File, base: u64, pages: usize, page_size: usize) -> Self {
        assert!(page_size >= 64, "page size {page_size} unrealistically small");
        Pager {
            page_size,
            backend: Backend::File { file, base, pages },
            reads: Cell::new(0),
            writes: Cell::new(0),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        match &self.backend {
            Backend::Mem(pages) => pages.len(),
            Backend::File { pages, .. } => *pages,
        }
    }

    /// Whether reads borrow from memory ([`Pager::read`] works) or copy from
    /// a file.
    pub fn is_file_backed(&self) -> bool {
        matches!(self.backend, Backend::File { .. })
    }

    /// Allocates a zeroed page.
    pub fn alloc(&mut self) -> PageId {
        match &mut self.backend {
            Backend::Mem(pages) => {
                let id = PageId(pages.len() as u32);
                pages.push(vec![0u8; self.page_size].into_boxed_slice());
                id
            }
            Backend::File { file, base, pages } => {
                let id = PageId(*pages as u32);
                *pages += 1;
                let end = *base + *pages as u64 * self.page_size as u64;
                file.set_len(end).expect("extend pager file");
                id
            }
        }
    }

    /// Writes a full page image. Counted as one disk write.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page, the page is unknown, or a
    /// file write fails.
    pub fn write(&mut self, id: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.page_size, "partial page write");
        self.writes.set(self.writes.get() + 1);
        match &mut self.backend {
            Backend::Mem(pages) => pages[id.0 as usize].copy_from_slice(data),
            Backend::File { file, base, pages } => {
                assert!((id.0 as usize) < *pages, "write past allocated pages");
                let off = *base + id.0 as u64 * self.page_size as u64;
                file.write_all_at(data, off).expect("page write");
            }
        }
    }

    /// Reads a page, borrowing the image. Counted as one disk read.
    ///
    /// Only the in-memory backend can lend a borrow; file-backed pagers must
    /// use [`Pager::read_into`] or [`Pager::read_page`].
    pub fn read(&self, id: PageId) -> &[u8] {
        match &self.backend {
            Backend::Mem(pages) => {
                self.reads.set(self.reads.get() + 1);
                &pages[id.0 as usize]
            }
            Backend::File { .. } => {
                panic!("borrowed read on a file-backed pager; use read_into")
            }
        }
    }

    /// Reads a page into `buf` (which must be exactly one page). Counted as
    /// one disk read. Works on both backends.
    pub fn read_into(&self, id: PageId, buf: &mut [u8]) {
        assert_eq!(buf.len(), self.page_size, "partial page read");
        self.reads.set(self.reads.get() + 1);
        match &self.backend {
            Backend::Mem(pages) => buf.copy_from_slice(&pages[id.0 as usize]),
            Backend::File { file, base, pages } => {
                assert!((id.0 as usize) < *pages, "read past allocated pages");
                let off = *base + id.0 as u64 * self.page_size as u64;
                file.read_exact_at(buf, off).expect("page read");
            }
        }
    }

    /// Reads a page into a fresh allocation. Counted as one disk read.
    pub fn read_page(&self, id: PageId) -> Box<[u8]> {
        let mut buf = vec![0u8; self.page_size].into_boxed_slice();
        self.read_into(id, &mut buf);
        buf
    }

    /// Total disk reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Total disk writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Resets both counters (e.g. after the build phase, before measuring a
    /// query workload).
    pub fn reset_counters(&self) {
        self.reads.set(0);
        self.writes.set(0);
    }
}

impl Default for Pager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut pager = Pager::with_page_size(128);
        let id = pager.alloc();
        let mut img = vec![0u8; 128];
        img[0] = 0xAB;
        img[127] = 0xCD;
        pager.write(id, &img);
        let back = pager.read(id);
        assert_eq!(back[0], 0xAB);
        assert_eq!(back[127], 0xCD);
        assert_eq!(pager.reads(), 1);
        assert_eq!(pager.writes(), 1);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut pager = Pager::with_page_size(64);
        let a = pager.alloc();
        let b = pager.alloc();
        pager.read(a);
        pager.read(b);
        pager.read(a);
        assert_eq!(pager.reads(), 3);
        pager.reset_counters();
        assert_eq!(pager.reads(), 0);
        assert_eq!(pager.page_count(), 2);
    }

    #[test]
    #[should_panic(expected = "partial page write")]
    fn partial_write_rejected() {
        let mut pager = Pager::with_page_size(64);
        let id = pager.alloc();
        pager.write(id, &[0u8; 10]);
    }

    #[test]
    #[should_panic(expected = "unrealistically small")]
    fn tiny_page_size_rejected() {
        let _ = Pager::with_page_size(8);
    }

    #[test]
    fn file_backend_roundtrip() {
        let path = std::env::temp_dir().join(format!(
            "tc-store-pager-{}-rt.pg",
            std::process::id()
        ));
        {
            let mut pager = Pager::create_file(&path, 64).expect("create");
            assert!(pager.is_file_backed());
            let a = pager.alloc();
            let b = pager.alloc();
            pager.write(a, &[0x11u8; 64]);
            pager.write(b, &[0x22u8; 64]);
            let mut buf = [0u8; 64];
            pager.read_into(b, &mut buf);
            assert_eq!(buf, [0x22u8; 64]);
            assert_eq!(pager.writes(), 2);
            assert_eq!(pager.reads(), 1);
        }
        let pager = Pager::open_file(&path, 64).expect("open");
        assert_eq!(pager.page_count(), 2);
        let img = pager.read_page(PageId(0));
        assert_eq!(&img[..], &[0x11u8; 64][..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_region_addresses_embedded_pages() {
        let path = std::env::temp_dir().join(format!(
            "tc-store-pager-{}-region.pg",
            std::process::id()
        ));
        // A 100-byte preamble followed by two 64-byte pages.
        let mut bytes = vec![0xEEu8; 100];
        bytes.extend_from_slice(&[0xAAu8; 64]);
        bytes.extend_from_slice(&[0xBBu8; 64]);
        std::fs::write(&path, &bytes).expect("write file");
        let file = File::open(&path).expect("open");
        let pager = Pager::open_file_region(file, 100, 2, 64);
        assert_eq!(pager.page_count(), 2);
        assert_eq!(&pager.read_page(PageId(0))[..], &[0xAAu8; 64][..]);
        assert_eq!(&pager.read_page(PageId(1))[..], &[0xBBu8; 64][..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "borrowed read on a file-backed pager")]
    fn borrowed_read_rejected_on_file_backend() {
        let path = std::env::temp_dir().join(format!(
            "tc-store-pager-{}-borrow.pg",
            std::process::id()
        ));
        let mut pager = Pager::create_file(&path, 64).expect("create");
        let id = pager.alloc();
        std::fs::remove_file(&path).ok();
        let _ = pager.read(id);
    }
}
