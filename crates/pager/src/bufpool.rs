//! An LRU buffer pool over the [`Pager`], with page pins.
//!
//! A probe that decodes a row slice in place must be able to hold the page
//! across its own logic without the pool yanking the frame on the next
//! fetch. [`BufferPool::fetch_pin`] returns a [`PagePin`] — a shared handle
//! to the frame — and eviction only ever considers unpinned frames. If every
//! frame is pinned the pool temporarily overflows its capacity rather than
//! invalidate a live borrow.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::Arc;

use crate::{PageId, Pager};

/// Hit/miss statistics of a buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fetches served from the pool.
    pub hits: u64,
    /// Fetches that had to go to the pager (disk reads).
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl PoolStats {
    /// Hit ratio in `[0, 1]` (`NaN` with no fetches).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        self.hits as f64 / total as f64
    }
}

/// A pinned page image. Holding the pin keeps the bytes alive even if the
/// pool evicts the frame underneath — the pin shares ownership, so the worst
/// case is a redundant re-read later, never a dangling slice.
#[derive(Debug, Clone)]
pub struct PagePin {
    data: Arc<[u8]>,
}

impl Deref for PagePin {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// A fixed-capacity LRU cache of page images.
///
/// Read-only (the stores in this crate are build-once/query-many, like the
/// paper's materialized closure), so eviction never writes back.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// page -> (image, last-use tick)
    frames: HashMap<PageId, (Arc<[u8]>, u64)>,
    tick: u64,
    stats: PoolStats,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: HashMap::with_capacity(capacity),
            tick: 0,
            stats: PoolStats::default(),
        }
    }

    /// Fetches a page through the pool, touching the pager only on a miss.
    pub fn fetch<'a>(&'a mut self, pager: &Pager, id: PageId) -> &'a [u8] {
        self.fetch_frame(pager, id);
        &self.frames.get(&id).expect("frame just ensured").0
    }

    /// Fetches a page and pins it. The returned [`PagePin`] keeps the bytes
    /// valid for as long as it lives; a pinned frame is never evicted.
    pub fn fetch_pin(&mut self, pager: &Pager, id: PageId) -> PagePin {
        self.fetch_frame(pager, id);
        PagePin {
            data: Arc::clone(&self.frames.get(&id).expect("frame just ensured").0),
        }
    }

    fn fetch_frame(&mut self, pager: &Pager, id: PageId) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.frames.get_mut(&id) {
            self.stats.hits += 1;
            entry.1 = tick;
            return;
        }
        self.stats.misses += 1;
        if self.frames.len() >= self.capacity {
            // Evict the least-recently-used *unpinned* frame. The map holds
            // exactly one reference to an unpinned image, so any extra
            // strong count is an outstanding PagePin.
            let victim = self
                .frames
                .iter()
                .filter(|(_, (image, _))| Arc::strong_count(image) == 1)
                .min_by_key(|(_, (_, last))| *last)
                .map(|(id, _)| *id);
            if let Some(victim) = victim {
                self.frames.remove(&victim);
                self.stats.evictions += 1;
            }
            // All frames pinned: overflow capacity rather than drop a pin.
        }
        let image: Arc<[u8]> = pager.read_page(id).into();
        self.frames.insert(id, (image, tick));
    }

    /// Access statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Clears cached pages and statistics (for cold-cache measurements).
    /// Outstanding pins stay valid — they own their images.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.stats = PoolStats::default();
        self.tick = 0;
    }

    /// Number of resident pages.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk_with(n: usize) -> Pager {
        let mut pager = Pager::with_page_size(64);
        for i in 0..n {
            let id = pager.alloc();
            let mut img = vec![0u8; 64];
            img[0] = i as u8;
            pager.write(id, &img);
        }
        pager.reset_counters();
        pager
    }

    #[test]
    fn hits_avoid_disk() {
        let pager = disk_with(2);
        let mut pool = BufferPool::new(2);
        assert_eq!(pool.fetch(&pager, PageId(0))[0], 0);
        assert_eq!(pool.fetch(&pager, PageId(0))[0], 0);
        assert_eq!(pool.stats(), PoolStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(pager.reads(), 1, "second fetch never touched the pager");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pager = disk_with(3);
        let mut pool = BufferPool::new(2);
        pool.fetch(&pager, PageId(0));
        pool.fetch(&pager, PageId(1));
        pool.fetch(&pager, PageId(0)); // 1 is now LRU
        pool.fetch(&pager, PageId(2)); // evicts 1
        assert_eq!(pool.stats().evictions, 1);
        // 0 must still be resident.
        let before = pager.reads();
        pool.fetch(&pager, PageId(0));
        assert_eq!(pager.reads(), before, "page 0 survived eviction");
        // 1 must not be.
        pool.fetch(&pager, PageId(1));
        assert_eq!(pager.reads(), before + 1);
    }

    #[test]
    fn clear_resets_everything() {
        let pager = disk_with(1);
        let mut pool = BufferPool::new(4);
        pool.fetch(&pager, PageId(0));
        pool.clear();
        assert_eq!(pool.resident(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
        pool.fetch(&pager, PageId(0));
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn hit_ratio() {
        let pager = disk_with(1);
        let mut pool = BufferPool::new(1);
        pool.fetch(&pager, PageId(0));
        pool.fetch(&pager, PageId(0));
        pool.fetch(&pager, PageId(0));
        assert!((pool.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pinned_page_survives_eviction_pressure() {
        let pager = disk_with(4);
        let mut pool = BufferPool::new(2);
        let pin = pool.fetch_pin(&pager, PageId(0));
        // Churn enough distinct pages through a 2-frame pool to evict
        // everything unpinned several times over.
        for round in 0..3 {
            for i in 1..4u32 {
                let _ = round;
                pool.fetch(&pager, PageId(i));
            }
        }
        // The pinned frame was never chosen as a victim...
        let before = pager.reads();
        pool.fetch(&pager, PageId(0));
        assert_eq!(pager.reads(), before, "pinned page 0 stayed resident");
        // ...and the pin's bytes are intact regardless.
        assert_eq!(pin[0], 0);
    }

    #[test]
    fn all_pinned_overflows_instead_of_evicting() {
        let pager = disk_with(4);
        let mut pool = BufferPool::new(2);
        let p0 = pool.fetch_pin(&pager, PageId(0));
        let p1 = pool.fetch_pin(&pager, PageId(1));
        // Pool is full of pinned frames; a third fetch must not invalidate
        // either pin.
        let p2 = pool.fetch_pin(&pager, PageId(2));
        assert_eq!(pool.resident(), 3, "pool overflowed rather than evict a pin");
        assert_eq!(pool.stats().evictions, 0);
        assert_eq!((p0[0], p1[0], p2[0]), (0, 1, 2));
        drop(p0);
        drop(p1);
        // With pins released, a miss evicts normally again.
        pool.fetch(&pager, PageId(3));
        assert!(pool.stats().evictions >= 1);
        drop(p2);
    }

    #[test]
    fn pin_outlives_clear() {
        let pager = disk_with(1);
        let mut pool = BufferPool::new(1);
        let pin = pool.fetch_pin(&pager, PageId(0));
        pool.clear();
        assert_eq!(pin[0], 0, "pin owns its image across clear()");
    }
}
