//! Page-granular storage primitives: the pager and the buffer pool.
//!
//! The paper motivates compression with I/O: "in the case of large
//! relations, the information will reside on secondary storage, and hence we
//! need to minimize I/O traffic" (§2.2). This crate is the bottom layer of
//! that story — deliberately free of any closure types so both the
//! page-resident stores (`tc-store`) and the out-of-core frozen plane
//! (`tc-core`'s `PagedPlane`) can build on it:
//!
//! * [`Pager`] — a page-granular disk: either an in-memory simulation with
//!   read/write counters, or a real `File` addressed with `pread`/`pwrite`,
//!   optionally windowed to a byte region of a larger stream (how a `PLN1`
//!   plane section embedded behind an `ITC1` stream is addressed).
//! * [`BufferPool`] — LRU caching over a pager with hit/miss/eviction
//!   statistics, and [`PagePin`] guards that keep a frame's bytes valid
//!   even if the pool evicts it mid-probe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bufpool;
mod pager;

pub use bufpool::{BufferPool, PagePin, PoolStats};
pub use pager::{PageId, Pager, DEFAULT_PAGE_SIZE};
