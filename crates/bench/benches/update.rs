//! Incremental-update micro-benchmarks (§4): leaf addition, non-tree arc
//! addition, constant-time refinement — against the full-rebuild
//! alternative.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tc_core::{ClosureConfig, CompressedClosure};
use tc_graph::generators::{random_dag, RandomDagConfig};
use tc_graph::NodeId;

fn base() -> tc_graph::DiGraph {
    random_dag(RandomDagConfig {
        nodes: 1000,
        avg_out_degree: 2.0,
        seed: 21,
    })
}

fn bench_updates(c: &mut Criterion) {
    let g = base();

    c.bench_function("add_leaf", |b| {
        b.iter_batched(
            || ClosureConfig::new().build(&g).unwrap(),
            |mut closure| {
                for i in 0..32u32 {
                    black_box(closure.add_node_with_parents(&[NodeId(i * 13 % 1000)]).unwrap());
                }
                closure
            },
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("add_non_tree_arc", |b| {
        b.iter_batched(
            || {
                let closure = ClosureConfig::new().build(&g).unwrap();
                // Pre-compute 32 cycle-safe arcs.
                let mut arcs = Vec::new();
                let mut s = 3u64;
                while arcs.len() < 32 {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = NodeId((s >> 33) as u32 % 1000);
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let bnode = NodeId((s >> 33) as u32 % 1000);
                    if a != bnode && !closure.reaches(bnode, a) && !closure.graph().has_edge(a, bnode)
                    {
                        arcs.push((a, bnode));
                    }
                }
                (closure, arcs)
            },
            |(mut closure, arcs)| {
                for (a, b) in arcs {
                    let _ = black_box(closure.add_edge(a, b));
                }
                closure
            },
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("refine_insert", |b| {
        b.iter_batched(
            || {
                let mut closure = ClosureConfig::new().reserve(64).build(&g).unwrap();
                let leaf = closure.add_node_with_parents(&[NodeId(0)]).unwrap();
                (closure, leaf)
            },
            |(mut closure, leaf)| {
                for _ in 0..32 {
                    let preds: Vec<NodeId> = closure.graph().predecessors(leaf).to_vec();
                    black_box(closure.refine_insert(leaf, &preds).unwrap());
                }
                closure
            },
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("remove_arc", |b| {
        b.iter_batched(
            || {
                let closure = ClosureConfig::new().build(&g).unwrap();
                let victims: Vec<(NodeId, NodeId)> = closure.graph().edges().take(4).collect();
                (closure, victims)
            },
            |(mut closure, victims)| {
                for (a, bnode) in victims {
                    closure.remove_edge(a, bnode).unwrap();
                }
                closure
            },
            criterion::BatchSize::LargeInput,
        )
    });

    c.bench_function("full_rebuild_1k", |b| {
        b.iter(|| black_box(CompressedClosure::build(&g).unwrap()))
    });
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
