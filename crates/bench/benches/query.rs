//! Query-latency micro-benchmarks: one compressed-closure lookup vs the
//! comparator indexes ("answering a transitive closure query … reduces to a
//! lookup instead of a graph traversal", §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tc_baselines::{ChainIndex, DfsOracle, FullClosure, ReachMatrix, ReachabilityIndex};
use tc_core::CompressedClosure;
use tc_graph::generators::{random_dag, RandomDagConfig};
use tc_graph::NodeId;

fn query_mix(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                NodeId(rng.random_range(0..n as u32)),
                NodeId(rng.random_range(0..n as u32)),
            )
        })
        .collect()
}

fn bench_reachability(c: &mut Criterion) {
    let n = 1000;
    let g = random_dag(RandomDagConfig {
        nodes: n,
        avg_out_degree: 3.0,
        seed: 11,
    });
    let mix = query_mix(n, 1024, 5);

    let compressed = CompressedClosure::build(&g).unwrap();
    let full = FullClosure::build(&g);
    let matrix = ReachMatrix::build(&g);
    let chain = ChainIndex::build_greedy(&g).unwrap();
    let dfs = DfsOracle::new(g.clone());

    let mut group = c.benchmark_group("reach_1k_d3");
    group.bench_function(BenchmarkId::new("interval-compressed", n), |b| {
        b.iter(|| {
            for &(u, v) in &mix {
                black_box(compressed.reaches(u, v));
            }
        })
    });
    group.bench_function(BenchmarkId::new("full-closure-lists", n), |b| {
        b.iter(|| {
            for &(u, v) in &mix {
                black_box(full.reaches(u, v));
            }
        })
    });
    group.bench_function(BenchmarkId::new("bit-matrix", n), |b| {
        b.iter(|| {
            for &(u, v) in &mix {
                black_box(matrix.reaches(u, v));
            }
        })
    });
    group.bench_function(BenchmarkId::new("chain-compression", n), |b| {
        b.iter(|| {
            for &(u, v) in &mix {
                black_box(chain.reaches(u, v));
            }
        })
    });
    group.bench_function(BenchmarkId::new("dfs-on-the-fly", n), |b| {
        b.iter(|| {
            for &(u, v) in &mix {
                black_box(dfs.reaches(u, v));
            }
        })
    });
    let pooled = tc_core::pooled::PooledClosure::from_closure(&compressed);
    group.bench_function(BenchmarkId::new("pooled-ranges", n), |b| {
        b.iter(|| {
            for &(u, v) in &mix {
                black_box(pooled.reaches(u, v));
            }
        })
    });
    group.finish();
}

fn bench_successor_decode(c: &mut Criterion) {
    let g = random_dag(RandomDagConfig {
        nodes: 1000,
        avg_out_degree: 3.0,
        seed: 11,
    });
    let compressed = CompressedClosure::build(&g).unwrap();
    let full = FullClosure::build(&g);
    let mut group = c.benchmark_group("successors_1k_d3");
    group.bench_function("decode-intervals", |b| {
        b.iter(|| {
            for v in 0..50u32 {
                black_box(compressed.successors(NodeId(v)));
            }
        })
    });
    group.bench_function("copy-materialized-lists", |b| {
        b.iter(|| {
            for v in 0..50u32 {
                black_box(full.successors(NodeId(v)).to_vec());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reachability, bench_successor_decode);
criterion_main!(benches);
