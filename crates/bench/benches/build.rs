//! Construction-cost micro-benchmarks: "the complexity of computing the
//! compressed transitive closure of a graph is the same as the computation
//! of its transitive closure. However, compression is a one-time activity."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tc_baselines::{ChainIndex, FullClosure, ReachMatrix};
use tc_core::{ClosureConfig, CoverStrategy};
use tc_graph::generators::{random_dag, RandomDagConfig};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_d2");
    for nodes in [250usize, 500, 1000] {
        let g = random_dag(RandomDagConfig {
            nodes,
            avg_out_degree: 2.0,
            seed: 3,
        });
        group.bench_with_input(BenchmarkId::new("compressed-alg1", nodes), &g, |b, g| {
            b.iter(|| black_box(ClosureConfig::new().build(g).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("compressed-first-parent", nodes),
            &g,
            |b, g| {
                b.iter(|| {
                    black_box(
                        ClosureConfig::new()
                            .strategy(CoverStrategy::FirstParent)
                            .build(g)
                            .unwrap(),
                    )
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("full-closure", nodes), &g, |b, g| {
            b.iter(|| black_box(FullClosure::build(g)))
        });
        group.bench_with_input(BenchmarkId::new("bit-matrix", nodes), &g, |b, g| {
            b.iter(|| black_box(ReachMatrix::build(g)))
        });
        group.bench_with_input(BenchmarkId::new("chain-greedy", nodes), &g, |b, g| {
            b.iter(|| black_box(ChainIndex::build_greedy(g).unwrap()))
        });
    }
    group.finish();
}

fn bench_small_dag_census(c: &mut Criterion) {
    // The Fig 3.12 fast path: per-graph cost drives the census feasibility.
    c.bench_function("small_dag_interval_count_n8", |b| {
        let mut mask = 0u64;
        b.iter(|| {
            mask = mask.wrapping_add(0x9E3779B97F4A7C15) & ((1 << 28) - 1);
            black_box(tc_core::small_dag::interval_count(8, mask))
        })
    });
}

criterion_group!(benches, bench_build, bench_small_dag_census);
criterion_main!(benches);
