//! Shared experiment-harness utilities: aligned table printing, CSV output,
//! seed-averaged measurement, and command-line parsing for the figure
//! binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index) by printing the series the paper plots
//! and writing a CSV next to it under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Write as _;
use std::path::Path;

/// A simple right-aligned results table that doubles as a CSV writer.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (ix, cell) in row.iter().enumerate() {
                widths[ix] = widths[ix].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (ix, cell) in cells.iter().enumerate() {
                if ix > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:>width$}", cell, width = widths[ix]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        std::fs::write(path, out)
    }

    /// Prints the table and writes `results/<name>.csv`, reporting the path.
    pub fn finish(&self, name: &str) {
        self.print();
        let path = results_dir().join(format!("{name}.csv"));
        match self.write_csv(&path) {
            Ok(()) => println!("(csv written to {})", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// The `results/` directory at the workspace root (falls back to the
/// current directory when run from elsewhere).
pub fn results_dir() -> std::path::PathBuf {
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(|ws| ws.join("results"))
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Minimal flag parser: `--key value` pairs and bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut ix = 0;
        while ix < raw.len() {
            let key = raw[ix].trim_start_matches("--").to_string();
            let value = raw
                .get(ix + 1)
                .filter(|next| !next.starts_with("--"))
                .cloned();
            if value.is_some() {
                ix += 2;
            } else {
                ix += 1;
            }
            pairs.push((key, value));
        }
        Args { pairs }
    }

    /// A `--key value` parsed as `T`, or `default`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_ref())
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a bare `--switch` was passed.
    pub fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }
}

/// Formats a float with 2 decimals (the figures' precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["k", "value"]);
        t.row(&["1".to_string(), "10".to_string()]);
        t.row(&["22".to_string(), "3".to_string()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains(" k  value"));
        assert!(s.contains(" 1     10"));
        assert!(s.contains("22      3"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".to_string()]);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".to_string(), "2".to_string()]);
        let dir = std::env::temp_dir().join("tc_bench_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn float_formats() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(f3(1.2345), "1.234");
    }
}
