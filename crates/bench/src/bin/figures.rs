//! Renders the paper's worked figures (3.1, 3.2, 3.6, 3.7, 4.1, 4.2) as
//! Graphviz files under `results/figures/`, with interval labels on nodes
//! and non-tree arcs dashed — `dot -Tpng` turns them into the diagrams the
//! paper prints.
//!
//! Usage: `cargo run --release -p tc-bench --bin figures`

use std::path::PathBuf;

use tc_core::{ClosureConfig, CompressedClosure};
use tc_graph::{generators, DiGraph, NodeId};

fn out_dir() -> PathBuf {
    let dir = tc_bench::results_dir().join("figures");
    std::fs::create_dir_all(&dir).expect("create results/figures");
    dir
}

fn save(name: &str, closure: &CompressedClosure) {
    let path = out_dir().join(format!("{name}.dot"));
    std::fs::write(&path, closure.to_dot()).expect("write dot file");
    println!(
        "{:<12} {:>3} nodes {:>3} intervals -> {}",
        name,
        closure.node_count(),
        closure.total_intervals(),
        path.display()
    );
}

fn main() {
    // Fig 3.1 — a tree with contiguous postorder labels.
    let tree = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
    save("fig3_1", &ClosureConfig::new().gap(1).build(&tree).unwrap());

    // Fig 3.2/3.3 — a DAG: tree cover plus surviving non-tree intervals.
    let dag = DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 5)]);
    save("fig3_2", &ClosureConfig::new().gap(1).build(&dag).unwrap());

    // Fig 3.6 — the bipartite worst case (m = 3).
    let flat = generators::bipartite_worst(4, 3);
    save("fig3_6", &ClosureConfig::new().gap(1).build(&flat).unwrap());

    // Fig 3.7 — the hub rewrite.
    let hub = generators::bipartite_with_hub(4, 3);
    save("fig3_7", &ClosureConfig::new().gap(1).build(&hub).unwrap());

    // Fig 4.1 — gapped numbering after two leaf insertions.
    let base = DiGraph::from_edges([(0, 1), (0, 2)]);
    let mut updatable = ClosureConfig::new().gap(10).build(&base).unwrap();
    let x = updatable.add_node_with_parents(&[NodeId(1)]).unwrap();
    updatable.add_node_with_parents(&[NodeId(2)]).unwrap();
    save("fig4_1", &updatable);

    // Fig 4.2 — plus a non-tree arc whose interval is subsumed upstream.
    let h = updatable.add_node_with_parents(&[NodeId(2)]).unwrap();
    updatable.add_edge(x, h).unwrap();
    save("fig4_2", &updatable);

    println!("\nRender with: dot -Tpng results/figures/fig3_2.dot -o fig3_2.png");
}
