//! Closed-loop load generator for the network serving front end
//! (DESIGN.md, "Network serving").
//!
//! Starts the TCP daemon in-process on an ephemeral localhost port, then
//! drives it with N client threads over *real sockets*, each running a
//! closed loop: send one request line, wait for the response, record the
//! round-trip latency, repeat. The request mix is `--write-pct` percent
//! writes (`add-edge` / `remove-edge` pairs on hashed endpoints, so the
//! graph stays bounded) and the rest reads (`reaches` probes by string
//! key). Every response must be protocol-clean: `ok ...` (semantic
//! rejections like a cycle are `ok rejected` and count as success); any
//! `err ...` response is a protocol error and fails the run.
//!
//! Before any timing, network answers are spot-checked against an
//! in-process oracle: a batch of writes goes through the wire, the engine
//! is flushed, and `reaches` / `successors` answers from a network client
//! are compared with a [`tc_core::ShardedReader`] plus the engine's own
//! dictionary — a divergence aborts the run before a single number is
//! reported.
//!
//! ```text
//! serve_net [--nodes 2000] [--degree 2.0] [--seed 1] [--shards 2]
//!           [--duration-ms 1000] [--write-pct 10] [--max-clients 8]
//! ```
//!
//! Writes `results/net_scale.csv` with one row per client count:
//! requests/s, p50/p95/p99 round-trip latency (µs), and the protocol
//! error count (asserted zero).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use tc_bench::{f2, Args, Table};
use tc_core::{ClosureConfig, ShardedClosure};
use tc_graph::{generators, NodeId};
use tc_server::{Client, Dict, Engine, EngineConfig, Server, ServerConfig};

const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One timed cell: everything the client threads brought home.
struct Measurement {
    clients: usize,
    requests: u64,
    elapsed: f64,
    /// Round-trip latencies in microseconds, merged across clients, sorted.
    latencies_us: Vec<u64>,
    protocol_errors: u64,
}

impl Measurement {
    fn percentile(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let ix = ((self.latencies_us.len() - 1) as f64 * p).round() as usize;
        self.latencies_us[ix]
    }
}

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 2000);
    let degree: f64 = args.get("degree", 2.0);
    let seed: u64 = args.get("seed", 1);
    let shards: usize = args.get("shards", 2);
    let duration_ms: u64 = args.get("duration-ms", 1000);
    let write_pct: u64 = args.get("write-pct", 10).min(100);
    let max_clients: usize = args.get("max-clients", 8);
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());

    eprintln!("generating {nodes}-node, degree-{degree} DAG (seed {seed})...");
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes,
        avg_out_degree: degree,
        seed,
    });
    let sharded = ShardedClosure::build(ClosureConfig::new(), &g, shards)
        .expect("generated DAG is acyclic");
    let engine = Engine::start(sharded, Dict::with_default_keys(nodes), EngineConfig::default());
    let server = Server::start(engine, "127.0.0.1:0", ServerConfig::default())
        .expect("bind ephemeral localhost port");
    let addr = server.addr().to_string();
    eprintln!("daemon up on {addr} ({shards} shard(s))");

    // Answers must be right before they are fast: push writes through the
    // wire, flush, and compare network answers with the in-process oracle.
    oracle_check(&server, &addr, nodes);

    let mut cells: Vec<Measurement> = Vec::new();
    for &clients in CLIENT_COUNTS.iter().filter(|&&c| c <= max_clients) {
        let cell = run_cell(&addr, clients, nodes, duration_ms, write_pct);
        eprintln!(
            "clients={clients}: {:>8.0} req/s, p50 {}us p95 {}us p99 {}us, {} protocol errors",
            cell.requests as f64 / cell.elapsed,
            cell.percentile(0.50),
            cell.percentile(0.95),
            cell.percentile(0.99),
            cell.protocol_errors
        );
        cells.push(cell);
    }

    let caught = server.caught_panics();
    server.stop().expect("accept loop survived the load");

    let mut table = Table::new(
        &format!(
            "network serving: n={nodes}, degree={degree}, {shards} shard(s), \
             {write_pct}% writes, {duration_ms}ms cells, closed loop over localhost, \
             {cores} cores"
        ),
        &[
            "clients",
            "cores",
            "requests",
            "reqs_per_s",
            "per_client",
            "scaling_vs_1client",
            "p50_us",
            "p95_us",
            "p99_us",
            "write_pct",
            "protocol_errors",
        ],
    );
    let base = cells.first().map(|c| c.requests as f64 / c.elapsed).unwrap_or(1.0);
    for cell in &cells {
        let qps = cell.requests as f64 / cell.elapsed;
        table.row(&[
            cell.clients.to_string(),
            cores.to_string(),
            cell.requests.to_string(),
            format!("{qps:.0}"),
            format!("{:.0}", qps / cell.clients as f64),
            f2(qps / base),
            cell.percentile(0.50).to_string(),
            cell.percentile(0.95).to_string(),
            cell.percentile(0.99).to_string(),
            write_pct.to_string(),
            cell.protocol_errors.to_string(),
        ]);
    }
    table.finish("net_scale");

    let errors: u64 = cells.iter().map(|c| c.protocol_errors).sum();
    if caught > 0 || errors > 0 {
        eprintln!("FAIL: {errors} protocol errors, {caught} handler panics under load");
        std::process::exit(1);
    }
    println!("zero protocol errors and zero handler panics across all cells");
}

/// Hashed endpoints for write ops: ascending ids so `add-edge` is usually
/// accepted (a rejection is still protocol-clean), stable per slot so the
/// paired `remove-edge` deletes the arc its own slot added earlier and the
/// graph stays bounded under sustained load.
fn arc_at(j: u64, nodes: usize) -> (usize, usize) {
    let h = j.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let src = (h >> 32) as usize % (nodes - 1);
    let dst = src + 1 + (h >> 7) as usize % (nodes - src - 1);
    (src, dst)
}

/// Pushes writes through the wire, flushes, and compares network answers
/// against the engine's own snapshot reader + dictionary. Panics on any
/// divergence — the bench refuses to time a daemon that answers wrong.
fn oracle_check(server: &Server, addr: &str, nodes: usize) {
    let mut c = Client::connect(addr).expect("oracle client connects");
    for j in 0..64u64 {
        let (src, dst) = arc_at(j, nodes);
        let resp = c.request(&format!("add-edge n{src} n{dst}")).expect("oracle write");
        assert!(resp.starts_with("ok"), "oracle write rejected by protocol: {resp:?}");
    }
    assert_eq!(c.request("flush").expect("flush"), "ok flushed");

    let dict = Dict::from_bytes(&server.engine().dict_bytes()).expect("dict snapshot");
    let mut reader = server.engine().reader();
    let mut checked = 0u64;
    for k in 0..256u64 {
        let h = k.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let a = (h >> 32) as usize % nodes;
        let b = (h >> 13) as usize % nodes;
        let want = reader.reaches(NodeId(a as u32), NodeId(b as u32));
        let got = c.reaches(&format!("n{a}"), &format!("n{b}")).expect("oracle probe");
        assert_eq!(got, Ok(want), "network reaches(n{a}, n{b}) diverged from the oracle");
        checked += 1;
    }
    for a in (0..nodes).step_by((nodes / 8).max(1)) {
        let resp = c.request(&format!("successors n{a}")).expect("oracle successors");
        let mut want: Vec<&str> = reader
            .successors(NodeId(a as u32))
            .iter()
            .filter_map(|&v| dict.key(v))
            .collect();
        want.sort_unstable();
        let got: Vec<&str> =
            resp.strip_prefix("ok").expect("successors answer").split_whitespace().collect();
        assert_eq!(got, want, "network successors(n{a}) diverged from the oracle");
        checked += 1;
    }
    eprintln!("oracle: {checked} network answers identical to the in-process reader");
}

/// One closed-loop cell: `clients` threads, each one socket, each looping
/// send -> wait -> record until the deadline.
fn run_cell(
    addr: &str,
    clients: usize,
    nodes: usize,
    duration_ms: u64,
    write_pct: u64,
) -> Measurement {
    let stop = AtomicBool::new(false);
    let errors = AtomicU64::new(0);
    let start = Instant::now();
    let per_client: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let (stop, errors) = (&stop, &errors);
                let mut c = Client::connect(addr).expect("load client connects");
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(4096);
                    let mut j = t as u64 * 0x1_0000;
                    while !stop.load(Ordering::Relaxed) {
                        let req = if j % 100 < write_pct {
                            let (src, dst) = arc_at(j / 2, nodes);
                            if j % 2 == 0 {
                                format!("add-edge n{src} n{dst}")
                            } else {
                                format!("remove-edge n{src} n{dst}")
                            }
                        } else {
                            let h = j.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                            let a = (h >> 32) as usize % nodes;
                            let b = (h >> 11) as usize % nodes;
                            format!("reaches n{a} n{b}")
                        };
                        let sent = Instant::now();
                        let resp = c.request(&req).expect("daemon answered");
                        lat.push(sent.elapsed().as_micros() as u64);
                        if !resp.starts_with("ok") {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        j += 1;
                    }
                    lat
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(duration_ms));
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().expect("load client panicked")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut latencies_us: Vec<u64> = per_client.into_iter().flatten().collect();
    latencies_us.sort_unstable();
    Measurement {
        clients,
        requests: latencies_us.len() as u64,
        elapsed,
        latencies_us,
        protocol_errors: errors.load(Ordering::Relaxed),
    }
}
