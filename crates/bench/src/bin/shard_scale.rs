//! Shard scaling of the sharded closure layer (DESIGN.md, "Sharded
//! closure").
//!
//! Builds a multi-component random DAG — `--components` independent §3.3
//! DAGs side by side, the multi-rooted KB shape the WCC partitioner splits
//! cleanly — verifies the sharded answers bit-identical to the unsharded
//! closure over the full probe set (answers must be right before they are
//! fast), then measures, at 1/2/4/8 shards:
//!
//! * **writer throughput** — churn batches submitted through the
//!   [`tc_core::ShardedService`] front end, which validates each op against
//!   its authoritative mirror and fans the survivors out to one
//!   [`tc_core::ClosureService`] writer thread per shard (ops/s of
//!   submitted churn, plus the per-shard applied count);
//! * **batch-read throughput** — reader threads scatter-gathering the
//!   probe set through [`tc_core::ShardedReader::reaches_batch_into`]
//!   (same-shard pairs grouped per shard, leftovers through the boundary
//!   closure), with and without concurrent churn.
//!
//! The unsharded [`tc_core::ClosureService`] is measured as the `flat`
//! baseline rows. Writer scaling is capped by physical cores — the `cores`
//! column records `std::thread::available_parallelism` so single-core runs
//! read honestly.
//!
//! Churn is component-local (shallow-source arc inserts, leaf adds, and
//! removals of the batch's own inserts within one component) with a 1/128
//! sprinkle of cross-component arcs, so per-shard writers see independent
//! streams while boundary maintenance still runs.
//!
//! ```text
//! shard_scale [--nodes 20000] [--components 8] [--degree 3.0] [--seed 1]
//!             [--pairs 4096] [--duration-ms 300] [--reps 3] [--readers 2]
//!             [--churn-batch 512]
//! ```
//!
//! Writes `results/shard_scale.csv`: one row per (mode, shards) with
//! writer ops/s, read-only and under-churn probes/s, cross-arc and
//! boundary sizes, and scaling ratios against the flat baseline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_bench::{f2, Args, Table};
use tc_core::{
    ClosureConfig, ClosureService, CompressedClosure, ServiceConfig, ServiceOp, ShardedClosure,
    ShardedService,
};
use tc_graph::{generators, NodeId};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One (mode, shards) row.
struct Measurement {
    mode: &'static str,
    shards: usize,
    cross_arcs: usize,
    boundary: usize,
    /// Churn ops submitted+flushed per second (best of reps).
    write_ops: f64,
    /// Ops the shard writers actually applied during the best write rep.
    applied: u64,
    /// Read-only probes/s (best of reps).
    read_qps: f64,
    /// Probes/s with churn running concurrently (best of reps).
    churn_qps: f64,
}

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 20_000);
    let degree: f64 = args.get("degree", 3.0);
    let seed: u64 = args.get("seed", 1);
    let pair_count: usize = args.get("pairs", 4096);
    let duration_ms: u64 = args.get("duration-ms", 300);
    let reps: usize = args.get("reps", 3).max(1);
    let readers: usize = args.get("readers", 2);
    let churn_batch: usize = args.get("churn-batch", 512);
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());

    let components: usize = args.get("components", 8).max(1);
    let comp_size = (nodes / components).max(2);
    let nodes = comp_size * components;
    eprintln!(
        "generating {components} x {comp_size}-node degree-{degree} components (seed {seed})..."
    );
    let mut g = tc_graph::DiGraph::with_nodes(nodes);
    for c in 0..components {
        let part = generators::random_dag(generators::RandomDagConfig {
            nodes: comp_size,
            avg_out_degree: degree,
            seed: seed ^ (c as u64).wrapping_mul(0x632B_E5AB),
        });
        let base = (c * comp_size) as u32;
        for (u, v) in part.edges() {
            g.add_edge(NodeId(base + u.0), NodeId(base + v.0));
        }
    }
    let g = g;
    let start = Instant::now();
    let closure = ClosureConfig::new().build(&g).expect("generated DAG is acyclic");
    eprintln!(
        "built closure: {} intervals in {:.2}s ({cores} cores available)",
        closure.total_intervals(),
        start.elapsed().as_secs_f64()
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let pairs: Vec<(NodeId, NodeId)> = (0..pair_count)
        .map(|_| {
            (
                NodeId::from_index(rng.random_range(0..nodes)),
                NodeId::from_index(rng.random_range(0..nodes)),
            )
        })
        .collect();
    let want = closure.reaches_batch(&pairs);

    let churn = Churn { components, comp_size };
    let mut cells: Vec<Measurement> = Vec::new();
    cells.push(flat_cell(&closure, &pairs, &want, readers, duration_ms, reps, churn_batch, churn));
    for &shards in &SHARD_COUNTS {
        let start = Instant::now();
        let sharded = ShardedClosure::build(ClosureConfig::new(), &g, shards)
            .expect("generated DAG is acyclic");
        // The identity gate: every probe answered exactly as the unsharded
        // closure answers it, before any timing.
        assert_eq!(
            sharded.reaches_batch(&pairs),
            want,
            "sharded answers diverge from the unsharded closure at {shards} shards"
        );
        eprintln!(
            "{shards} shards (sizes {:?}, {} cross arcs, boundary {}) built in {:.2}s; \
             {pair_count} probe answers identical to the unsharded closure",
            sharded.shard_sizes(),
            sharded.cross_arc_count(),
            sharded.boundary_size(),
            start.elapsed().as_secs_f64()
        );
        cells.push(sharded_cell(
            &sharded, &pairs, &want, shards, readers, duration_ms, reps, churn_batch, churn,
        ));
    }

    let mut table = Table::new(
        &format!(
            "sharded closure scaling: n={nodes}, degree={degree}, {pair_count}-pair probe \
             batches, {churn_batch}-op churn batches, {readers} readers, {duration_ms}ms \
             cells, best of {reps}, {cores} cores"
        ),
        &[
            "mode",
            "shards",
            "cores",
            "cross_arcs",
            "boundary",
            "writer_ops_per_s",
            "applied",
            "read_probes_per_s",
            "churn_probes_per_s",
            "writer_scaling_vs_flat",
            "read_scaling_vs_flat",
        ],
    );
    let flat_write = cells[0].write_ops;
    let flat_read = cells[0].read_qps;
    for cell in &cells {
        table.row(&[
            cell.mode.to_string(),
            cell.shards.to_string(),
            cores.to_string(),
            cell.cross_arcs.to_string(),
            cell.boundary.to_string(),
            format!("{:.0}", cell.write_ops),
            cell.applied.to_string(),
            format!("{:.0}", cell.read_qps),
            format!("{:.0}", cell.churn_qps),
            f2(cell.write_ops / flat_write),
            f2(cell.read_qps / flat_read),
        ]);
    }
    table.finish("shard_scale");

    for cell in cells.iter().filter(|c| c.mode == "sharded") {
        println!(
            "{} shards: writer {:.2}x, batch reads {:.2}x vs the flat service ({cores} cores)",
            cell.shards,
            cell.write_ops / flat_write,
            cell.read_qps / flat_read
        );
    }
}

/// Per-component churn geometry.
#[derive(Clone, Copy)]
struct Churn {
    components: usize,
    comp_size: usize,
}

impl Churn {
    /// Mostly component-local arc at hashed position `j`: shallow source
    /// within a hashed component, destination strictly ascending (global
    /// ids ascend within and across components, so ascending arcs can
    /// never close a cycle). Every 128th arc jumps past its component's
    /// end — a cross-component (usually cross-shard) arc that exercises
    /// boundary maintenance without letting the boundary swamp the run.
    fn arc_at(&self, j: u64) -> (NodeId, NodeId) {
        let h = j.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let comp = (h >> 17) as usize % self.components;
        let base = comp * self.comp_size;
        let shallow = (self.comp_size / 10).max(1);
        let src = base + (h >> 32) as usize % shallow;
        let end = if h & 0x7f == 0 { self.components * self.comp_size } else { base + self.comp_size };
        let dst = src + 1 + (h >> 7) as usize % (end - src - 1);
        (NodeId(src as u32), NodeId(dst as u32))
    }
}

/// Churn batch in the same shape `serve_scale` uses — arc inserts, leaf
/// adds, and removals of this batch's own earlier inserts — but
/// component-local (see [`Churn::arc_at`]), so per-shard writers see
/// independent streams. The sharded front end validates each op and routes
/// it to the owning shard's writer; cross-shard arcs go through boundary
/// maintenance instead.
fn churn_ops(k: u64, batch: usize, churn: Churn) -> Vec<ServiceOp> {
    (0..batch as u64)
        .map(|i| match i % 4 {
            0 => {
                let (src, dst) = churn.arc_at(k + i);
                ServiceOp::AddEdge { src, dst }
            }
            1 => {
                let (src, _) = churn.arc_at(k + i);
                ServiceOp::AddNode { parents: vec![src] }
            }
            2 => {
                let (src, dst) = churn.arc_at(k + i - 2);
                ServiceOp::RemoveEdge { src, dst }
            }
            _ => {
                let (src, dst) = churn.arc_at(k + i + 1);
                ServiceOp::AddEdge { src, dst }
            }
        })
        .collect()
}

/// Generic timed cell: spawns `readers` probe threads against `read`,
/// drives `churn` on the main thread until the deadline, returns (probes/s,
/// churn ops/s).
fn timed_cell(
    readers: usize,
    duration_ms: u64,
    read: impl Fn(&AtomicBool) -> u64 + Sync,
    mut churn: impl FnMut() -> u64,
) -> (f64, f64) {
    let stop = AtomicBool::new(false);
    let (probes, ops, elapsed) = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..readers).map(|_| scope.spawn(|| read(&stop))).collect();
        let start = Instant::now();
        let deadline = start + Duration::from_millis(duration_ms);
        let mut ops = 0u64;
        while Instant::now() < deadline {
            let done = churn();
            if done == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            ops += done;
        }
        stop.store(true, Ordering::Relaxed);
        let elapsed = start.elapsed().as_secs_f64();
        let probes: u64 = handles.into_iter().map(|h| h.join().expect("reader panicked")).sum();
        (probes, ops, elapsed)
    });
    (probes as f64 / elapsed, ops as f64 / elapsed)
}

#[allow(clippy::too_many_arguments)]
fn flat_cell(
    closure: &CompressedClosure,
    pairs: &[(NodeId, NodeId)],
    want: &[bool],
    readers: usize,
    duration_ms: u64,
    reps: usize,
    churn_batch: usize,
    churn: Churn,
) -> Measurement {
    let mut best = Measurement {
        mode: "flat",
        shards: 1,
        cross_arcs: 0,
        boundary: 0,
        write_ops: 0.0,
        applied: 0,
        read_qps: 0.0,
        churn_qps: 0.0,
    };
    for _ in 0..reps {
        // Read-only cell.
        let service = ClosureService::start(closure.clone(), ServiceConfig::new().audit(false));
        assert_eq!(service.reader().reaches_batch(pairs), want);
        let (read_qps, _) = timed_cell(
            readers,
            duration_ms,
            |stop| {
                let mut r = service.reader();
                let mut out = Vec::new();
                let mut probes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    r.refresh().reaches_batch_into(pairs, &mut out);
                    probes += pairs.len() as u64;
                }
                probes
            },
            || 0,
        );
        service.shutdown();
        best.read_qps = best.read_qps.max(read_qps);

        // Churn cell: same readers plus the writer churning.
        let service = ClosureService::start(closure.clone(), ServiceConfig::new().audit(false));
        let mut k = 0u64;
        let (churn_qps, write_ops) = timed_cell(
            readers,
            duration_ms,
            |stop| {
                let mut r = service.reader();
                let mut out = Vec::new();
                let mut probes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    r.refresh().reaches_batch_into(pairs, &mut out);
                    probes += pairs.len() as u64;
                }
                probes
            },
            || {
                service
                    .submit_batch(churn_ops(k, churn_batch, churn))
                    .expect("service closed mid-bench");
                k += churn_batch as u64;
                service.flush();
                churn_batch as u64
            },
        );
        let (stats, _) = service.shutdown();
        if write_ops > best.write_ops {
            best.write_ops = write_ops;
            best.applied = stats.applied;
            best.churn_qps = churn_qps;
        }
    }
    eprintln!(
        "flat     1 shard : {:>10.0} writer ops/s, {:>12.0} read probes/s, {:>12.0} under churn",
        best.write_ops, best.read_qps, best.churn_qps
    );
    best
}

#[allow(clippy::too_many_arguments)]
fn sharded_cell(
    sharded: &ShardedClosure,
    pairs: &[(NodeId, NodeId)],
    want: &[bool],
    shards: usize,
    readers: usize,
    duration_ms: u64,
    reps: usize,
    churn_batch: usize,
    churn: Churn,
) -> Measurement {
    let mut best = Measurement {
        mode: "sharded",
        shards,
        cross_arcs: sharded.cross_arc_count(),
        boundary: sharded.boundary_size(),
        write_ops: 0.0,
        applied: 0,
        read_qps: 0.0,
        churn_qps: 0.0,
    };
    for _ in 0..reps {
        // Read-only cell.
        let service = ShardedService::start(sharded.clone(), ServiceConfig::new().audit(false));
        assert_eq!(service.reader().reaches_batch(pairs), want);
        let (read_qps, _) = timed_cell(
            readers,
            duration_ms,
            |stop| {
                let mut r = service.reader();
                let mut out = Vec::new();
                let mut probes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    r.reaches_batch_into(pairs, &mut out);
                    probes += pairs.len() as u64;
                }
                probes
            },
            || 0,
        );
        service.shutdown();
        best.read_qps = best.read_qps.max(read_qps);

        // Churn cell: the front end validates, routes to per-shard writers,
        // and republishes the routing/boundary snapshot at each flush.
        let service = ShardedService::start(sharded.clone(), ServiceConfig::new().audit(false));
        let mut k = 0u64;
        let (churn_qps, write_ops) = timed_cell(
            readers,
            duration_ms,
            |stop| {
                let mut r = service.reader();
                let mut out = Vec::new();
                let mut probes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    r.reaches_batch_into(pairs, &mut out);
                    probes += pairs.len() as u64;
                }
                probes
            },
            || {
                service
                    .submit_batch(churn_ops(k, churn_batch, churn))
                    .expect("service closed mid-bench");
                k += churn_batch as u64;
                service.flush();
                churn_batch as u64
            },
        );
        let (stats, _) = service.shutdown();
        if let Some(v) = stats.audit_violation {
            panic!("shard audit failed during churn: {v}");
        }
        if write_ops > best.write_ops {
            best.write_ops = write_ops;
            best.applied = stats.applied;
            best.churn_qps = churn_qps;
        }
    }
    eprintln!(
        "sharded {shards:>2} shards: {:>10.0} writer ops/s, {:>12.0} read probes/s, {:>12.0} under churn",
        best.write_ops, best.read_qps, best.churn_qps
    );
    best
}
