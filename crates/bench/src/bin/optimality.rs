//! **Theorem 1** — Alg1 vs exhaustive tree-cover search and vs heuristic
//! covers.
//!
//! Sweeps every 6-node DAG (2^15 masks) checking that Alg1's interval count
//! equals the brute-force minimum over *all* tree covers, then quantifies on
//! larger random graphs how much worse the naive heuristics are — the
//! ablation justifying Alg1's existence.
//!
//! Usage: `cargo run --release -p tc-bench --bin optimality [--mask-nodes 6]
//! [--random-nodes 9] [--random-graphs 50]`

use tc_bench::{f2, Args, Table};
use tc_core::bruteforce::exhaustive_min_intervals;
use tc_core::{ClosureConfig, CompressedClosure, CoverStrategy};
use tc_graph::generators::{dag_from_mask, enumerate_dag_masks, random_dag, RandomDagConfig};

fn main() {
    let args = Args::parse();
    let mask_nodes: usize = args.get("mask-nodes", 6);
    let random_nodes: usize = args.get("random-nodes", 9);
    let random_graphs: u64 = args.get("random-graphs", 50);

    // Part 1: exhaustive Theorem 1 sweep over all small DAGs.
    let mut checked = 0u64;
    let mut skipped = 0u64;
    let mut mismatches = 0u64;
    for mask in enumerate_dag_masks(mask_nodes) {
        let g = dag_from_mask(mask_nodes, mask);
        match exhaustive_min_intervals(&g, 100_000) {
            Some(brute) => {
                let alg1 = CompressedClosure::build(&g).expect("DAG").total_intervals();
                if alg1 != brute.min_intervals {
                    mismatches += 1;
                    eprintln!("MISMATCH mask {mask:#b}: alg1 {alg1} vs brute {}", brute.min_intervals);
                }
                checked += 1;
            }
            None => skipped += 1,
        }
    }
    println!(
        "Theorem 1 sweep over all {mask_nodes}-node DAGs: {checked} graphs checked, \
         {skipped} skipped (cover space > limit), {mismatches} mismatches.\n"
    );
    assert_eq!(mismatches, 0, "Theorem 1 violated!");

    // Part 2: heuristic ablation on random graphs.
    let mut table = Table::new(
        &format!("Cover heuristics vs Alg1 on {random_graphs} random {random_nodes}-node DAGs"),
        &["strategy", "suboptimal_graphs", "avg_excess_intervals", "max_excess"],
    );
    let strategies = [
        ("first-parent", CoverStrategy::FirstParent),
        ("random", CoverStrategy::Random { seed: 999 }),
        ("deepest", CoverStrategy::Deepest),
    ];
    let mut excess: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
    for seed in 0..random_graphs {
        let g = random_dag(RandomDagConfig {
            nodes: random_nodes,
            avg_out_degree: 1.8,
            seed,
        });
        let optimal = CompressedClosure::build(&g).expect("DAG").total_intervals();
        for (ix, (_, strat)) in strategies.iter().enumerate() {
            let other = ClosureConfig::new()
                .strategy(*strat)
                .build(&g)
                .expect("DAG")
                .total_intervals();
            assert!(other >= optimal, "Theorem 1 violated by {strat:?}");
            excess[ix].push((other - optimal) as f64);
        }
    }
    for (ix, (name, _)) in strategies.iter().enumerate() {
        let subopt = excess[ix].iter().filter(|&&e| e > 0.0).count();
        let avg = tc_bench::mean(&excess[ix]);
        let max = excess[ix].iter().cloned().fold(0.0f64, f64::max);
        table.row(&[
            name.to_string(),
            subopt.to_string(),
            f2(avg),
            format!("{max:.0}"),
        ]);
    }
    table.finish("optimality");
}
