//! **§2.2 extension** — I/O per reachability query on paged storage.
//!
//! The paper's motivation: "in the case of large relations, the information
//! will reside on secondary storage, and hence we need to minimize I/O
//! traffic". This experiment serves the same random query mix from three
//! page layouts — compressed interval labels, full-closure successor lists,
//! and raw adjacency queried by pointer chasing — and counts page reads
//! under a small LRU buffer pool and under a cold cache.
//!
//! Usage: `cargo run --release -p tc-bench --bin io_costs [--nodes 2000]
//! [--degree 3] [--queries 2000] [--page 4096] [--pool 16]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_bench::{f2, Args, Table};
use tc_core::ClosureConfig;
use tc_graph::generators::{random_dag, RandomDagConfig};
use tc_graph::NodeId;
use tc_store::{AdjStore, BufferPool, LabelStore, TcListStore};

fn main() {
    let args = Args::parse();
    // Defaults sized so no layout fits entirely in the buffer pool — the
    // regime the paper's §2.2 motivation is about.
    let nodes: usize = args.get("nodes", 5000);
    let degree: f64 = args.get("degree", 3.0);
    let queries: usize = args.get("queries", 2000);
    let page: usize = args.get("page", 512);
    let pool_frames: usize = args.get("pool", 32);

    let g = random_dag(RandomDagConfig {
        nodes,
        avg_out_degree: degree,
        seed: 7,
    });
    let closure = ClosureConfig::new().gap(1).build(&g).expect("DAG");

    let labels = LabelStore::build(&closure, page);
    let tclists = TcListStore::build(&g, page);
    let adj = AdjStore::build(&g, page);

    let mut rng = StdRng::seed_from_u64(99);
    let mix: Vec<(NodeId, NodeId)> = (0..queries)
        .map(|_| {
            (
                NodeId(rng.random_range(0..nodes as u32)),
                NodeId(rng.random_range(0..nodes as u32)),
            )
        })
        .collect();

    let mut table = Table::new(
        &format!(
            "I/O per reachability query: {nodes} nodes, degree {degree}, {queries} queries, \
             {page}B pages, {pool_frames}-frame pool"
        ),
        &["layout", "disk_pages", "reads/query", "hit_ratio", "footprint_pages"],
    );

    // Compressed labels.
    let mut pool = BufferPool::new(pool_frames);
    labels.blob().pager().reset_counters();
    for &(u, v) in &mix {
        labels.reaches(u, v, &mut pool);
    }
    table.row(&[
        "compressed labels".into(),
        labels.blob().page_count().to_string(),
        f2(labels.blob().pager().reads() as f64 / queries as f64),
        f2(pool.stats().hit_ratio()),
        labels.blob().page_count().to_string(),
    ]);

    // Full-closure successor lists.
    let mut pool = BufferPool::new(pool_frames);
    tclists.blob().pager().reset_counters();
    for &(u, v) in &mix {
        tclists.reaches(u, v, &mut pool);
    }
    table.row(&[
        "full closure lists".into(),
        tclists.blob().page_count().to_string(),
        f2(tclists.blob().pager().reads() as f64 / queries as f64),
        f2(pool.stats().hit_ratio()),
        tclists.blob().page_count().to_string(),
    ]);

    // Pointer chasing over adjacency.
    let mut pool = BufferPool::new(pool_frames);
    adj.blob().pager().reset_counters();
    for &(u, v) in &mix {
        adj.reaches(u, v, &mut pool);
    }
    table.row(&[
        "adjacency (pointer chasing)".into(),
        adj.blob().page_count().to_string(),
        f2(adj.blob().pager().reads() as f64 / queries as f64),
        f2(pool.stats().hit_ratio()),
        adj.blob().page_count().to_string(),
    ]);

    table.finish("io_costs");
    println!(
        "Paper-shape check: compressed labels answer in ~1 page read; full closure lists pay\n\
         for their footprint; pointer chasing multiplies reads by path length."
    );
}
