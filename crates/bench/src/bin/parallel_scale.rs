//! Scaling of level-parallel closure construction and batch queries over
//! worker-thread counts (DESIGN.md, "Parallel construction").
//!
//! Builds one random §3.3 DAG, then times `ClosureConfig::threads(t)` builds
//! and `reaches_batch` sweeps for each requested thread count, reporting
//! speedups against the `threads = 1` serial baseline. Every parallel build
//! is checked to be interval-identical to the serial one before its numbers
//! are reported.
//!
//! ```text
//! parallel_scale [--nodes 50000] [--degree 3.0] [--seed 1]
//!                [--threads 1,2,4,8] [--pairs 200000] [--reps 3]
//! ```
//!
//! Writes `results/parallel_scale.csv`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_bench::{f2, Args, Table};
use tc_core::{ClosureConfig, CompressedClosure};
use tc_graph::{generators, NodeId};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 50_000);
    let degree: f64 = args.get("degree", 3.0);
    let seed: u64 = args.get("seed", 1);
    let reps: usize = args.get("reps", 3).max(1);
    let pair_count: usize = args.get("pairs", 200_000);
    let list: String = args.get("threads", "1,2,4,8".to_string());
    let thread_counts: Vec<usize> = list
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();

    eprintln!("generating {nodes}-node, degree-{degree} DAG (seed {seed})...");
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes,
        avg_out_degree: degree,
        seed,
    });

    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let pairs: Vec<(NodeId, NodeId)> = (0..pair_count)
        .map(|_| {
            (
                NodeId::from_index(rng.random_range(0..nodes)),
                NodeId::from_index(rng.random_range(0..nodes)),
            )
        })
        .collect();

    let (serial_build_ms, serial) = time_build(&g, 1, reps);
    let serial_batch_ms = time_batch(&serial, &pairs, reps);

    let mut table = Table::new(
        &format!("level-parallel scaling: n={nodes}, degree={degree}, {pair_count} batched queries"),
        &["threads", "build_ms", "build_speedup", "batch_ms", "batch_speedup"],
    );
    for &t in &thread_counts {
        let (build_ms, closure) = if t == 1 {
            (serial_build_ms, serial.clone())
        } else {
            let (ms, c) = time_build(&g, t, reps);
            assert_identical(&serial, &c, t);
            (ms, c)
        };
        let batch_ms = if t == 1 {
            serial_batch_ms
        } else {
            time_batch(&closure, &pairs, reps)
        };
        table.row(&[
            t.to_string(),
            f2(build_ms),
            f2(serial_build_ms / build_ms),
            f2(batch_ms),
            f2(serial_batch_ms / batch_ms),
        ]);
    }
    table.finish("parallel_scale");
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("(host reports {cpus} available CPUs)");
}

/// Builds the closure with `threads` workers `reps` times, returning the
/// best wall-clock milliseconds and the last closure.
fn time_build(g: &tc_graph::DiGraph, threads: usize, reps: usize) -> (f64, CompressedClosure) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let start = Instant::now();
        let c = ClosureConfig::new()
            .threads(threads)
            .build(g)
            .expect("generated DAG is acyclic");
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        out = Some(c);
    }
    (best, out.expect("reps >= 1"))
}

/// Times one `reaches_batch` sweep over `pairs`, best of `reps`.
fn time_batch(c: &CompressedClosure, pairs: &[(NodeId, NodeId)], reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let answers = c.reaches_batch(pairs);
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(answers.len(), pairs.len());
    }
    best
}

/// The parallel build must be interval-identical to the serial one; refuse
/// to report numbers for a wrong answer.
fn assert_identical(serial: &CompressedClosure, parallel: &CompressedClosure, threads: usize) {
    assert_eq!(
        serial.total_intervals(),
        parallel.total_intervals(),
        "threads={threads}: interval totals diverge from serial build"
    );
    for ix in 0..serial.node_count() {
        let v = NodeId::from_index(ix);
        assert_eq!(
            serial.intervals(v),
            parallel.intervals(v),
            "threads={threads}: interval set of {v:?} diverges from serial build"
        );
    }
}
