//! Reader scaling of the concurrent serving layer (DESIGN.md, "Concurrent
//! serving").
//!
//! Builds one random §3.3 DAG, starts a [`tc_core::ClosureService`], and
//! measures reader throughput (batched `reaches` probes) at 1/2/4/8 reader
//! threads, with and without a writer concurrently churning 1000-op
//! batches of §4-incremental updates (arc + leaf-node inserts, see
//! [`churn_ops`]) through the service. For comparison it also times the
//! mutex-serialized design the service replaces: readers and the writer
//! sharing one `Mutex<CompressedClosure>`, where every published batch
//! (apply + refreeze) stalls all readers for its full duration. Before any
//! number is reported, service snapshot answers are checked to be identical
//! to the mutable closure's over the full probe set.
//!
//! ```text
//! serve_scale [--nodes 50000] [--degree 3.0] [--seed 1] [--pairs 4096]
//!             [--duration-ms 300] [--reps 5] [--churn-batch 1000]
//!             [--churn-mix]
//! ```
//!
//! `--churn-mix` turns the writer batches into mixed add/remove churn
//! (arc removals of this batch's own inserts plus occasional node
//! removals), exercising the scoped deletion recompute under serving load.
//!
//! Writes `results/serve_scale.csv` with one row per (mode, readers,
//! writer) cell: probes/s, per-reader probes/s, scaling vs the same mode's
//! 1-reader cell, max observed staleness (ops), and snapshots published.
//! The `cores` column records `std::thread::available_parallelism` — reader
//! scaling is capped by physical cores, while the service-vs-mutex gap
//! under churn shows even on one core (snapshot readers never stall behind
//! the writer's apply+freeze).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_bench::{f2, Args, Table};
use tc_core::{ClosureConfig, ClosureService, CompressedClosure, ServiceConfig, ServiceOp};
use tc_graph::{generators, NodeId};

const READER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One timed cell.
struct Measurement {
    mode: &'static str,
    readers: usize,
    writer: bool,
    /// Total reader probes per second (best of reps).
    qps: f64,
    /// Max staleness (submitted-but-unseen ops) any reader observed.
    max_staleness: u64,
    /// Snapshots the writer published during the best rep.
    publishes: u64,
}

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 50_000);
    let degree: f64 = args.get("degree", 3.0);
    let seed: u64 = args.get("seed", 1);
    let pair_count: usize = args.get("pairs", 4096);
    let duration_ms: u64 = args.get("duration-ms", 300);
    let reps: usize = args.get("reps", 5).max(1);
    let churn_batch: usize = args.get("churn-batch", 1000);
    let churn_mix = args.has("churn-mix");
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());

    eprintln!("generating {nodes}-node, degree-{degree} DAG (seed {seed})...");
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes,
        avg_out_degree: degree,
        seed,
    });
    let start = Instant::now();
    let closure = ClosureConfig::new().build(&g).expect("generated DAG is acyclic");
    eprintln!(
        "built closure: {} intervals in {:.2}s ({cores} cores available)",
        closure.total_intervals(),
        start.elapsed().as_secs_f64()
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let pairs: Vec<(NodeId, NodeId)> = (0..pair_count)
        .map(|_| {
            (
                NodeId::from_index(rng.random_range(0..nodes)),
                NodeId::from_index(rng.random_range(0..nodes)),
            )
        })
        .collect();

    // Answers must be right before they are fast: a service snapshot must
    // agree with the mutable closure over the whole probe set.
    let want = closure.reaches_batch(&pairs);
    {
        let service = ClosureService::start(closure.clone(), ServiceConfig::new());
        let got = service.reader().reaches_batch(&pairs);
        assert_eq!(got, want, "service snapshot answers diverge from the mutable closure");
        eprintln!("service answers identical to mutable closure over {pair_count} pairs");
    }

    let mut cells: Vec<Measurement> = Vec::new();
    for writer in [false, true] {
        for &readers in &READER_COUNTS {
            let cell = best_service_cell(
                &closure, &pairs, readers, writer, duration_ms, reps, churn_batch, nodes,
                churn_mix,
            );
            eprintln!(
                "service  readers={readers} writer={}: {:>12.0} probes/s, staleness<={}, {} publishes",
                u8::from(writer), cell.qps, cell.max_staleness, cell.publishes
            );
            cells.push(cell);
        }
    }
    for &readers in &READER_COUNTS {
        let cell = best_mutex_cell(
            &closure, &pairs, readers, duration_ms, reps, churn_batch, nodes, churn_mix,
        );
        eprintln!(
            "mutex    readers={readers} writer=1: {:>12.0} probes/s, {} publishes",
            cell.qps, cell.publishes
        );
        cells.push(cell);
    }

    let mut table = Table::new(
        &format!(
            "concurrent serving: n={nodes}, degree={degree}, {pair_count}-pair probe batches, \
             {churn_batch}-op writer batches, {duration_ms}ms cells, best of {reps}, \
             {cores} cores"
        ),
        &[
            "mode",
            "readers",
            "writer",
            "cores",
            "probes_per_s",
            "per_reader",
            "scaling_vs_1reader",
            "max_staleness_ops",
            "publishes",
        ],
    );
    for cell in &cells {
        let base = cells
            .iter()
            .find(|c| c.mode == cell.mode && c.writer == cell.writer && c.readers == 1)
            .map(|c| c.qps)
            .unwrap_or(cell.qps);
        table.row(&[
            cell.mode.to_string(),
            cell.readers.to_string(),
            u8::from(cell.writer).to_string(),
            cores.to_string(),
            format!("{:.0}", cell.qps),
            format!("{:.0}", cell.qps / cell.readers as f64),
            f2(cell.qps / base),
            cell.max_staleness.to_string(),
            cell.publishes.to_string(),
        ]);
    }
    table.finish("serve_scale");

    let service_churn = |readers: usize| {
        cells
            .iter()
            .find(|c| c.mode == "service" && c.writer && c.readers == readers)
            .map(|c| c.qps)
    };
    let mutex_churn = |readers: usize| {
        cells.iter().find(|c| c.mode == "mutex" && c.readers == readers).map(|c| c.qps)
    };
    for &readers in &READER_COUNTS {
        if let (Some(s), Some(m)) = (service_churn(readers), mutex_churn(readers)) {
            println!(
                "under churn, {readers} readers: snapshot service {:.2}x over mutex-serialized",
                s / m
            );
        }
    }
    if let (Some(one), Some(eight)) = (service_churn(1), service_churn(8)) {
        println!(
            "service under churn: 8 readers at {:.2}x the 1-reader throughput ({cores} cores)",
            eight / one
        );
    }
}

/// A 1000-op churn batch of §4-incremental ops: alternating non-tree arc
/// inserts and leaf-node adds at hashed positions, plus — with `mix` on —
/// arc removals (each one deleting the arc an earlier slot of the same
/// batch inserted, so removals hit real arcs) and occasional node removals.
/// Deletions used to be excluded here because `remove_edge`/`remove_node`
/// ended in a full non-tree recompute (near-rebuild, minutes of
/// repropagation per delete-heavy batch at 50k nodes); the scoped
/// affected-region recompute (DESIGN.md, "Scoped deletion recompute";
/// delete_scale / X2 measures the gap) made them batch-friendly. Arc
/// sources and leaf parents come from the shallow decile of the id space
/// (random DAGs here only have descending-id arcs, so low ids have few
/// predecessors): §4 insertion propagates the new intervals to every
/// predecessor of the attachment point, and shallow sources keep a batch —
/// and the scoped recompute of its removals — at real-but-bounded cost.
/// Arc destinations strictly ascend ids so no op is rejected as a cycle.
fn churn_ops(k: u64, batch: usize, nodes: usize, mix: bool) -> Vec<ServiceOp> {
    let shallow = (nodes / 10).max(1);
    let arc_at = |j: u64| {
        let h = j.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let src = (h >> 32) as usize % shallow;
        let dst = src + 1 + (h >> 7) as usize % (nodes - src - 1);
        (NodeId(src as u32), NodeId(dst as u32))
    };
    (0..batch as u64)
        .map(|i| {
            let h = (k + i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let src = NodeId(((h >> 32) as usize % shallow) as u32);
            match (i % 4, mix) {
                // Remove the arc slot i-2 of this batch inserted two ops
                // ago; a rare node removal rides along (the node regrows
                // arcs from later batches' inserts).
                (2, true) => {
                    let (src, dst) = arc_at(k + i - 2);
                    ServiceOp::RemoveEdge { src, dst }
                }
                (3, true) if h & 0x1f == 0 => ServiceOp::RemoveNode { node: src },
                _ => {
                    if i % 2 == 0 {
                        let (src, dst) = arc_at(k + i);
                        ServiceOp::AddEdge { src, dst }
                    } else {
                        ServiceOp::AddNode { parents: vec![src] }
                    }
                }
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn best_service_cell(
    closure: &CompressedClosure,
    pairs: &[(NodeId, NodeId)],
    readers: usize,
    writer: bool,
    duration_ms: u64,
    reps: usize,
    churn_batch: usize,
    nodes: usize,
    mix: bool,
) -> Measurement {
    let mut best = Measurement {
        mode: "service",
        readers,
        writer,
        qps: 0.0,
        max_staleness: 0,
        publishes: 0,
    };
    for _ in 0..reps {
        let service = ClosureService::start(closure.clone(), ServiceConfig::new().audit(false));
        let stop = AtomicBool::new(false);
        let (total, max_stale, elapsed) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..readers)
                .map(|_| {
                    let mut r = service.reader();
                    let (stop, pairs) = (&stop, pairs);
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut probes = 0u64;
                        let mut max_stale = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            r.refresh().reaches_batch_into(pairs, &mut out);
                            probes += pairs.len() as u64;
                            max_stale = max_stale.max(r.staleness());
                        }
                        (probes, max_stale)
                    })
                })
                .collect();
            let start = Instant::now();
            let deadline = start + Duration::from_millis(duration_ms);
            let mut k = 0u64;
            while Instant::now() < deadline {
                if writer {
                    // flush() paces submission to the writer's real apply+
                    // freeze throughput instead of growing the queue without
                    // bound; readers keep answering from snapshots meanwhile.
                    service
                        .submit_batch(churn_ops(k, churn_batch, nodes, mix))
                        .expect("service closed mid-bench");
                    k += churn_batch as u64;
                    service.flush();
                } else {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            stop.store(true, Ordering::Relaxed);
            let elapsed = start.elapsed().as_secs_f64();
            let mut total = 0u64;
            let mut max_stale = 0u64;
            for h in handles {
                let (p, s) = h.join().expect("reader panicked");
                total += p;
                max_stale = max_stale.max(s);
            }
            (total, max_stale, elapsed)
        });
        let (stats, _backend) = service.shutdown();
        let qps = total as f64 / elapsed;
        if qps > best.qps {
            best.qps = qps;
            best.max_staleness = max_stale;
            best.publishes = stats.publishes;
        }
    }
    best
}

/// The design the service replaces: one big lock. Readers take the mutex
/// per probe batch; the churn writer takes it for a whole batch apply plus
/// refreeze, stalling every reader for that entire window.
#[allow(clippy::too_many_arguments)]
fn best_mutex_cell(
    closure: &CompressedClosure,
    pairs: &[(NodeId, NodeId)],
    readers: usize,
    duration_ms: u64,
    reps: usize,
    churn_batch: usize,
    nodes: usize,
    mix: bool,
) -> Measurement {
    let mut best = Measurement {
        mode: "mutex",
        readers,
        writer: true,
        qps: 0.0,
        max_staleness: 0,
        publishes: 0,
    };
    for _ in 0..reps {
        let mut frozen = closure.clone();
        frozen.freeze();
        let shared = Mutex::new(frozen);
        let stop = AtomicBool::new(false);
        let (total, publishes, elapsed) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..readers)
                .map(|_| {
                    let (stop, shared, pairs) = (&stop, &shared, pairs);
                    scope.spawn(move || {
                        let mut probes = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let guard = shared.lock().expect("closure mutex poisoned");
                            std::hint::black_box(guard.reaches_batch(pairs));
                            probes += pairs.len() as u64;
                        }
                        probes
                    })
                })
                .collect();
            let start = Instant::now();
            let deadline = start + Duration::from_millis(duration_ms);
            let mut k = 0u64;
            let mut publishes = 0u64;
            while Instant::now() < deadline {
                let ops = churn_ops(k, churn_batch, nodes, mix);
                k += churn_batch as u64;
                let mut guard = shared.lock().expect("closure mutex poisoned");
                for op in &ops {
                    let _ = match op {
                        ServiceOp::AddEdge { src, dst } => guard.add_edge(*src, *dst).map(|_| ()),
                        ServiceOp::AddNode { parents } => {
                            guard.add_node_with_parents(parents).map(|_| ())
                        }
                        ServiceOp::RemoveEdge { src, dst } => guard.remove_edge(*src, *dst),
                        ServiceOp::RemoveNode { node } => guard.remove_node(*node),
                        _ => Ok(()),
                    };
                }
                guard.freeze();
                drop(guard);
                publishes += 1;
            }
            stop.store(true, Ordering::Relaxed);
            let elapsed = start.elapsed().as_secs_f64();
            let total: u64 = handles.into_iter().map(|h| h.join().expect("reader panicked")).sum();
            (total, publishes, elapsed)
        });
        let qps = total as f64 / elapsed;
        if qps > best.qps {
            best.qps = qps;
            best.publishes = publishes;
        }
    }
    best
}
