//! Out-of-core frozen plane: I/O scaling (DESIGN.md, "Out-of-core frozen
//! plane").
//!
//! Two experiments over `save_paged` images of random §3.3 DAGs:
//!
//! 1. **startup** — for graphs of increasing size, time
//!    [`tc_core::CompressedClosure::open_paged`] (directory-only, O(1) in
//!    the interval count) against a full [`tc_core::CompressedClosure::load`]
//!    decode of the same file. The open column must stay flat while the
//!    load column grows with the graph.
//! 2. **pool sweep** — on the largest graph, serve a mixed probe workload
//!    (point `reaches`, `successors` and `predecessors` decodes) through
//!    buffer pools sized from a small fraction of the plane up past its
//!    full footprint, reporting page reads per probe and the pool hit
//!    rate. Before any timing, paged answers over the full probe sets are
//!    asserted identical to a resident [`tc_core::QueryPlane`] freeze —
//!    including for pools far smaller than the plane.
//!
//! ```text
//! io_scale [--nodes 40000] [--degree 3.0] [--seed 1]
//!          [--probes 200000] [--decodes 400] [--reps 3]
//! ```
//!
//! Writes `results/io_scale.csv`: one `startup` row per graph size, one
//! `pool` row per pool size.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_bench::{f2, Args, Table};
use tc_core::{ClosureConfig, CompressedClosure, PagedPlane};
use tc_graph::{generators, NodeId};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 40_000);
    let degree: f64 = args.get("degree", 3.0);
    let seed: u64 = args.get("seed", 1);
    let probe_count: usize = args.get("probes", 200_000);
    let decode_count: usize = args.get("decodes", 400);
    let reps: usize = args.get("reps", 3).max(1);

    let mut table = Table::new(
        &format!(
            "out-of-core frozen plane: degree={degree}, seed={seed}, \
             {probe_count} probes / {decode_count} decodes per direction"
        ),
        &[
            "phase",
            "nodes",
            "intervals",
            "payload_pages",
            "pool_pages",
            "open_ms",
            "load_ms",
            "probe_ms",
            "reads_per_probe",
            "hit_rate",
        ],
    );

    // Phase 1: restart cost. Open the directory vs decode the whole stream
    // for the same image, across graph sizes.
    let sizes = [nodes / 8, nodes / 4, nodes / 2, nodes];
    let mut largest: Option<(CompressedClosure, std::path::PathBuf)> = None;
    for &n in sizes.iter().filter(|&&n| n >= 2) {
        let g = generators::random_dag(generators::RandomDagConfig {
            nodes: n,
            avg_out_degree: degree,
            seed,
        });
        let closure = ClosureConfig::new().build(&g).expect("generated DAG is acyclic");
        let path = temp_path(n);
        closure.save_paged(&path).expect("writing paged image");

        let open_ms = best_of(reps, || {
            CompressedClosure::open_paged(&path, 2).expect("open_paged").node_count()
        });
        let load_ms = best_of(reps, || {
            CompressedClosure::load(&path).expect("full load").node_count()
        });
        let plane = CompressedClosure::open_paged(&path, 2).expect("open_paged");
        table.row(&[
            "startup".into(),
            n.to_string(),
            closure.total_intervals().to_string(),
            plane.plane().payload_pages().to_string(),
            String::new(),
            // open_paged is microseconds; keep enough digits to show the
            // flat trend next to the growing full-load column.
            format!("{open_ms:.4}"),
            f2(load_ms),
            String::new(),
            String::new(),
            String::new(),
        ]);
        eprintln!(
            "startup n={n}: open_paged {open_ms:.3}ms vs full load {load_ms:.2}ms \
             ({:.0}x)",
            load_ms / open_ms
        );
        if n == *sizes.last().unwrap() {
            largest = Some((closure, path));
        } else {
            let _ = std::fs::remove_file(&path);
        }
    }

    // Phase 2: pool sweep on the largest image. Answers first, numbers
    // second: every pool size is checked bit-identical to the resident
    // plane over the full probe sets before it is timed.
    let (mut closure, path) = largest.expect("at least one size benchmarked");
    let n = closure.node_count();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let probes: Vec<(NodeId, NodeId)> = (0..probe_count)
        .map(|_| {
            (
                NodeId::from_index(rng.random_range(0..n)),
                NodeId::from_index(rng.random_range(0..n)),
            )
        })
        .collect();
    let sample: Vec<NodeId> = (0..decode_count)
        .map(|_| NodeId::from_index(rng.random_range(0..n)))
        .collect();

    closure.set_paged_pool(0);
    closure.freeze();
    let resident = closure.plane().expect("resident freeze");
    let want: Vec<bool> = probes.iter().map(|&(s, d)| resident.reaches(s, d)).collect();
    let want_succ: Vec<Vec<NodeId>> = sample.iter().map(|&v| resident.successors(v)).collect();
    let want_pred: Vec<Vec<NodeId>> = sample.iter().map(|&v| resident.predecessors(v)).collect();

    let full = CompressedClosure::open_paged(&path, 2)
        .expect("open_paged")
        .plane()
        .payload_pages();
    let mut pools: Vec<usize> = [full / 16, full / 4, full / 2, full, full * 2]
        .iter()
        .map(|&p| (p as usize).max(2))
        .collect();
    pools.dedup();
    for pool in pools {
        let plane = CompressedClosure::open_paged(&path, pool).expect("open_paged");
        let plane: &PagedPlane = plane.plane();
        check_identical(plane, &probes, &want, &sample, &want_succ, &want_pred);

        plane.reset_io();
        let start = Instant::now();
        let mut acc = 0usize;
        for &(s, d) in &probes {
            acc += usize::from(plane.reaches(s, d));
        }
        for &v in &sample {
            acc += plane.successors(v).len();
            acc += plane.predecessors(v).len();
        }
        std::hint::black_box(acc);
        let probe_ms = start.elapsed().as_secs_f64() * 1e3;
        let io = plane.io_stats();
        let ops = (probes.len() + 2 * sample.len()) as f64;
        table.row(&[
            "pool".into(),
            n.to_string(),
            closure.total_intervals().to_string(),
            full.to_string(),
            pool.to_string(),
            String::new(),
            String::new(),
            f2(probe_ms),
            format!("{:.3}", io.page_reads as f64 / ops),
            format!("{:.4}", io.pool.hit_ratio()),
        ]);
        eprintln!(
            "pool {pool}/{full} pages: {probe_ms:.1}ms, {:.3} page reads/probe, \
             hit rate {:.1}% ({} evictions)",
            io.page_reads as f64 / ops,
            io.pool.hit_ratio() * 100.0,
            io.pool.evictions
        );
    }
    let _ = std::fs::remove_file(&path);

    table.finish("io_scale");
}

/// Refuse to time wrong answers: the paged plane must match the resident
/// one over every probe and decode in the workload.
fn check_identical(
    plane: &PagedPlane,
    probes: &[(NodeId, NodeId)],
    want: &[bool],
    sample: &[NodeId],
    want_succ: &[Vec<NodeId>],
    want_pred: &[Vec<NodeId>],
) {
    assert_eq!(plane.reaches_batch(probes), want, "paged reaches diverge");
    for (ix, &v) in sample.iter().enumerate() {
        assert_eq!(plane.successors(v), want_succ[ix], "successors({v:?}) diverge");
        assert_eq!(plane.predecessors(v), want_pred[ix], "predecessors({v:?}) diverge");
    }
}

fn temp_path(tag: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tc-io-scale-{}-{tag}.itc", std::process::id()))
}

/// Best wall-clock milliseconds of `reps` runs; the result is passed
/// through `std::hint::black_box` so the work cannot be elided.
fn best_of(reps: usize, mut work: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(work());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}
