//! Frozen query plane vs mutable label structures (DESIGN.md, "Frozen
//! query plane").
//!
//! Builds one random §3.3 DAG, then times the read side — single `reaches`
//! probes, `reaches_batch` sweeps, `successors` decodes and `predecessors`
//! queries — against the mutable closure and against a frozen
//! [`tc_core::QueryPlane`], reporting the frozen/mutable speedup per
//! (query kind, thread count). Before any number is reported, frozen
//! answers are checked to be identical to mutable ones over the full probe
//! sets.
//!
//! ```text
//! query_plane [--nodes 50000] [--degree 3.0] [--seed 1]
//!             [--probes 1000000] [--pairs 200000] [--decodes 300]
//!             [--threads 4] [--reps 3]
//! ```
//!
//! Writes `results/query_plane.csv` with one row per (query kind, mode,
//! thread count).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_bench::{f2, Args, Table};
use tc_core::{ClosureConfig, CompressedClosure};
use tc_graph::{generators, NodeId};

/// One timed cell: which query, frozen or mutable, how many workers.
struct Measurement {
    query: &'static str,
    frozen: bool,
    threads: usize,
    ms: f64,
}

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 50_000);
    let degree: f64 = args.get("degree", 3.0);
    let seed: u64 = args.get("seed", 1);
    let reps: usize = args.get("reps", 3).max(1);
    let probe_count: usize = args.get("probes", 1_000_000);
    let pair_count: usize = args.get("pairs", 200_000);
    let decode_count: usize = args.get("decodes", 300);
    let threads: usize = args.get("threads", 4);

    eprintln!("generating {nodes}-node, degree-{degree} DAG (seed {seed})...");
    let g = generators::random_dag(generators::RandomDagConfig {
        nodes,
        avg_out_degree: degree,
        seed,
    });
    let start = Instant::now();
    let mut closure = ClosureConfig::new().build(&g).expect("generated DAG is acyclic");
    eprintln!(
        "built closure: {} intervals in {:.2}s",
        closure.total_intervals(),
        start.elapsed().as_secs_f64()
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let probes = random_pairs(&mut rng, nodes, probe_count);
    let pairs = random_pairs(&mut rng, nodes, pair_count);
    let sample: Vec<NodeId> = (0..decode_count)
        .map(|_| NodeId::from_index(rng.random_range(0..nodes)))
        .collect();

    let start = Instant::now();
    closure.freeze();
    eprintln!(
        "froze query plane in {:.3}s: {} rank intervals after merging",
        start.elapsed().as_secs_f64(),
        closure.plane().expect("just frozen").total_intervals()
    );
    check_equivalence(&mut closure, &pairs, &sample);

    let mut cells: Vec<Measurement> = Vec::new();
    for frozen in [false, true] {
        if frozen {
            closure.freeze();
        } else {
            closure.thaw();
        }

        let ms = best_of(reps, || {
            let mut hits = 0usize;
            for &(s, d) in &probes {
                hits += usize::from(closure.reaches(s, d));
            }
            hits
        });
        cells.push(Measurement { query: "reaches", frozen, threads: 1, ms });

        for t in [1, threads] {
            closure.set_threads(t);
            let ms = best_of(reps, || closure.reaches_batch(&pairs).len());
            cells.push(Measurement { query: "reaches_batch", frozen, threads: t, ms });
        }
        closure.set_threads(1);

        // Hoisted decode buffer: only the largest row pays allocation.
        let mut buf = Vec::new();
        let ms = best_of(reps, || {
            sample
                .iter()
                .map(|&v| {
                    closure.successors_into(v, &mut buf);
                    buf.len()
                })
                .sum::<usize>()
        });
        cells.push(Measurement { query: "successors", frozen, threads: 1, ms });

        // The mutable predecessor scan parallelizes over nodes; the frozen
        // stabbing query is sub-linear and has no use for extra workers, so
        // time it once and compare against both mutable configurations.
        let pred_threads: &[usize] = if frozen { &[1] } else { &[1, threads] };
        for &t in pred_threads {
            closure.set_threads(t);
            let ms = best_of(reps, || {
                sample.iter().map(|&v| closure.predecessors(v).len()).sum::<usize>()
            });
            cells.push(Measurement { query: "predecessors", frozen, threads: t, ms });
        }
        closure.set_threads(1);
    }

    let mut table = Table::new(
        &format!(
            "frozen plane vs mutable labels: n={nodes}, degree={degree}, \
             {probe_count} probes / {pair_count} batched / {} decodes",
            sample.len()
        ),
        &["query", "mode", "threads", "ms", "speedup_vs_mutable"],
    );
    for cell in &cells {
        let speedup = if cell.frozen {
            mutable_ms(&cells, cell.query, cell.threads).map(|base| base / cell.ms)
        } else {
            None
        };
        table.row(&[
            cell.query.to_string(),
            if cell.frozen { "frozen" } else { "mutable" }.to_string(),
            cell.threads.to_string(),
            f2(cell.ms),
            speedup.map(f2).unwrap_or_default(),
        ]);
    }
    table.finish("query_plane");

    for cell in cells.iter().filter(|c| c.frozen) {
        if let Some(base) = mutable_ms(&cells, cell.query, cell.threads) {
            println!(
                "frozen {} (threads {}): {:.2}x over mutable",
                cell.query,
                cell.threads,
                base / cell.ms
            );
        }
    }
}

/// The mutable baseline for a (query, threads) cell, if one was timed.
fn mutable_ms(cells: &[Measurement], query: &str, threads: usize) -> Option<f64> {
    cells
        .iter()
        .find(|c| !c.frozen && c.query == query && c.threads == threads)
        .map(|c| c.ms)
}

/// Frozen answers must be identical to mutable ones; refuse to report
/// numbers for a wrong answer. Leaves the closure thawed.
fn check_equivalence(
    closure: &mut CompressedClosure,
    pairs: &[(NodeId, NodeId)],
    sample: &[NodeId],
) {
    assert!(closure.is_frozen());
    let frozen_batch = closure.reaches_batch(pairs);
    let frozen_succ: Vec<Vec<NodeId>> = sample.iter().map(|&v| closure.successors(v)).collect();
    let frozen_pred: Vec<Vec<NodeId>> = sample.iter().map(|&v| closure.predecessors(v)).collect();
    closure.thaw();
    assert_eq!(frozen_batch, closure.reaches_batch(pairs), "reaches diverge");
    for (ix, &v) in sample.iter().enumerate() {
        assert_eq!(frozen_succ[ix], closure.successors(v), "successors({v:?}) diverge");
        assert_eq!(frozen_pred[ix], closure.predecessors(v), "predecessors({v:?}) diverge");
    }
    eprintln!("frozen answers identical to mutable over all probe sets");
}

fn random_pairs(rng: &mut StdRng, nodes: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|_| {
            (
                NodeId::from_index(rng.random_range(0..nodes)),
                NodeId::from_index(rng.random_range(0..nodes)),
            )
        })
        .collect()
}

/// Best wall-clock milliseconds of `reps` runs; the result is passed
/// through `std::hint::black_box` so the work cannot be elided.
fn best_of(reps: usize, mut work: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(work());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}
