//! **§3.3 merging claim** — benefit of adjacent-interval merging.
//!
//! "We finally performed experiments in all cases to assess the benefits of
//! interval merging. We found the additional compression obtained was rather
//! small, usually less than 5%."
//!
//! Usage: `cargo run --release -p tc-bench --bin merging [--nodes 1000]
//! [--seeds 3] [--max-degree 8]`

use tc_bench::{f2, mean, Args, Table};
use tc_core::ClosureConfig;
use tc_graph::generators::{random_dag, RandomDagConfig};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 1000);
    let seeds: u64 = args.get("seeds", 3);
    let max_degree: u64 = args.get("max-degree", 8);

    let mut table = Table::new(
        &format!("Adjacent-interval merging benefit, {nodes} nodes (x{seeds} seeds)"),
        &["degree", "intervals", "merged", "saved_%"],
    );

    let mut worst = 0.0f64;
    for degree in 1..=max_degree {
        let mut plain_counts = Vec::new();
        let mut merged_counts = Vec::new();
        for seed in 0..seeds {
            let g = random_dag(RandomDagConfig {
                nodes,
                avg_out_degree: degree as f64,
                seed: seed * 131 + degree,
            });
            // gap(1): contiguous numbering, the setting where adjacency can
            // occur at all.
            let plain = ClosureConfig::new().gap(1).build(&g).expect("DAG");
            let merged = ClosureConfig::new()
                .gap(1)
                .merge_adjacent(true)
                .build(&g)
                .expect("DAG");
            plain_counts.push(plain.total_intervals() as f64);
            merged_counts.push(merged.total_intervals() as f64);
        }
        let (p, m) = (mean(&plain_counts), mean(&merged_counts));
        let saved = 100.0 * (p - m) / p;
        worst = worst.max(saved);
        table.row(&[
            degree.to_string(),
            format!("{p:.0}"),
            format!("{m:.0}"),
            f2(saved),
        ]);
    }

    table.finish("merging");
    println!(
        "Paper claim: merging saves \"usually less than 5%\". Largest saving observed here: {:.2}%.",
        worst
    );
}
