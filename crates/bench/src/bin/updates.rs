//! **§4 extension** — cost of incremental updates vs recomputation, and vs
//! Italiano's structure.
//!
//! The paper argues "the incremental cost of adding new nodes and
//! relationships should be less than recomputing the transitive closure"
//! and gives the §4 algorithms; this experiment quantifies the gap on this
//! implementation, including the constant-time refinement path.
//!
//! Usage: `cargo run --release -p tc-bench --bin updates [--nodes 2000]
//! [--ops 200]`

use std::time::Instant;

use tc_baselines::ItalianoIndex;
use tc_bench::{f3, Args, Table};
use tc_core::{ClosureConfig, CompressedClosure};
use tc_graph::generators::{random_dag, RandomDagConfig};
use tc_graph::NodeId;

fn micros_per_op(total: std::time::Duration, ops: usize) -> String {
    f3(total.as_secs_f64() * 1e6 / ops as f64)
}

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 2000);
    let ops: usize = args.get("ops", 200);

    let g = random_dag(RandomDagConfig {
        nodes,
        avg_out_degree: 2.0,
        seed: 42,
    });

    let mut table = Table::new(
        &format!("Update costs on a {nodes}-node degree-2 DAG ({ops} ops each)"),
        &["operation", "us_per_op"],
    );

    // Leaf additions (tree arcs): constant-work midpoint insertion.
    let mut c = ClosureConfig::new().reserve(8).build(&g).expect("DAG");
    let start = Instant::now();
    for i in 0..ops {
        c.add_node_with_parents(&[NodeId((i % nodes) as u32)]).expect("add leaf");
    }
    table.row(&["add leaf (tree arc)".into(), micros_per_op(start.elapsed(), ops)]);

    // Non-tree arc additions with propagation cut-off.
    let mut c = ClosureConfig::new().build(&g).expect("DAG");
    let pairs: Vec<(NodeId, NodeId)> = {
        let mut out = Vec::new();
        let mut s = 1u64;
        while out.len() < ops {
            // Simple LCG over node pairs; keep only cycle-safe new arcs.
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = NodeId((s >> 33) as u32 % nodes as u32);
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let b = NodeId((s >> 33) as u32 % nodes as u32);
            if a != b && !c.reaches(b, a) && !c.graph().has_edge(a, b) {
                out.push((a, b));
            }
        }
        out
    };
    let start = Instant::now();
    let mut applied = 0usize;
    for &(a, b) in &pairs {
        // Earlier insertions may have made this pair cycle-forming; the
        // check itself is one closure lookup.
        if !c.reaches(b, a) {
            c.add_edge(a, b).expect("checked");
            applied += 1;
        }
    }
    table.row(&["add non-tree arc".into(), micros_per_op(start.elapsed(), applied.max(1))]);

    // Constant-time refinement: one refinement per (distinct) node, the
    // hierarchy-refinement pattern of §4.1.
    let mut c = ClosureConfig::new().reserve(8).build(&g).expect("DAG");
    let start = Instant::now();
    let mut done = 0usize;
    for i in 0..ops.min(nodes) {
        let child = NodeId(i as u32);
        let preds: Vec<NodeId> = c.graph().predecessors(child).to_vec();
        if c.refine_insert(child, &preds).is_ok() {
            done += 1;
        }
    }
    table.row(&["refine_insert (reserve)".into(), micros_per_op(start.elapsed(), done.max(1))]);

    // Arc deletion (reverse-topological recompute).
    let mut c = ClosureConfig::new().build(&g).expect("DAG");
    let victims: Vec<(NodeId, NodeId)> = c.graph().edges().take(ops).collect();
    let start = Instant::now();
    for &(a, b) in &victims {
        c.remove_edge(a, b).expect("edge exists");
    }
    table.row(&["remove arc".into(), micros_per_op(start.elapsed(), ops)]);

    // Full rebuild (the §4 alternative the incremental path avoids).
    let start = Instant::now();
    let reps = 10;
    for _ in 0..reps {
        let _ = CompressedClosure::build(&g).expect("DAG");
    }
    table.row(&["full rebuild (Alg1 + propagate)".into(), micros_per_op(start.elapsed(), reps)]);

    // Italiano [17]: amortized-efficient arc insertion, O(n^2) memory.
    let start = Instant::now();
    let mut it = ItalianoIndex::new(nodes);
    for (s, d) in g.edges() {
        it.insert_edge(s, d);
    }
    table.row(&[
        "italiano insert (per arc, full build)".into(),
        micros_per_op(start.elapsed(), g.edge_count()),
    ]);

    table.finish("updates");
    println!(
        "Paper-shape check: leaf addition and refinement are orders of magnitude cheaper than\n\
         a rebuild; non-tree additions sit in between (subsumption cut-off); deletions cost\n\
         one reverse-topological sweep."
    );
}
