//! Hybrid oracle vs pure-interval frozen plane on a hostile graph
//! (DESIGN.md, "Hybrid oracle"; EXPERIMENTS.md X10).
//!
//! Builds a dense-layered adversarial DAG — wide layers, each node drawing
//! arcs from nodes scattered across all earlier layers — whose merged
//! frozen rows fragment into many rank intervals, then times single
//! `reaches` probes and `successors` decodes through three probe paths:
//!
//! * `interval` — the pre-hybrid baseline: the boundary-array row alone,
//!   no negative-cutoff screen (`reaches_interval_only`).
//! * `cutoff` — this PR with the oracle unarmed (threshold `usize::MAX`):
//!   negative-cutoff labels screen every probe, rows stay intervals.
//! * `hybrid` — the armed oracle: cutoff screen plus bitset rows for every
//!   node whose merged row exceeds the threshold.
//!
//! Before any number is reported, all paths (and the mutable closure) are
//! checked to answer identically over the full probe sets — the experiment
//! refuses to time a wrong answer.
//!
//! ```text
//! hybrid_scale [--layers 96] [--width 700] [--degree 3] [--seed 1]
//!              [--order random] [--sources heavy] [--threshold 64]
//!              [--probes 400000] [--decodes 300] [--reps 3]
//! ```
//!
//! `--order topo` bulk-builds the closure (one topological sweep);
//! `--order random` (the default) replays the same arcs through the §4
//! incremental update path in seeded random order — the
//! *random-insertion-order* adversary, which denies the tree cover its
//! topological sweep so postorder numbers interleave chaotically and
//! merged rows fragment into far more rank intervals.
//!
//! `--sources heavy` (the default) draws probe *sources* from the
//! over-threshold rows — the fragmented rows the oracle exists for, and
//! the ones a hostile workload hammers — while destinations stay uniform;
//! `--sources uniform` draws both ends uniformly, which dilutes the
//! measurement with the tree-like rows both planes store identically.
//! Either way the identity gate checks the same probe set on every path.
//!
//! Writes `results/hybrid_scale.csv` with one row per (query, path).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_bench::{f2, Args, Table};
use tc_core::ClosureConfig;
use tc_graph::{generators, NodeId};

fn main() {
    let args = Args::parse();
    let layers: usize = args.get("layers", 96);
    let width: usize = args.get("width", 700);
    let degree: usize = args.get("degree", 3);
    let seed: u64 = args.get("seed", 1);
    let order: String = args.get("order", "random".to_string());
    let sources: String = args.get("sources", "heavy".to_string());
    let threshold: usize = args.get("threshold", 64);
    let probe_count: usize = args.get("probes", 400_000);
    let decode_count: usize = args.get("decodes", 300);
    let reps: usize = args.get("reps", 3).max(1);

    let nodes = layers * width;
    eprintln!(
        "generating dense-layered DAG: {layers} layers x {width} wide, \
         fan-out {degree} scattered over all earlier layers (seed {seed})..."
    );
    let g = generators::dense_layered(layers, width, degree, seed);

    let start = Instant::now();
    let mut closure = match order.as_str() {
        "topo" => ClosureConfig::new()
            .hybrid(threshold)
            .build(&g)
            .expect("layered DAG is acyclic"),
        "random" => {
            // The random-insertion-order adversary: same arcs, one at a
            // time, in shuffled order. The reachable *sets* are identical
            // to the bulk build; only the postorder geometry — and with it
            // the per-row interval counts — degrades.
            let arcs = generators::shuffled_edges(&g, seed ^ 0x5eed);
            let empty = tc_graph::DiGraph::with_nodes(nodes);
            let mut c = ClosureConfig::new()
                .hybrid(threshold)
                .build(&empty)
                .expect("edgeless graph is acyclic");
            for (src, dst) in arcs {
                c.add_edge(src, dst).expect("replayed arc keeps the DAG acyclic");
            }
            c
        }
        other => panic!("unknown --order {other:?} (want topo|random)"),
    };
    eprintln!(
        "built closure ({order} order): {} intervals in {:.2}s",
        closure.total_intervals(),
        start.elapsed().as_secs_f64()
    );

    // The row-size histogram is the whole point of the hostile generator:
    // the experiment is only meaningful when the p95 merged row is past the
    // threshold, so the hybrid freeze actually switches representations.
    let per_node = closure.merged_interval_counts();
    let heavy: Vec<usize> = (0..nodes).filter(|&v| per_node[v] > threshold).collect();
    let mut counts = per_node;
    counts.sort_unstable();
    let pct = |p: f64| counts[((counts.len() - 1) as f64 * p) as usize];
    let (p50, p95, max) = (pct(0.50), pct(0.95), counts[counts.len() - 1]);
    let over = heavy.len();
    eprintln!(
        "merged intervals/row: p50 {p50}, p95 {p95}, max {max} \
         ({over} of {nodes} rows over threshold {threshold})"
    );
    assert!(
        p95 > threshold,
        "graph is not hostile enough: p95 merged row {p95} <= threshold {threshold}"
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut draw_src: Box<dyn FnMut(&mut StdRng) -> usize> = match sources.as_str() {
        "heavy" => Box::new(move |rng| heavy[rng.random_range(0..heavy.len())]),
        "uniform" => Box::new(move |rng| rng.random_range(0..nodes)),
        other => panic!("unknown --sources {other:?} (want heavy|uniform)"),
    };
    let probes: Vec<(NodeId, NodeId)> = (0..probe_count)
        .map(|_| {
            (
                NodeId::from_index(draw_src(&mut rng)),
                NodeId::from_index(rng.random_range(0..nodes)),
            )
        })
        .collect();
    // Decode sample follows the same source distribution, so the bitset
    // stride-scan cost on heavy rows is reported, not hidden.
    let sample: Vec<NodeId> = (0..decode_count)
        .map(|_| NodeId::from_index(draw_src(&mut rng)))
        .collect();

    // Mutable truth, then one freeze per configuration. Freezing with the
    // hybrid threshold first would be wrong for the interval baseline, so
    // the pure plane comes first.
    let want: Vec<bool> = probes.iter().map(|&(s, d)| closure.reaches(s, d)).collect();
    let want_succ: Vec<Vec<NodeId>> = sample.iter().map(|&v| closure.successors(v)).collect();

    closure.set_hybrid_threshold(usize::MAX);
    let start = Instant::now();
    closure.freeze();
    eprintln!("froze pure-interval plane in {:.2}s", start.elapsed().as_secs_f64());
    let pure = closure.plane().expect("just frozen").clone();
    assert_eq!(pure.bitset_rows(), 0, "threshold usize::MAX must stay pure");

    closure.thaw();
    closure.set_hybrid_threshold(threshold);
    let start = Instant::now();
    closure.freeze();
    eprintln!("froze hybrid plane in {:.2}s", start.elapsed().as_secs_f64());
    let hybrid = closure.plane().expect("just frozen").clone();
    assert_eq!(
        hybrid.bitset_rows(),
        over,
        "hybrid freeze must convert exactly the over-threshold rows"
    );

    // Identity gate: every probe path must agree with the mutable closure
    // on the full probe and decode sets before anything is timed.
    for (ix, &(s, d)) in probes.iter().enumerate() {
        assert_eq!(pure.reaches_interval_only(s, d), want[ix], "interval diverges at {s}->{d}");
        assert_eq!(pure.reaches(s, d), want[ix], "cutoff diverges at {s}->{d}");
        assert_eq!(hybrid.reaches(s, d), want[ix], "hybrid diverges at {s}->{d}");
    }
    for (ix, &v) in sample.iter().enumerate() {
        assert_eq!(pure.successors(v), want_succ[ix], "pure successors({v}) diverge");
        assert_eq!(hybrid.successors(v), want_succ[ix], "hybrid successors({v}) diverge");
        assert_eq!(hybrid.successor_count(v), want_succ[ix].len());
    }
    let reachable = want.iter().filter(|&&b| b).count();
    eprintln!(
        "all paths identical over {probe_count} probes ({reachable} reachable) \
         and {decode_count} decodes"
    );

    let mut cells: Vec<(&str, &str, f64)> = Vec::new();
    let reaches_ms = |work: &dyn Fn(NodeId, NodeId) -> bool| {
        best_of(reps, || probes.iter().filter(|&&(s, d)| work(s, d)).count())
    };
    cells.push(("reaches", "interval", reaches_ms(&|s, d| pure.reaches_interval_only(s, d))));
    cells.push(("reaches", "cutoff", reaches_ms(&|s, d| pure.reaches(s, d))));
    cells.push(("reaches", "hybrid", reaches_ms(&|s, d| hybrid.reaches(s, d))));

    let mut buf = Vec::new();
    let decode_ms = |plane: &tc_core::QueryPlane, buf: &mut Vec<NodeId>| {
        best_of(reps, || {
            sample
                .iter()
                .map(|&v| {
                    plane.successors_into(v, buf);
                    buf.len()
                })
                .sum()
        })
    };
    cells.push(("successors", "interval", decode_ms(&pure, &mut buf)));
    cells.push(("successors", "hybrid", decode_ms(&hybrid, &mut buf)));

    let base = |query: &str| {
        cells
            .iter()
            .find(|&&(q, path, _)| q == query && path == "interval")
            .map(|&(_, _, ms)| ms)
            .expect("interval baseline timed first")
    };
    let mut table = Table::new(
        &format!(
            "hybrid oracle vs pure-interval plane: {layers}x{width} dense-layered, \
             fan-out {degree}, {order} insertion order, threshold {threshold}, \
             p95 row {p95} intervals, {over} bitset rows, {probe_count} probes \
             ({sources} sources) / {decode_count} decodes"
        ),
        &["query", "path", "ms", "speedup_vs_interval"],
    );
    for &(query, path, ms) in &cells {
        let speedup = base(query) / ms;
        table.row(&[query.to_string(), path.to_string(), f2(ms), f2(speedup)]);
        println!("{query:<10} {path:<8} {:>9} ms  {:.2}x over interval", f2(ms), speedup);
    }
    table.finish("hybrid_scale");

    let hybrid_speedup = base("reaches")
        / cells
            .iter()
            .find(|&&(q, p, _)| q == "reaches" && p == "hybrid")
            .map(|&(_, _, ms)| ms)
            .unwrap();
    eprintln!("hybrid reaches speedup over pure-interval: {hybrid_speedup:.2}x");
}

/// Best wall-clock milliseconds of `reps` runs; the result is passed
/// through `std::hint::black_box` so the work cannot be elided.
fn best_of(reps: usize, mut work: impl FnMut() -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(work());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}
