//! **Figure 3.9** — storage required for a 1000-node graph as a function of
//! average degree.
//!
//! Reproduces the paper's series: size of the full transitive closure and of
//! the compressed closure, both as multiples of the original graph's size,
//! for random DAGs of increasing average out-degree. Expected shape: the
//! closure ratio rises steeply to a large plateau (most arcs derivable by
//! degree ~4), while the compressed ratio rises slightly, then *falls below
//! 1.0* — "the size of the compressed closure becomes even less than the
//! size of the original graph itself".
//!
//! Usage: `cargo run --release -p tc-bench --bin fig3_9 [--nodes 1000]
//! [--seeds 3] [--max-degree 10]`

use tc_bench::{f2, mean, Args, Table};
use tc_core::CompressedClosure;
use tc_graph::generators::{random_dag, RandomDagConfig};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 1000);
    let seeds: u64 = args.get("seeds", 3);
    // Default schedule extends past 10 so the compressed-below-graph
    // crossover ("even less than the size of the original graph itself") is
    // visible; --max-degree d switches to a dense 1..=d sweep.
    let degrees: Vec<u64> = if args.has("max-degree") {
        (1..=args.get("max-degree", 10)).collect()
    } else {
        vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16, 20, 24, 32]
    };

    let mut table = Table::new(
        &format!("Fig 3.9 — storage for a {nodes}-node graph vs average degree (x{seeds} seeds)"),
        &[
            "degree",
            "graph_arcs",
            "closure",
            "closure/graph",
            "compressed",
            "compressed/graph",
        ],
    );

    for &degree in &degrees {
        let mut arcs = Vec::new();
        let mut closure_sizes = Vec::new();
        let mut compressed = Vec::new();
        for seed in 0..seeds {
            let g = random_dag(RandomDagConfig {
                nodes,
                avg_out_degree: degree as f64,
                seed: seed * 1000 + degree,
            });
            let c = CompressedClosure::build(&g).expect("generator yields DAGs");
            let stats = c.stats();
            arcs.push(stats.graph_arcs as f64);
            closure_sizes.push(stats.closure_size as f64);
            compressed.push(stats.compressed_units() as f64);
        }
        let (a, cl, co) = (mean(&arcs), mean(&closure_sizes), mean(&compressed));
        table.row(&[
            degree.to_string(),
            format!("{a:.0}"),
            format!("{cl:.0}"),
            f2(cl / a),
            format!("{co:.0}"),
            f2(co / a),
        ]);
    }

    table.finish("fig3_9");
    println!(
        "Paper-shape checks: closure/graph peaks early then declines relative to graph growth;\n\
         compressed/graph dips below 1.0 at higher degrees (redundant arcs eliminated)."
    );
}
