//! **Figure 3.12** — frequency distribution of the total number of intervals
//! in the compressed closure over all possible small acyclic graphs.
//!
//! "We also performed a sensitivity experiment in which we generated all
//! possible directed acyclic graphs of 8 nodes and computed the size of
//! compressed closure in number of intervals. The result … demonstrates the
//! infrequency of worst-case graphs."
//!
//! The 7-node universe (2^21 = 2,097,152 graphs) is always swept
//! exhaustively. The 8-node universe (2^28 = 268,435,456 graphs) is sampled
//! by default; pass `--exhaustive` for the full parallel census (a few
//! minutes on a laptop).
//!
//! Usage: `cargo run --release -p tc-bench --bin fig3_12
//! [--sample 2000000] [--threads 8] [--exhaustive]`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_bench::{Args, Table};
use tc_core::small_dag::{interval_count, Census};
use tc_graph::generators::dag_mask_count;

fn census_exhaustive(n: usize, threads: usize) -> Census {
    let total = dag_mask_count(n);
    let chunk = total.div_ceil(threads as u64);
    let mut merged = Census::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                scope.spawn(move || {
                    let lo = t * chunk;
                    let hi = (lo + chunk).min(total);
                    let mut census = Census::default();
                    for mask in lo..hi {
                        census.record(interval_count(n, mask));
                    }
                    census
                })
            })
            .collect();
        for h in handles {
            merged.merge(&h.join().expect("census worker panicked"));
        }
    });
    merged
}

fn census_sampled(n: usize, samples: u64, threads: usize) -> Census {
    let universe = dag_mask_count(n);
    let per_thread = samples.div_ceil(threads as u64);
    let mut merged = Census::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x00F16312 + t);
                    let mut census = Census::default();
                    for _ in 0..per_thread {
                        let mask = rng.random_range(0..universe);
                        census.record(interval_count(n, mask));
                    }
                    census
                })
            })
            .collect();
        for h in handles {
            merged.merge(&h.join().expect("census worker panicked"));
        }
    });
    merged
}

fn print_census(label: &str, n: usize, census: &Census, csv: &str) {
    let mut table = Table::new(
        &format!("Fig 3.12 — interval-count distribution over {label} {n}-node DAGs"),
        &["total_intervals", "graphs", "fraction"],
    );
    for (intervals, &count) in census.buckets.iter().enumerate() {
        if count > 0 {
            table.row(&[
                intervals.to_string(),
                count.to_string(),
                format!("{:.6}", count as f64 / census.total as f64),
            ]);
        }
    }
    table.finish(csv);
    println!(
        "graphs={} mean={:.3} max={} (worst case is 2 (n+1)^2/4 = {} storage units => {} intervals)\n",
        census.total,
        census.mean(),
        census.max(),
        (n + 1) * (n + 1) / 2,
        (n + 1) * (n + 1) / 4,
    );
}

fn main() {
    let args = Args::parse();
    let threads: usize = args.get(
        "threads",
        std::thread::available_parallelism().map_or(4, |p| p.get()),
    );
    let sample: u64 = args.get("sample", 2_000_000);

    // n = 7: always exhaustive (2M graphs).
    let c7 = census_exhaustive(7, threads);
    print_census("all", 7, &c7, "fig3_12_n7");

    // n = 8: sampled by default, exhaustive on request.
    if args.has("exhaustive") {
        let c8 = census_exhaustive(8, threads);
        print_census("all", 8, &c8, "fig3_12_n8");
    } else {
        let c8 = census_sampled(8, sample, threads);
        print_census(&format!("{sample} sampled"), 8, &c8, "fig3_12_n8_sampled");
        println!("(pass --exhaustive to sweep all 2^28 8-node DAGs)");
    }
    println!(
        "Paper-shape check: the distribution is sharply unimodal near n intervals; graphs\n\
         anywhere near the quadratic worst case are vanishingly rare."
    );
}
