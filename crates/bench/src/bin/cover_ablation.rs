//! **Ablation** — how much the optimal (Alg1) tree cover matters.
//!
//! Compares interval counts across cover strategies over the §3.3 workload
//! grid, quantifying the value of Theorem 1's optimality in practice.
//!
//! Usage: `cargo run --release -p tc-bench --bin cover_ablation
//! [--nodes 1000] [--seeds 3] [--max-degree 8]`

use tc_bench::{f2, mean, Args, Table};
use tc_core::{ClosureConfig, CoverStrategy};
use tc_graph::generators::{random_dag, RandomDagConfig};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 1000);
    let seeds: u64 = args.get("seeds", 3);
    let max_degree: u64 = args.get("max-degree", 8);

    let strategies = [
        ("alg1-optimal", CoverStrategy::Optimal),
        ("first-parent", CoverStrategy::FirstParent),
        ("random", CoverStrategy::Random { seed: 5 }),
        ("deepest", CoverStrategy::Deepest),
    ];

    let mut table = Table::new(
        &format!("Tree-cover ablation: total intervals, {nodes} nodes (x{seeds} seeds)"),
        &[
            "degree",
            "alg1-optimal",
            "first-parent",
            "random",
            "deepest",
            "worst/optimal",
        ],
    );

    for degree in 1..=max_degree {
        let mut per_strategy: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
        for seed in 0..seeds {
            let g = random_dag(RandomDagConfig {
                nodes,
                avg_out_degree: degree as f64,
                seed: seed * 17 + degree,
            });
            for (ix, (_, strat)) in strategies.iter().enumerate() {
                let c = ClosureConfig::new().strategy(*strat).build(&g).expect("DAG");
                per_strategy[ix].push(c.total_intervals() as f64);
            }
        }
        let means: Vec<f64> = per_strategy.iter().map(|xs| mean(xs)).collect();
        let worst = means.iter().cloned().fold(0.0f64, f64::max);
        table.row(&[
            degree.to_string(),
            format!("{:.0}", means[0]),
            format!("{:.0}", means[1]),
            format!("{:.0}", means[2]),
            format!("{:.0}", means[3]),
            f2(worst / means[0]),
        ]);
    }

    table.finish("cover_ablation");
    println!("Alg1 is the row minimum everywhere (Theorem 1); the margin grows with density.");
}
