//! **Figure 3.10** — storage for a 1000-node graph vs average degree,
//! compressed closure against the *inverse* closure.
//!
//! The paper: "The size of the inverse closure falls rapidly as the degree
//! of the graph is increased … However, the size of the compressed closure
//! stays well below that of the inverse closure, and decreases at a rate
//! comparable to the inverse closure for high degrees."
//!
//! Usage: `cargo run --release -p tc-bench --bin fig3_10 [--nodes 1000]
//! [--seeds 3] [--max-degree 10]`

use tc_baselines::{InverseClosure, ReachabilityIndex};
use tc_bench::{f2, mean, Args, Table};
use tc_core::CompressedClosure;
use tc_graph::generators::{random_dag, RandomDagConfig};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 1000);
    let seeds: u64 = args.get("seeds", 3);
    let degrees: Vec<u64> = if args.has("max-degree") {
        (1..=args.get("max-degree", 10)).collect()
    } else {
        vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 16, 20, 24, 32]
    };

    let mut table = Table::new(
        &format!("Fig 3.10 — compressed vs inverse closure, {nodes} nodes (x{seeds} seeds)"),
        &[
            "degree",
            "graph_arcs",
            "inverse",
            "inverse/graph",
            "compressed",
            "compressed/graph",
        ],
    );

    for &degree in &degrees {
        let mut arcs = Vec::new();
        let mut inverse_units = Vec::new();
        let mut compressed = Vec::new();
        for seed in 0..seeds {
            let g = random_dag(RandomDagConfig {
                nodes,
                avg_out_degree: degree as f64,
                seed: seed * 1000 + degree,
            });
            let inv = InverseClosure::build(&g).expect("generator yields DAGs");
            let c = CompressedClosure::build(&g).expect("generator yields DAGs");
            arcs.push(g.edge_count() as f64);
            inverse_units.push(inv.storage_units() as f64);
            compressed.push(c.stats().compressed_units() as f64);
        }
        let (a, iv, co) = (mean(&arcs), mean(&inverse_units), mean(&compressed));
        table.row(&[
            degree.to_string(),
            format!("{a:.0}"),
            format!("{iv:.0}"),
            f2(iv / a),
            format!("{co:.0}"),
            f2(co / a),
        ]);
    }

    table.finish("fig3_10");
    println!(
        "Paper-shape checks: inverse falls rapidly with degree; compressed stays below inverse\n\
         throughout and declines comparably at high degree."
    );
}
