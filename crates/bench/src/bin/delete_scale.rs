//! Scoped vs global deletion recompute cost (EXPERIMENTS.md X2).
//!
//! Builds one random DAG, then times the same deletion sequence twice: once
//! with [`ClosureConfig::scoped_deletes`] on (the affected-region sweep) and
//! once with it off (the historical whole-graph sweep). Before any timing,
//! a correctness pass replays the full sequence on a scoped and a global
//! clone side by side and asserts the interval sets identical node for node
//! after every deletion — the speedup column is only meaningful because the
//! two modes are bit-equal.
//!
//! Three deletion kinds get their own rows: non-tree arc removals (the
//! §4.2 fast path — no renumbering at all), tree-arc removals (subtree
//! relocation plus recompute) and node removals (quarantine plus orphan
//! relocation).
//!
//! ```text
//! cargo run --release -p tc-bench --bin delete_scale -- \
//!     [--nodes N] [--degree D] [--seed S] [--ops K] [--threads T]
//! ```

use std::time::Instant;

use tc_bench::{f2, Args, Table};
use tc_core::{ClosureConfig, CompressedClosure};
use tc_graph::{generators, DiGraph, NodeId};

/// One deletion, chosen up front so every mode replays the same sequence.
#[derive(Debug, Clone, Copy)]
enum Deletion {
    Arc(NodeId, NodeId),
    Node(NodeId),
}

fn apply(c: &mut CompressedClosure, d: Deletion) {
    match d {
        Deletion::Arc(src, dst) => c.remove_edge(src, dst).expect("arc exists"),
        Deletion::Node(node) => c.remove_node(node).expect("node exists"),
    }
}

/// Deterministically samples `count` distinct arcs matching `tree`-ness in
/// the base cover. Distinct arcs stay removable however many of the others
/// have been removed before them.
fn pick_arcs(c: &CompressedClosure, g: &DiGraph, tree: bool, count: usize) -> Vec<Deletion> {
    let pool: Vec<(NodeId, NodeId)> = g
        .edges()
        .filter(|&(u, v)| c.cover().is_tree_arc(u, v) == tree)
        .collect();
    assert!(!pool.is_empty(), "no {} arcs to sample", if tree { "tree" } else { "non-tree" });
    let mut picked = Vec::with_capacity(count);
    let mut taken = vec![false; pool.len()];
    let mut k = 0u64;
    while picked.len() < count.min(pool.len()) {
        let ix = (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % pool.len();
        k += 1;
        if !std::mem::replace(&mut taken[ix], true) {
            let (u, v) = pool[ix];
            picked.push(Deletion::Arc(u, v));
        }
    }
    picked
}

fn pick_nodes(n: usize, count: usize) -> Vec<Deletion> {
    let mut picked = Vec::with_capacity(count);
    let mut taken = vec![false; n];
    let mut k = 0u64;
    while picked.len() < count.min(n) {
        let ix = (k.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 32) as usize % n;
        k += 1;
        if !std::mem::replace(&mut taken[ix], true) {
            picked.push(Deletion::Node(NodeId(ix as u32)));
        }
    }
    picked
}

/// Replays `dels` on a scoped and a global clone in lockstep, asserting the
/// interval sets identical at every node after every deletion.
fn assert_modes_identical(base: &CompressedClosure, dels: &[Deletion]) {
    let mut scoped = base.clone();
    scoped.set_scoped_deletes(true);
    let mut global = base.clone();
    global.set_scoped_deletes(false);
    for (step, &d) in dels.iter().enumerate() {
        apply(&mut scoped, d);
        apply(&mut global, d);
        for v in 0..base.node_count() {
            let v = NodeId(v as u32);
            assert_eq!(
                scoped.intervals(v),
                global.intervals(v),
                "scoped and global diverge at {v:?} after step {step} ({d:?})"
            );
        }
    }
    scoped.audit().expect("scoped audit");
    global.audit().expect("global audit");
}

/// Replays `dels` on a fresh clone with the given mode and returns the mean
/// microseconds per deletion.
fn time_mode(base: &CompressedClosure, dels: &[Deletion], scoped: bool) -> f64 {
    let mut c = base.clone();
    c.set_scoped_deletes(scoped);
    let start = Instant::now();
    for &d in dels {
        apply(&mut c, d);
    }
    start.elapsed().as_micros() as f64 / dels.len() as f64
}

fn main() {
    let args = Args::parse();
    let nodes = args.get("nodes", 50_000usize);
    let degree = args.get("degree", 3.0f64);
    let seed = args.get("seed", 42u64);
    let ops = args.get("ops", 24usize);
    let threads = args.get("threads", 1usize);

    let g = generators::random_dag(generators::RandomDagConfig {
        nodes,
        avg_out_degree: degree,
        seed,
    });
    println!(
        "building closure: {} nodes, {} arcs (degree {degree}, seed {seed}, threads {threads})",
        g.node_count(),
        g.edge_count()
    );
    let base = ClosureConfig::new()
        .threads(threads)
        .build(&g)
        .expect("random_dag is acyclic");

    let mut table = Table::new(
        &format!("scoped vs global deletion recompute ({nodes} nodes, degree {degree})"),
        &["kind", "ops", "scoped_us_per_op", "global_us_per_op", "speedup"],
    );

    let kinds: Vec<(&str, Vec<Deletion>)> = vec![
        ("non-tree-arc", pick_arcs(&base, &g, false, ops)),
        ("tree-arc", pick_arcs(&base, &g, true, ops)),
        ("node", pick_nodes(nodes, ops)),
    ];
    for (kind, dels) in kinds {
        // Correctness gate: the timed modes must be interval-identical on
        // this exact sequence before their costs are worth comparing.
        print!("{kind}: verifying scoped == global over {} deletions ... ", dels.len());
        assert_modes_identical(&base, &dels);
        println!("ok");
        let scoped_us = time_mode(&base, &dels, true);
        let global_us = time_mode(&base, &dels, false);
        table.row(&[
            kind.to_string(),
            dels.len().to_string(),
            f2(scoped_us),
            f2(global_us),
            f2(global_us / scoped_us),
        ]);
    }

    table.finish("delete_scale");
}
