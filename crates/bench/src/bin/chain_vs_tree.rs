//! **Theorem 2** — tree-cover compression vs chain-decomposition
//! compression, empirically, across graph families.
//!
//! "For any graph G, its transitive closure can be compressed using
//! postorder numbers on a tree cover to require storage less than or equal
//! to the storage required by the best chain compression possible without
//! chain reduction." And: "there clearly are cases where a tree cover does
//! significantly better … Consider, for example, a tree."
//!
//! Usage: `cargo run --release -p tc-bench --bin chain_vs_tree [--nodes 200]
//! [--seeds 3]`

use tc_baselines::ChainIndex;
use tc_bench::{f2, Args, Table};
use tc_core::ClosureConfig;
use tc_graph::generators::{
    balanced_tree, bipartite_worst, chain, layered_dag, random_dag, random_tree, RandomDagConfig,
};
use tc_graph::DiGraph;

fn measure(name: &str, g: &DiGraph, table: &mut Table, violations: &mut usize) {
    let tree = ClosureConfig::new().gap(1).build(g).expect("DAG");
    let greedy = ChainIndex::build_greedy(g).expect("DAG");
    let minimum = ChainIndex::build_minimum(g).expect("DAG");

    let tree_units = 2 * tree.total_intervals();
    let greedy_units = 2 * greedy.entry_count();
    let minwidth_units = 2 * minimum.entry_count();
    // Theorem 2 bounds the tree cover by the *best possible* chain cover;
    // both decompositions here upper-bound that optimum. (Note the Dilworth
    // minimum-WIDTH cover often stores more entries than the topological
    // greedy one: fewer chains does not mean fewer entries.)
    let best_chain = greedy_units.min(minwidth_units);
    if tree_units > best_chain {
        *violations += 1;
    }

    table.row(&[
        name.to_string(),
        g.node_count().to_string(),
        g.edge_count().to_string(),
        tree_units.to_string(),
        greedy_units.to_string(),
        minwidth_units.to_string(),
        f2(best_chain as f64 / tree_units as f64),
    ]);
}

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 200);
    let seeds: u64 = args.get("seeds", 3);

    let mut table = Table::new(
        "Theorem 2 — storage units: tree-cover intervals vs chain compression",
        &[
            "family",
            "nodes",
            "arcs",
            "tree_units",
            "chain_greedy",
            "chain_minwidth",
            "best_chain/tree",
        ],
    );
    let mut violations = 0usize;

    for seed in 0..seeds {
        for degree in [1.5, 2.0, 3.0, 5.0] {
            let g = random_dag(RandomDagConfig {
                nodes,
                avg_out_degree: degree,
                seed: seed * 31 + degree as u64,
            });
            measure(&format!("random-d{degree}"), &g, &mut table, &mut violations);
        }
        measure(
            &format!("random-tree-{seed}"),
            &random_tree(nodes, seed),
            &mut table,
            &mut violations,
        );
    }
    measure("balanced-tree-3^4", &balanced_tree(3, 4), &mut table, &mut violations);
    measure("chain", &chain(nodes), &mut table, &mut violations);
    measure(
        "layered-5x20",
        &layered_dag(5, 20, 2, 7),
        &mut table,
        &mut violations,
    );
    measure(
        "bipartite-K(8,8)",
        &bipartite_worst(8, 8),
        &mut table,
        &mut violations,
    );

    table.finish("chain_vs_tree");
    println!(
        "Theorem 2 check: tree_units <= best chain cover in every row ({} violations found).\n\
         Paper-shape check: trees separate the schemes sharply (chain_min/tree >> 1)\n\
         while pure chains tie (ratio 1.0).",
        violations
    );
    assert_eq!(violations, 0, "Theorem 2 violated!");
}
