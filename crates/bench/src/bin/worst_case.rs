//! **Figures 3.6 / 3.7** — the bipartite worst case and its hub rewrite.
//!
//! Fig 3.6: a complete bipartite DAG K(m+1, n−m−1) drives the compressed
//! closure to its quadratic maximum — "(n+1)²/4 for n = 2m+1". Fig 3.7:
//! routing the same reachability through one intermediary node brings it
//! back to "(m+2) + 2(n−m−1) … which is again O(n)" intervals.
//!
//! Usage: `cargo run --release -p tc-bench --bin worst_case [--max-half 64]`

use tc_bench::{Args, Table};
use tc_core::ClosureConfig;
use tc_graph::generators::{bipartite_with_hub, bipartite_worst};

fn main() {
    let args = Args::parse();
    let max_half: usize = args.get("max-half", 64);

    let mut table = Table::new(
        "Fig 3.6/3.7 — bipartite worst case vs hub rewrite (storage units = 2 x intervals)",
        &[
            "m",
            "n",
            "flat_units",
            "formula_(n+1)^2/4*2",
            "hub_units",
            "hub_formula",
        ],
    );

    let mut half = 2usize;
    while half <= max_half {
        let m = half; // m+1 sources in the paper's notation; we use m = m.
        let n = 2 * m + 1; // paper's worst-case sizing: n = 2m+1
        let sources = m + 1;
        let sinks = n - m - 1;

        let flat = ClosureConfig::new()
            .gap(1)
            .build(&bipartite_worst(sources, sinks))
            .expect("DAG");
        let hub = ClosureConfig::new()
            .gap(1)
            .build(&bipartite_with_hub(sources, sinks))
            .expect("DAG");

        // Paper's worst-case count: (n+1)^2 / 4 intervals (units = x2).
        let formula_flat = 2 * ((n + 1) * (n + 1) / 4);
        // Paper's hub count: (m+2) + 2(n-m-1) intervals.
        let formula_hub = 2 * ((m + 2) + 2 * (n - m - 1));

        table.row(&[
            m.to_string(),
            n.to_string(),
            (2 * flat.total_intervals()).to_string(),
            formula_flat.to_string(),
            (2 * hub.total_intervals()).to_string(),
            formula_hub.to_string(),
        ]);
        half *= 2;
    }

    table.finish("worst_case");
    println!(
        "Paper-shape check: flat K(m+1, m) grows quadratically and matches (n+1)^2/4;\n\
         the hub rewrite stays linear in n."
    );
}
