//! Rule-driven knowledge-base serving through the network layer
//! (DESIGN.md, "Rule-driven inference"; EXPERIMENTS.md, X11).
//!
//! Starts the TCP daemon in-process on an ephemeral localhost port with an
//! *empty* graph, defines Horn rules over the wire, then streams a layered
//! parts-catalog fact stream (`assert` / `retract` with `isa` and `partof`
//! relations) through real sockets in windows. After each ingestion window
//! a batch of `ask` probes measures query latency against the snapshot
//! reader the daemon republished from the forwarded KB journal.
//!
//! Every single response is checked against an in-process mirror
//! [`tc_kb::KnowledgeBase`] executing the identical command stream — the
//! wire answer must equal `ok <mirror answer>` verbatim — and at the end
//! of every window the mirror's differential gate
//! ([`KnowledgeBase::check_against_naive`]) re-derives the whole fact base
//! from scratch with a naive all-rules fixpoint and compares closures. A
//! single divergence fails the run with a nonzero exit before any number
//! is reported as a result.
//!
//! The fact stream points strictly downhill through the layer stack, so no
//! assert can be cycle-rejected and the differential gate stays
//! order-independent (`cycle_rejected` is asserted zero).
//!
//! ```text
//! kb_scale [--layers 6] [--width 48] [--windows 6] [--ops-per-window 400]
//!          [--queries-per-window 256] [--retract-pct 20] [--seed 1]
//!          [--shards 2]
//! ```
//!
//! Writes `results/kb_scale.csv` with one row per window: streaming
//! ingestion throughput (ops/s over the socket, closed loop), cumulative
//! fact/concept/derived counts, and p50/p95 `ask` round-trip latency (µs).

use std::collections::BTreeSet;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tc_bench::{Args, Table};
use tc_core::{ClosureConfig, ShardedClosure};
use tc_graph::DiGraph;
use tc_kb::{KbCommand, KnowledgeBase, Pred};
use tc_server::{Client, Dict, Engine, EngineConfig, Server, ServerConfig};

/// One ingestion window plus its query batch, after the oracle agreed.
struct WindowCell {
    window: usize,
    ops: u64,
    ops_per_s: f64,
    facts: usize,
    concepts: usize,
    derived: u64,
    overdeleted: u64,
    queries: u64,
    asks_per_s: f64,
    p50_us: u64,
    p95_us: u64,
}

/// The bench's view of the knowledge base: the wire client, the in-process
/// mirror executing the same commands, and the live asserted-fact set the
/// workload generator draws retract targets from.
struct Harness {
    client: Client,
    mirror: KnowledgeBase,
    live: BTreeSet<(Pred, String, String)>,
    names: Vec<String>,
    mismatches: u64,
}

impl Harness {
    /// Sends one request line over the socket and the equivalent command to
    /// the mirror; any disagreement is a correctness divergence.
    fn step(&mut self, wire_line: &str, mirror_line: &str) -> String {
        let got = self.client.request(wire_line).expect("daemon answered");
        let cmd = KbCommand::parse(mirror_line).expect("bench emits well-formed commands");
        let want = cmd.execute(&mut self.mirror).expect("mirror accepts the command");
        if got != format!("ok {want}") {
            self.mismatches += 1;
            eprintln!("DIVERGENCE: {wire_line:?} -> wire {got:?}, mirror {want:?}");
        }
        got
    }

    /// Full from-scratch re-derivation check on the mirror; the wire side
    /// was already proven answer-for-answer identical to it.
    fn gate(&mut self, window: usize) {
        assert_eq!(self.mirror.stats().cycle_rejected, 0, "downhill stream cannot cycle");
        assert_eq!(self.mirror.stats().derive_failed, 0, "no derivation may be dropped");
        if let Err(e) = self.mirror.check_against_naive() {
            eprintln!("FAIL: differential gate after window {window}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = Args::parse();
    let layers: usize = args.get("layers", 6).max(2);
    let width: usize = args.get("width", 48).max(1);
    let windows: usize = args.get("windows", 6);
    let ops_per_window: u64 = args.get("ops-per-window", 400);
    let queries_per_window: u64 = args.get("queries-per-window", 256);
    let retract_pct: u64 = args.get("retract-pct", 20).min(90);
    let seed: u64 = args.get("seed", 1);
    let shards: usize = args.get("shards", 2);

    let sharded = ShardedClosure::build(ClosureConfig::new(), &DiGraph::new(), shards)
        .expect("empty graph is acyclic");
    let engine = Engine::start(sharded, Dict::new(), EngineConfig::default());
    let server = Server::start(engine, "127.0.0.1:0", ServerConfig::default())
        .expect("bind ephemeral localhost port");
    let addr = server.addr().to_string();
    eprintln!("daemon up on {addr} ({shards} shard(s)), empty graph, empty dictionary");

    let mut h = Harness {
        client: Client::connect(&addr).expect("bench client connects"),
        mirror: KnowledgeBase::new(),
        live: BTreeSet::new(),
        names: Vec::new(),
        mismatches: 0,
    };

    // The rule set: lift part-hood through subsumption in both directions.
    // Derived heads stay downhill through the layers, so forward chaining
    // can never be cycle-rejected.
    for rule in [
        "up: isa(X, Y) :- partof(X, Z), isa(Z, Y)",
        "share: partof(X, Y) :- isa(X, Z), partof(Z, Y)",
    ] {
        let resp = h.step(&format!("define-rule {rule}"), &format!("rule {rule}"));
        assert!(resp.starts_with("ok rule"), "rule definition failed: {resp:?}");
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut cells: Vec<WindowCell> = Vec::new();
    for window in 0..windows {
        let start = Instant::now();
        for _ in 0..ops_per_window {
            ingest_op(&mut h, &mut rng, layers, width, retract_pct);
        }
        let ingest_s = start.elapsed().as_secs_f64();

        let mut lat: Vec<u64> = Vec::with_capacity(queries_per_window as usize);
        let qstart = Instant::now();
        for _ in 0..queries_per_window {
            query_op(&mut h, &mut rng, &mut lat);
        }
        let query_s = qstart.elapsed().as_secs_f64();
        lat.sort_unstable();
        let pct = |p: f64| -> u64 {
            if lat.is_empty() {
                return 0;
            }
            lat[((lat.len() - 1) as f64 * p).round() as usize]
        };

        h.gate(window);
        let stats = h.mirror.stats();
        let cell = WindowCell {
            window,
            ops: ops_per_window,
            ops_per_s: ops_per_window as f64 / ingest_s,
            facts: h.live.len(),
            concepts: h.mirror.concept_count(),
            derived: stats.derived,
            overdeleted: stats.overdeleted,
            queries: queries_per_window,
            asks_per_s: queries_per_window as f64 / query_s,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
        };
        eprintln!(
            "window {}: {:>7.0} ops/s ingest, {} live facts, {} derived (cum), \
             {:>7.0} asks/s, p50 {}us p95 {}us, gate ok",
            cell.window,
            cell.ops_per_s,
            cell.facts,
            cell.derived,
            cell.asks_per_s,
            cell.p50_us,
            cell.p95_us
        );
        cells.push(cell);
    }

    let caught = server.caught_panics();
    server.stop().expect("accept loop survived the load");

    let mut table = Table::new(
        &format!(
            "KB serving: {layers} layers x {width}, {ops_per_window} ops + \
             {queries_per_window} asks per window, {retract_pct}% retracts, \
             {shards} shard(s), every answer mirrored + naive re-derivation gate \
             per window, seed {seed}"
        ),
        &[
            "window",
            "ops",
            "ops_per_s",
            "live_facts",
            "concepts",
            "derived_cum",
            "overdeleted_cum",
            "queries",
            "asks_per_s",
            "ask_p50_us",
            "ask_p95_us",
            "mismatches",
        ],
    );
    for c in &cells {
        table.row(&[
            c.window.to_string(),
            c.ops.to_string(),
            format!("{:.0}", c.ops_per_s),
            c.facts.to_string(),
            c.concepts.to_string(),
            c.derived.to_string(),
            c.overdeleted.to_string(),
            c.queries.to_string(),
            format!("{:.0}", c.asks_per_s),
            c.p50_us.to_string(),
            c.p95_us.to_string(),
            h.mismatches.to_string(),
        ]);
    }
    table.finish("kb_scale");

    if h.mismatches > 0 || caught > 0 {
        eprintln!("FAIL: {} wire/mirror divergences, {caught} handler panics", h.mismatches);
        std::process::exit(1);
    }
    println!(
        "every wire answer matched the mirror and the naive re-derivation gate \
         held after all {windows} windows"
    );
}

/// Concept name at (layer, slot): the stream points strictly from higher to
/// lower layers, so the union of base and derived facts is acyclic.
fn name(layer: usize, slot: usize) -> String {
    format!("l{layer}n{slot}")
}

/// One streamed mutation: mostly downhill asserts, `retract_pct` percent
/// retracts of a still-asserted fact (exercising DRed over the wire).
fn ingest_op(h: &mut Harness, rng: &mut StdRng, layers: usize, width: usize, retract_pct: u64) {
    if !h.live.is_empty() && rng.random_range(0..100u64) < retract_pct {
        let ix = rng.random_range(0..h.live.len());
        let (pred, a, b) = h.live.iter().nth(ix).expect("index in range").clone();
        let line = format!("retract {} {a} {b}", pred.name());
        let resp = h.step(&line, &line);
        // `removed` and `kept-derived` both leave the fact un-asserted.
        assert!(resp.starts_with("ok"), "retract of a live fact failed: {resp:?}");
        h.live.remove(&(pred, a, b));
        return;
    }
    let hi = rng.random_range(1..layers);
    let lo = rng.random_range(0..hi);
    let a = name(hi, rng.random_range(0..width));
    let b = name(lo, rng.random_range(0..width));
    let pred = if rng.random_bool(0.5) { Pred::IsA } else { Pred::PartOf };
    let line = format!("assert {} {a} {b}", pred.name());
    let resp = h.step(&line, &line);
    assert!(
        resp == "ok applied" || resp == "ok noop",
        "downhill assert was rejected: {resp:?}"
    );
    for n in [&a, &b] {
        if !h.names.contains(n) {
            h.names.push(n.clone());
        }
    }
    h.live.insert((pred, a, b));
}

/// One timed `ask` probe over known concepts; the answer is still checked
/// against the mirror (isa answers come from the daemon's snapshot reader,
/// partof answers from the KB's resident closure).
fn query_op(h: &mut Harness, rng: &mut StdRng, lat: &mut Vec<u64>) {
    if h.names.len() < 2 {
        return;
    }
    let a = h.names[rng.random_range(0..h.names.len())].clone();
    let b = h.names[rng.random_range(0..h.names.len())].clone();
    if a == b {
        return;
    }
    let rel = if rng.random_bool(0.7) { "isa" } else { "partof" };
    let line = format!("ask {rel} {a} {b}");
    let sent = Instant::now();
    let resp = h.step(&line, &line);
    lat.push(sent.elapsed().as_micros() as u64);
    assert!(resp == "ok true" || resp == "ok false", "ask failed: {resp:?}");
}
