//! **Figure 3.11** — storage required for a degree-2 graph as a function of
//! the number of nodes.
//!
//! "The size of the compressed closure increases slower than the size of
//! the full closure as the size of the graph is increased, giving better
//! compression for larger graphs."
//!
//! Usage: `cargo run --release -p tc-bench --bin fig3_11 [--degree 2]
//! [--seeds 3] [--max-nodes 3200]`

use tc_bench::{f2, mean, Args, Table};
use tc_core::CompressedClosure;
use tc_graph::generators::{random_dag, RandomDagConfig};

fn main() {
    let args = Args::parse();
    let degree: f64 = args.get("degree", 2.0);
    let seeds: u64 = args.get("seeds", 3);
    let max_nodes: usize = args.get("max-nodes", 3200);

    let mut table = Table::new(
        &format!("Fig 3.11 — storage for a degree-{degree} graph vs node count (x{seeds} seeds)"),
        &[
            "nodes",
            "graph_arcs",
            "closure",
            "closure/graph",
            "compressed",
            "compressed/graph",
        ],
    );

    let mut nodes = 100usize;
    while nodes <= max_nodes {
        let mut arcs = Vec::new();
        let mut closure_sizes = Vec::new();
        let mut compressed = Vec::new();
        for seed in 0..seeds {
            let g = random_dag(RandomDagConfig {
                nodes,
                avg_out_degree: degree,
                seed: seed * 7919 + nodes as u64,
            });
            let c = CompressedClosure::build(&g).expect("generator yields DAGs");
            let stats = c.stats();
            arcs.push(stats.graph_arcs as f64);
            closure_sizes.push(stats.closure_size as f64);
            compressed.push(stats.compressed_units() as f64);
        }
        let (a, cl, co) = (mean(&arcs), mean(&closure_sizes), mean(&compressed));
        table.row(&[
            nodes.to_string(),
            format!("{a:.0}"),
            format!("{cl:.0}"),
            f2(cl / a),
            format!("{co:.0}"),
            f2(co / a),
        ]);
        nodes *= 2;
    }

    table.finish("fig3_11");
    println!(
        "Paper-shape check: closure/graph grows roughly linearly in n while compressed/graph\n\
         grows much slower — compression improves with graph size."
    );
}
