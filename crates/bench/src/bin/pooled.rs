//! **§3.3 footnote** — shared-range storage: "one may do better, for
//! example, by storing the ranges separately and pointers to ranges at the
//! nodes".
//!
//! Compares the flat layout (two endpoints per interval, the paper's
//! "baseline performance measure") with the pooled layout (distinct ranges
//! stored once, one pointer per reference) across the §3.3 workload grid.
//!
//! Usage: `cargo run --release -p tc-bench --bin pooled [--nodes 1000]
//! [--seeds 3] [--max-degree 16]`

use tc_bench::{f2, mean, Args, Table};
use tc_core::pooled::PooledClosure;
use tc_core::ClosureConfig;
use tc_graph::generators::{random_dag, RandomDagConfig};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 1000);
    let seeds: u64 = args.get("seeds", 3);
    let max_degree: u64 = args.get("max-degree", 16);

    let mut table = Table::new(
        &format!("Shared-range pool vs flat interval storage, {nodes} nodes (x{seeds} seeds)"),
        &["degree", "flat_units", "pooled_units", "distinct_ranges", "refs", "saved_%"],
    );

    let mut degree = 1u64;
    while degree <= max_degree {
        let mut flat = Vec::new();
        let mut pooled = Vec::new();
        let mut ranges = Vec::new();
        let mut refs = Vec::new();
        for seed in 0..seeds {
            let g = random_dag(RandomDagConfig {
                nodes,
                avg_out_degree: degree as f64,
                seed: seed * 53 + degree,
            });
            let c = ClosureConfig::new().gap(1).build(&g).expect("DAG");
            let p = PooledClosure::from_closure(&c);
            flat.push(p.flat_storage_units() as f64);
            pooled.push(p.storage_units() as f64);
            ranges.push(p.pool_size() as f64);
            refs.push(p.ref_count() as f64);
        }
        let (f, p) = (mean(&flat), mean(&pooled));
        table.row(&[
            degree.to_string(),
            format!("{f:.0}"),
            format!("{p:.0}"),
            format!("{:.0}", mean(&ranges)),
            format!("{:.0}", mean(&refs)),
            f2(100.0 * (f - p) / f),
        ]);
        degree *= 2;
    }

    table.finish("pooled");
    println!(
        "Paper-shape check: the pool never stores more than n distinct ranges (every interval\n\
         is some node's tree interval), so savings grow with interval sharing — i.e. with\n\
         density, exactly where the flat layout is largest."
    );
}
