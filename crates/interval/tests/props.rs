//! Property tests for interval sets and the number line.

use proptest::prelude::*;
use tc_interval::{Interval, IntervalSet, NumberLine};

proptest! {
    /// An interval set behaves exactly like the union of its inputs under
    /// any insertion order (set semantics despite subsumption pruning).
    #[test]
    fn insertion_order_is_irrelevant(
        mut ivs in proptest::collection::vec((0u64..100, 0u64..30), 1..25),
        rotate in 0usize..25,
    ) {
        let a: IntervalSet = ivs.iter().map(|&(lo, w)| Interval::new(lo, lo + w)).collect();
        let r = rotate % ivs.len();
        ivs.rotate_left(r);
        let b: IntervalSet = ivs.iter().map(|&(lo, w)| Interval::new(lo, lo + w)).collect();
        for p in 0..140 {
            prop_assert_eq!(a.contains_point(p), b.contains_point(p), "point {}", p);
        }
    }

    /// `subsumes` agrees with full containment of the interval's points.
    #[test]
    fn set_subsumes_matches_pointwise(
        ivs in proptest::collection::vec((0u64..60, 0u64..20), 0..15),
        probe in (0u64..80, 0u64..20),
    ) {
        let set: IntervalSet = ivs.iter().map(|&(lo, w)| Interval::new(lo, lo + w)).collect();
        let probe = Interval::new(probe.0, probe.0 + probe.1);
        if set.subsumes(probe) {
            // Subsumption is single-member containment, stronger than
            // point coverage; verify the implied coverage.
            for p in probe.lo()..=probe.hi() {
                prop_assert!(set.contains_point(p));
            }
        }
    }

    /// The number line's prev/next/max agree with a sorted model.
    #[test]
    fn number_line_matches_model(
        nums in proptest::collection::btree_set(0u64..1000, 1..40),
        probes in proptest::collection::vec(0u64..1100, 10),
    ) {
        let mut line = NumberLine::new();
        for (ix, &n) in nums.iter().enumerate() {
            line.assign(n, ix as u32);
        }
        let model: Vec<u64> = nums.iter().copied().collect();
        prop_assert_eq!(line.max_used(), model.last().copied());
        for &p in &probes {
            let prev = model.iter().rev().find(|&&m| m < p).copied();
            let next = model.iter().find(|&&m| m > p).copied();
            prop_assert_eq!(line.prev_used(p), prev, "prev of {}", p);
            prop_assert_eq!(line.next_used(p), next, "next of {}", p);
        }
        prop_assert_eq!(line.live_count(), model.len());
    }

    /// Tombstoning keeps positions occupied but removes them from decoding;
    /// a renumber plan then drops them while preserving relative order.
    #[test]
    fn tombstone_then_renumber(
        nums in proptest::collection::btree_set(0u64..500, 2..30),
        kill_ix in 0usize..30,
        gap in 1u64..50,
    ) {
        let mut line = NumberLine::new();
        for (ix, &n) in nums.iter().enumerate() {
            line.assign(n, ix as u32);
        }
        let model: Vec<u64> = nums.iter().copied().collect();
        let victim = model[kill_ix % model.len()];
        line.tombstone(victim);
        prop_assert!(line.is_used(victim));
        prop_assert_eq!(line.node_at(victim), None);
        prop_assert_eq!(line.live_count(), model.len() - 1);

        let plan = line.renumber_plan(gap);
        prop_assert_eq!(plan.map_used(victim), None, "tombstones leave the plan");
        let fresh = line.apply_plan(&plan);
        prop_assert_eq!(fresh.live_count(), model.len() - 1);
        prop_assert_eq!(fresh.total_count(), model.len() - 1);
        // Order preservation: survivors map to ascending new numbers.
        let mut last_new = 0u64;
        for &old in model.iter().filter(|&&m| m != victim) {
            let new = plan.map_used(old).unwrap();
            prop_assert!(new > last_new);
            last_new = new;
        }
    }

    /// Midpoint allocation always lands strictly inside an empty region.
    #[test]
    fn midpoint_is_interior(lo in 0u64..1000, width in 0u64..100) {
        let line = NumberLine::new();
        let hi = lo + width;
        prop_assume!(lo < hi);
        match line.midpoint_in(lo, hi) {
            Some(mid) => {
                prop_assert!(lo < mid && mid < hi);
            }
            None => prop_assert!(hi - lo < 2),
        }
    }
}
