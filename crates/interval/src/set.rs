//! Sets of intervals with subsumption pruning.

use std::fmt;

use crate::Interval;

/// A set of closed intervals kept sorted by lower endpoint, with no interval
/// subsuming another.
///
/// This is the per-node label of the compressed closure: one *tree* interval
/// plus zero or more *non-tree* intervals (§3.2). Insertion implements the
/// paper's rule "at the time of adding an interval to the interval set
/// associated with a node, if one interval is subsumed by another, discard
/// the subsumed interval".
///
/// # Invariants
///
/// Because no member subsumes another, sorting by `lo` also strictly sorts by
/// `hi`; membership queries are therefore a single binary search.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    /// Sorted by `lo` ascending; `hi` is strictly ascending too.
    items: Vec<Interval>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set holding a single interval.
    pub fn singleton(iv: Interval) -> Self {
        IntervalSet { items: vec![iv] }
    }

    /// Number of intervals stored. The paper's storage metric is
    /// `2 * count()` (both endpoints of every interval).
    #[inline]
    pub fn count(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Storage units as counted in §3.3: "twice the number of intervals".
    #[inline]
    pub fn storage_units(&self) -> usize {
        2 * self.items.len()
    }

    /// Inserts an interval, discarding subsumed intervals per the paper's
    /// rule. Returns `true` if the set changed (i.e. the new interval was not
    /// already subsumed by an existing one).
    pub fn insert(&mut self, iv: Interval) -> bool {
        // Find the first existing interval with lo >= iv.lo.
        let pos = self.items.partition_point(|e| e.lo() < iv.lo());

        // An existing subsumer must have lo <= iv.lo, i.e. be at pos-1 …
        // except for the equal-lo case at `pos` itself.
        if pos > 0 && self.items[pos - 1].subsumes(iv) {
            return false;
        }
        if pos < self.items.len() && self.items[pos].subsumes(iv) {
            return false;
        }

        // Remove existing intervals subsumed by iv: they all have
        // lo >= iv.lo, so they form a prefix of items[pos..] (hi ascending).
        let end = pos
            + self.items[pos..]
                .iter()
                .take_while(|e| iv.subsumes(**e))
                .count();
        self.items.splice(pos..end, [iv]);
        debug_assert!(self.check_invariants());
        true
    }

    /// Whether some interval contains `n` — the reachability test.
    #[inline]
    pub fn contains_point(&self, n: u64) -> bool {
        // Last interval with lo <= n; since hi is ascending, it is the only
        // candidate that could cover n.
        let pos = self.items.partition_point(|e| e.lo() <= n);
        pos > 0 && self.items[pos - 1].hi() >= n
    }

    /// Whether some *member* subsumes `iv` entirely (used by incremental
    /// update pruning: "if the new interval is subsumed by an interval
    /// already associated with the node, this interval need not be added").
    pub fn subsumes(&self, iv: Interval) -> bool {
        let pos = self.items.partition_point(|e| e.lo() <= iv.lo());
        pos > 0 && self.items[pos - 1].hi() >= iv.hi()
    }

    /// Iterates over the intervals in ascending order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = Interval> + '_ {
        self.items.iter().copied()
    }

    /// Read-only view of the underlying sorted intervals.
    pub fn as_slice(&self) -> &[Interval] {
        &self.items
    }

    /// Inserts every interval of `other` into `self` (with subsumption
    /// pruning). Returns `true` if anything changed.
    pub fn insert_all(&mut self, other: &IntervalSet) -> bool {
        let mut changed = false;
        for iv in other.iter() {
            changed |= self.insert(iv);
        }
        changed
    }

    /// Merges adjacent and overlapping intervals in place (§3.2
    /// "Improvements": "if the two intervals `[i1,i2]` and `[j1,j2]` are such
    /// that j1 = i2 + 1, then create one `[i1,j2]`"). Returns the number of
    /// intervals eliminated.
    pub fn merge_adjacent(&mut self) -> usize {
        if self.items.len() < 2 {
            return 0;
        }
        let before = self.items.len();
        let mut merged: Vec<Interval> = Vec::with_capacity(before);
        for &iv in &self.items {
            match merged.last_mut() {
                Some(last) if last.mergeable(iv) => *last = last.merge(iv),
                _ => merged.push(iv),
            }
        }
        self.items = merged;
        debug_assert!(self.check_invariants());
        before - self.items.len()
    }

    /// Removes all intervals, keeping the allocation.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Total count of integers covered by the set (the decoded successor
    /// count upper bound, before mapping numbers back to live nodes).
    pub fn covered(&self) -> u64 {
        self.items.iter().map(|iv| iv.width()).sum()
    }

    /// Validates the sorted / non-subsuming invariants.
    pub fn check_invariants(&self) -> bool {
        self.items.windows(2).all(|w| {
            w[0].lo() < w[1].lo() && w[0].hi() < w[1].hi()
        })
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.items.iter()).finish()
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut set = IntervalSet::new();
        for iv in iter {
            set.insert(iv);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: u64, hi: u64) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut s = IntervalSet::new();
        assert!(s.insert(iv(10, 12)));
        assert!(s.insert(iv(1, 3)));
        assert!(s.insert(iv(5, 7)));
        assert_eq!(s.as_slice(), &[iv(1, 3), iv(5, 7), iv(10, 12)]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.storage_units(), 6);
    }

    #[test]
    fn subsumed_insert_is_rejected() {
        let mut s = IntervalSet::singleton(iv(1, 10));
        assert!(!s.insert(iv(3, 7)));
        assert!(!s.insert(iv(1, 10)), "duplicate is subsumed by itself");
        assert!(!s.insert(iv(1, 5)));
        assert!(!s.insert(iv(5, 10)));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn inserting_subsumer_removes_subsumed() {
        let mut s: IntervalSet = [iv(2, 3), iv(5, 6), iv(8, 9)].into_iter().collect();
        assert!(s.insert(iv(1, 7)));
        assert_eq!(s.as_slice(), &[iv(1, 7), iv(8, 9)]);
    }

    #[test]
    fn equal_lo_cases() {
        let mut s = IntervalSet::singleton(iv(5, 6));
        assert!(s.insert(iv(5, 9)), "wider interval with equal lo replaces");
        assert_eq!(s.as_slice(), &[iv(5, 9)]);
        assert!(!s.insert(iv(5, 7)), "narrower with equal lo rejected");
    }

    #[test]
    fn overlapping_non_nested_both_kept() {
        let mut s = IntervalSet::singleton(iv(1, 5));
        assert!(s.insert(iv(4, 9)));
        assert_eq!(s.count(), 2);
        assert!(s.check_invariants());
    }

    #[test]
    fn contains_point_binary_search() {
        let s: IntervalSet = [iv(1, 3), iv(7, 9), iv(20, 20)].into_iter().collect();
        for n in [1, 2, 3, 7, 9, 20] {
            assert!(s.contains_point(n), "{n} should be covered");
        }
        for n in [0, 4, 6, 10, 19, 21] {
            assert!(!s.contains_point(n), "{n} should not be covered");
        }
        assert!(!IntervalSet::new().contains_point(5));
    }

    #[test]
    fn set_subsumes_query() {
        let s: IntervalSet = [iv(1, 5), iv(8, 12)].into_iter().collect();
        assert!(s.subsumes(iv(2, 4)));
        assert!(s.subsumes(iv(8, 12)));
        assert!(!s.subsumes(iv(4, 9)));
        assert!(!s.subsumes(iv(13, 14)));
    }

    #[test]
    fn merge_adjacent_coalesces() {
        let mut s: IntervalSet = [iv(1, 3), iv(4, 6), iv(8, 9)].into_iter().collect();
        assert_eq!(s.merge_adjacent(), 1);
        assert_eq!(s.as_slice(), &[iv(1, 6), iv(8, 9)]);
        assert_eq!(s.merge_adjacent(), 0, "idempotent");
    }

    #[test]
    fn merge_adjacent_chains() {
        let mut s: IntervalSet = [iv(1, 1), iv(2, 2), iv(3, 3), iv(4, 4)].into_iter().collect();
        assert_eq!(s.merge_adjacent(), 3);
        assert_eq!(s.as_slice(), &[iv(1, 4)]);
    }

    #[test]
    fn merge_adjacent_merges_overlaps_too() {
        // Overlapping intervals can arise after merging (§3.2: "It now
        // becomes possible to generate overlapping intervals: merge two
        // intervals ... if i1 <= j1 <= i2 <= j2").
        let mut s: IntervalSet = [iv(1, 5), iv(4, 9)].into_iter().collect();
        assert_eq!(s.merge_adjacent(), 1);
        assert_eq!(s.as_slice(), &[iv(1, 9)]);
    }

    #[test]
    fn insert_all_unions() {
        let mut a: IntervalSet = [iv(1, 3)].into_iter().collect();
        let b: IntervalSet = [iv(2, 2), iv(5, 6)].into_iter().collect();
        assert!(a.insert_all(&b));
        assert_eq!(a.as_slice(), &[iv(1, 3), iv(5, 6)]);
        assert!(!a.insert_all(&b), "second union is a no-op");
    }

    #[test]
    fn covered_counts_integers() {
        let s: IntervalSet = [iv(1, 3), iv(10, 10)].into_iter().collect();
        assert_eq!(s.covered(), 4);
    }

    #[test]
    fn display() {
        let s: IntervalSet = [iv(1, 3), iv(5, 5)].into_iter().collect();
        assert_eq!(s.to_string(), "{[1,3] [5,5]}");
    }

    #[test]
    fn clear_empties() {
        let mut s = IntervalSet::singleton(iv(1, 2));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.storage_units(), 0);
    }
}
