//! The closed interval type.

use std::fmt;

/// A closed interval `[lo, hi]` over postorder numbers.
///
/// Invariant: `lo <= hi`. A single number `n` is represented as `[n, n]` —
/// the paper's leaf label ("the index associated with a leaf node is the same
/// as the postorder number of the node").
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    lo: u64,
    hi: u64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "invalid interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The degenerate interval `[n, n]`.
    #[inline]
    pub fn point(n: u64) -> Self {
        Interval { lo: n, hi: n }
    }

    /// Lower endpoint.
    #[inline]
    pub fn lo(self) -> u64 {
        self.lo
    }

    /// Upper endpoint.
    #[inline]
    pub fn hi(self) -> u64 {
        self.hi
    }

    /// Number of integers covered (saturating at `u64::MAX`).
    #[inline]
    pub fn width(self) -> u64 {
        (self.hi - self.lo).saturating_add(1)
    }

    /// Whether `n` lies inside the interval. This is the paper's reachability
    /// test: "answer reachability queries with only one range comparison".
    #[inline]
    pub fn contains(self, n: u64) -> bool {
        self.lo <= n && n <= self.hi
    }

    /// The paper's subsumption relation: `self` subsumes `other` iff
    /// `self.lo <= other.lo && other.hi <= self.hi` (§3.2: "if the two
    /// intervals `[i1,i2]` and `[j1,j2]` are such that i1 <= j1 and i2 >= j2,
    /// then discard `[j1,j2]`"). Subsumption is reflexive.
    #[inline]
    pub fn subsumes(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the two intervals share at least one number.
    #[inline]
    pub fn overlaps(self, other: Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The paper's adjacency relation (§3.2 "Improvements"): `other` starts
    /// exactly one past `self`'s end, i.e. `other.lo == self.hi + 1`.
    #[inline]
    pub fn adjacent_before(self, other: Interval) -> bool {
        self.hi != u64::MAX && other.lo == self.hi + 1
    }

    /// Whether the two intervals can be merged into one contiguous interval
    /// (they overlap or are adjacent in either order).
    #[inline]
    pub fn mergeable(self, other: Interval) -> bool {
        self.overlaps(other) || self.adjacent_before(other) || other.adjacent_before(self)
    }

    /// Merges two [`Interval::mergeable`] intervals into their union.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the union would not be contiguous.
    #[inline]
    pub fn merge(self, other: Interval) -> Interval {
        debug_assert!(self.mergeable(other), "merging disjoint intervals {self} and {other}");
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The intersection, if non-empty.
    #[inline]
    pub fn intersection(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.lo, self.hi)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let iv = Interval::new(3, 9);
        assert_eq!(iv.lo(), 3);
        assert_eq!(iv.hi(), 9);
        assert_eq!(iv.width(), 7);
        assert_eq!(Interval::point(5), Interval::new(5, 5));
        assert_eq!(Interval::point(5).width(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn inverted_interval_panics() {
        let _ = Interval::new(9, 3);
    }

    #[test]
    fn contains_is_inclusive() {
        let iv = Interval::new(3, 9);
        assert!(iv.contains(3));
        assert!(iv.contains(9));
        assert!(iv.contains(6));
        assert!(!iv.contains(2));
        assert!(!iv.contains(10));
    }

    #[test]
    fn subsumption_matches_paper_definition() {
        let big = Interval::new(1, 10);
        let small = Interval::new(3, 7);
        assert!(big.subsumes(small));
        assert!(!small.subsumes(big));
        assert!(big.subsumes(big), "subsumption is reflexive");
        // Shared endpoint still subsumes.
        assert!(big.subsumes(Interval::new(1, 10)));
        assert!(big.subsumes(Interval::new(1, 5)));
        // Overlapping but not nested: neither subsumes.
        let left = Interval::new(1, 5);
        let right = Interval::new(4, 8);
        assert!(!left.subsumes(right));
        assert!(!right.subsumes(left));
    }

    #[test]
    fn overlap_and_adjacency() {
        let a = Interval::new(1, 5);
        let b = Interval::new(6, 9);
        let c = Interval::new(5, 7);
        assert!(!a.overlaps(b));
        assert!(a.overlaps(c));
        assert!(a.adjacent_before(b));
        assert!(!b.adjacent_before(a));
        assert!(a.mergeable(b));
        assert!(b.mergeable(a));
        assert!(a.mergeable(c));
        assert!(!a.mergeable(Interval::new(7, 9)));
    }

    #[test]
    fn adjacency_at_u64_max_does_not_overflow() {
        let top = Interval::new(5, u64::MAX);
        assert!(!top.adjacent_before(Interval::point(0)));
        assert!(top.mergeable(Interval::new(0, 4))); // other.adjacent_before(top)
    }

    #[test]
    fn merge_takes_union() {
        let a = Interval::new(1, 5);
        let b = Interval::new(6, 9);
        assert_eq!(a.merge(b), Interval::new(1, 9));
        assert_eq!(b.merge(a), Interval::new(1, 9));
        let c = Interval::new(3, 12);
        assert_eq!(a.merge(c), Interval::new(1, 12));
    }

    #[test]
    fn intersection() {
        let a = Interval::new(1, 5);
        assert_eq!(a.intersection(Interval::new(4, 9)), Some(Interval::new(4, 5)));
        assert_eq!(a.intersection(Interval::new(6, 9)), None);
        assert_eq!(a.intersection(a), Some(a));
    }

    #[test]
    fn display_format() {
        assert_eq!(Interval::new(11, 20).to_string(), "[11,20]");
    }
}
