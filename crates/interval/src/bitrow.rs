//! Word-aligned bitset successor rows — the dense half of the hybrid
//! reachability oracle (DESIGN.md, "Hybrid oracle").
//!
//! Interval rows degrade on hostile graphs: a node whose successor set is a
//! *fragmented* subset of the rank line needs one `(lo, hi)` pair per run,
//! and a probe pays a fenced binary search over all of them. A bitset row
//! spends one bit per live rank instead: `reaches` becomes a single word
//! load + mask, `successor_count` a popcount sweep, and `successors` a
//! run-scan — all O(live/64) worst case and O(1) for the probe, regardless
//! of how shredded the set is. The exemplar is the roaring-bitmap closure
//! built in reverse topological order (SNIPPETS 2/3, axiom-profiler); here
//! the rows are *range-filled from the node's own merged rank intervals*,
//! which is provably the same set (each interval covers exactly the ranks
//! the row must contain) while keeping the freeze single-pass and
//! bit-identical to the interval representation it replaces.
//!
//! [`BitRows`] is a *partial* index: only the nodes whose merged interval
//! count crossed the hybrid threshold get a row; everyone else keeps their
//! interval row and probes fall through. A per-node slot directory maps
//! node index → row ordinal (or [`NO_ROW`]), and all rows share one words
//! arena at a fixed `ceil(live / 64)` word stride.

/// Slot value marking "this node has no bitset row".
pub const NO_ROW: u32 = u32::MAX;

/// An immutable set of fixed-stride bitset rows over rank space, indexed by
/// node. Built by [`BitRowsBuilder`]; empty (zero rows) when the freeze
/// selected no node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitRows {
    /// Words per row: `ceil(live / 64)`.
    width_words: usize,
    /// Per-node row ordinal, [`NO_ROW`] for interval-rowed nodes.
    slots: Vec<u32>,
    /// Row-major words arena: row `r` owns `words[r*width .. (r+1)*width]`.
    words: Vec<u64>,
    /// Merged rank intervals consumed by the rows — the count the interval
    /// CSR *didn't* store, so plane audits can balance totals.
    intervals: usize,
}

impl BitRows {
    /// Reassembles rows from their serialized parts, validating shape:
    /// slot ordinals must be dense `0..rows` (each used exactly once) and
    /// the arena must hold exactly `rows * width_words` words.
    pub fn from_parts(
        width_words: usize,
        slots: Vec<u32>,
        words: Vec<u64>,
        intervals: usize,
    ) -> Result<BitRows, &'static str> {
        let rows = slots.iter().filter(|&&s| s != NO_ROW).count();
        if width_words == 0 && rows > 0 {
            return Err("bitset rows with zero width");
        }
        if words.len() != rows * width_words {
            return Err("bitset arena length mismatch");
        }
        let mut seen = vec![false; rows];
        for &s in &slots {
            if s == NO_ROW {
                continue;
            }
            match seen.get_mut(s as usize) {
                Some(flag) if !*flag => *flag = true,
                _ => return Err("bitset slot ordinals not dense"),
            }
        }
        Ok(BitRows { width_words, slots, words, intervals })
    }

    /// Whether no node carries a bitset row.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of nodes carrying a bitset row.
    pub fn row_count(&self) -> usize {
        self.words.len().checked_div(self.width_words).unwrap_or(0)
    }

    /// Words per row (`ceil(live / 64)` at build time).
    pub fn width_words(&self) -> usize {
        self.width_words
    }

    /// The per-node slot directory, for serialization.
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }

    /// The shared words arena, for serialization.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Merged rank intervals represented by the rows (the audit ledger).
    pub fn interval_count(&self) -> usize {
        self.intervals
    }

    /// Whether `node` carries a bitset row.
    #[inline]
    pub fn has_row(&self, node: usize) -> bool {
        self.slots.get(node).is_some_and(|&s| s != NO_ROW)
    }

    #[inline]
    fn row_words(&self, node: usize) -> Option<&[u64]> {
        let slot = *self.slots.get(node)?;
        if slot == NO_ROW {
            return None;
        }
        let start = slot as usize * self.width_words;
        Some(&self.words[start..start + self.width_words])
    }

    /// Whether `node`'s row contains rank `t`; `None` when the node has no
    /// bitset row (fall through to its interval row).
    #[inline]
    pub fn contains(&self, node: usize, t: u32) -> Option<bool> {
        let row = self.row_words(node)?;
        let word = (t as usize) / 64;
        Some(row.get(word).is_some_and(|w| w & (1u64 << (t % 64)) != 0))
    }

    /// Popcount of `node`'s row; `None` when the node has no bitset row.
    pub fn count(&self, node: usize) -> Option<usize> {
        let row = self.row_words(node)?;
        Some(row.iter().map(|w| w.count_ones() as usize).sum())
    }

    /// Calls `f` with each maximal run `(lo, hi)` of set ranks in `node`'s
    /// row, ascending — the same `(lo, hi)` geometry an interval row would
    /// yield, so decode paths stay identical. Returns `false` (without
    /// calling `f`) when the node has no bitset row.
    pub fn for_each_run(&self, node: usize, mut f: impl FnMut(u32, u32)) -> bool {
        let Some(row) = self.row_words(node) else {
            return false;
        };
        let mut run: Option<(u32, u32)> = None;
        for (wi, &word) in row.iter().enumerate() {
            let mut w = word;
            let word_base = (wi * 64) as u32;
            while w != 0 {
                let start = w.trailing_zeros();
                let ones = (w >> start).trailing_ones();
                let lo = word_base + start;
                let hi = word_base + start + ones - 1;
                match &mut run {
                    Some((_, rhi)) if *rhi + 1 == lo => *rhi = hi,
                    Some((rlo, rhi)) => {
                        f(*rlo, *rhi);
                        run = Some((lo, hi));
                    }
                    None => run = Some((lo, hi)),
                }
                if start + ones >= 64 {
                    w = 0;
                } else {
                    w &= !(((1u64 << ones) - 1) << start);
                }
            }
        }
        if let Some((lo, hi)) = run {
            f(lo, hi);
        }
        true
    }
}

/// Accumulates bitset rows during a freeze: one [`BitRowsBuilder::add_row`]
/// per selected node, in any node order.
#[derive(Debug)]
pub struct BitRowsBuilder {
    width_words: usize,
    slots: Vec<u32>,
    words: Vec<u64>,
    intervals: usize,
}

impl BitRowsBuilder {
    /// A builder for `nodes` slots over a rank line of `live` entries.
    pub fn new(nodes: usize, live: usize) -> BitRowsBuilder {
        BitRowsBuilder {
            width_words: live.div_ceil(64),
            slots: vec![NO_ROW; nodes],
            words: Vec::new(),
            intervals: 0,
        }
    }

    /// Range-fills a fresh row for `node` from its merged rank intervals
    /// (ascending, disjoint, `hi < live`), marking its slot.
    ///
    /// # Panics
    ///
    /// Panics if `node` already has a row or an endpoint exceeds the line.
    pub fn add_row(&mut self, node: usize, intervals: &[(u32, u32)]) {
        assert_eq!(self.slots[node], NO_ROW, "node {node} already has a bitset row");
        let row_ix = self.words.len() / self.width_words.max(1);
        self.slots[node] = u32::try_from(row_ix).expect("bitset row ordinal fits u32");
        let start = self.words.len();
        self.words.resize(start + self.width_words, 0);
        let row = &mut self.words[start..];
        for &(lo, hi) in intervals {
            assert!(lo <= hi && (hi as usize) < self.width_words * 64, "interval past line end");
            let (wlo, whi) = (lo as usize / 64, hi as usize / 64);
            let lo_mask = !0u64 << (lo % 64);
            let hi_mask = !0u64 >> (63 - hi % 64);
            if wlo == whi {
                row[wlo] |= lo_mask & hi_mask;
            } else {
                row[wlo] |= lo_mask;
                for w in &mut row[wlo + 1..whi] {
                    *w = !0;
                }
                row[whi] |= hi_mask;
            }
        }
        self.intervals += intervals.len();
    }

    /// The finished immutable rows.
    pub fn finish(self) -> BitRows {
        BitRows {
            width_words: self.width_words,
            slots: self.slots,
            words: self.words,
            intervals: self.intervals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_runs(rows: &BitRows, node: usize) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        assert!(rows.for_each_run(node, |lo, hi| out.push((lo, hi))));
        out
    }

    #[test]
    fn range_fill_roundtrips_runs() {
        let mut b = BitRowsBuilder::new(3, 200);
        let ivs: &[(u32, u32)] = &[(0, 0), (5, 70), (72, 72), (130, 199)];
        b.add_row(1, ivs);
        let rows = b.finish();
        assert_eq!(rows.row_count(), 1);
        assert_eq!(rows.interval_count(), 4);
        assert!(rows.has_row(1) && !rows.has_row(0) && !rows.has_row(2));
        assert_eq!(collect_runs(&rows, 1), ivs);
        // Membership matches the interval union exactly.
        for t in 0..200u32 {
            let want = ivs.iter().any(|&(lo, hi)| lo <= t && t <= hi);
            assert_eq!(rows.contains(1, t), Some(want), "rank {t}");
        }
        assert_eq!(rows.count(1), Some(1 + 66 + 1 + 70));
        assert_eq!(rows.contains(0, 3), None);
        assert_eq!(rows.count(2), None);
        assert!(!rows.for_each_run(0, |_, _| panic!("no row")));
    }

    #[test]
    fn word_boundary_runs_merge() {
        // A run crossing words 0->1 and a full middle word must come back
        // as single runs, not per-word fragments.
        let mut b = BitRowsBuilder::new(1, 256);
        b.add_row(0, &[(60, 70), (128, 191), (250, 255)]);
        let rows = b.finish();
        assert_eq!(collect_runs(&rows, 0), vec![(60, 70), (128, 191), (250, 255)]);
        assert_eq!(rows.count(0), Some(11 + 64 + 6));
    }

    #[test]
    fn empty_row_and_empty_index() {
        let mut b = BitRowsBuilder::new(2, 100);
        b.add_row(0, &[]);
        let rows = b.finish();
        assert!(!rows.is_empty());
        assert_eq!(rows.contains(0, 50), Some(false));
        assert_eq!(rows.count(0), Some(0));
        assert_eq!(collect_runs(&rows, 0), vec![]);
        let none = BitRowsBuilder::new(2, 100).finish();
        assert!(none.is_empty());
        assert_eq!(none.row_count(), 0);
    }

    #[test]
    fn parts_roundtrip_and_validation() {
        let mut b = BitRowsBuilder::new(3, 65);
        b.add_row(2, &[(0, 64)]);
        b.add_row(0, &[(3, 3)]);
        let rows = b.finish();
        let back = BitRows::from_parts(
            rows.width_words(),
            rows.slots().to_vec(),
            rows.words().to_vec(),
            rows.interval_count(),
        )
        .unwrap();
        assert_eq!(back, rows);
        // Corrupt shapes are rejected.
        assert!(BitRows::from_parts(2, vec![0, NO_ROW], vec![1, 2, 3], 1).is_err());
        assert!(BitRows::from_parts(1, vec![1, NO_ROW], vec![0], 0).is_err());
        assert!(BitRows::from_parts(1, vec![0, 0], vec![0, 0], 0).is_err());
        assert!(BitRows::from_parts(1, vec![NO_ROW], vec![7], 0).is_err());
    }
}
