//! Flat, read-only interval layouts for the frozen query plane.
//!
//! [`IntervalSet`] is the right structure for a closure under churn — each
//! node owns a small, independently growable `Vec<Interval>` — but the read
//! path pays for that flexibility: every `contains_point` probe chases the
//! outer `Vec<IntervalSet>` header and then the set's own heap buffer (two
//! dependent dereferences) and binary-searches 16-byte `(lo, hi)` pairs over
//! the sparse `u64` postorder-number space. The structures here trade all
//! mutability away for layout, and assume the caller has first *rank
//! compressed* its intervals: endpoints are indices into the sorted array of
//! live postorder numbers, which both narrows every element and lets
//! adjacent intervals merge whenever only dead numbers separate them.
//!
//! * [`FlatIntervalIndex`] / [`NarrowIntervalIndex`] — every node's
//!   intervals as an ascending *boundary array* (a disjoint, non-adjacent
//!   interval sequence is exactly its sorted endpoints `lo_0, hi_0+1, lo_1,
//!   hi_1+1, ...`, and `t` is covered iff an odd number of boundaries are
//!   `<= t`), fronted by a fixed-size row header holding the first interval,
//!   the row's upper bound, and the *fence* keys. A point probe loads the
//!   header, picks one slice of the boundary array with a branchless fence
//!   scan, and counts that slice linearly — two dependent cache accesses
//!   instead of a pointer-chasing binary search. The two variants share one
//!   implementation: `u32` ranks with a 128-byte header (one aligned
//!   two-line sector), and `u16` ranks with a 64-byte single-line header and
//!   half-size slices for snapshots whose live number line fits in `u16` —
//!   the common case, and measurably faster because each probe touches half
//!   the bytes.
//! * [`StabbingIndex`] — *all* intervals of *all* nodes in one array sorted
//!   by lower endpoint, with owner ids and a max-`hi` segment tree on top,
//!   answering "which owners' intervals contain `t`?" (a stabbing query) in
//!   O(k log m) instead of scanning every owner's set.
//!
//! Both are snapshots: they hold no reference to the data they were built
//! from and never mutate.
//!
//! [`IntervalSet`]: crate::IntervalSet

/// Upper bound over a sorted `u64` slice: the number of elements `<= t`
/// (equivalently, the index of the first element `> t`). Used by the freeze
/// path to map raw interval endpoints onto live-number ranks.
#[inline]
pub fn upper_bound(s: &[u64], t: u64) -> usize {
    s.partition_point(|&x| x <= t)
}

/// Intervals per slice granule. Slices hold a multiple of 8 whole
/// intervals = a multiple of 16 boundaries = a multiple of one 64-byte
/// cache line for `u32` keys (half a line for `u16`), so with rows starting
/// aligned every slice scan stays within whole aligned lines. Whole
/// intervals per slice also means every preceding slice contributes an
/// *even* number of boundaries, letting the probe take its containment
/// parity from the probed slice alone.
const SLICE_GRANULE: usize = 8;

/// Stamps one boundary-array row index for a given rank key width. The key
/// type, fence count, and header alignment vary; the layout and probe logic
/// are identical.
macro_rules! flat_rows {
    (
        $Key:ty, $fences:expr, $align:literal, $Index:ident, $Builder:ident,
        $indexdoc:literal, $builderdoc:literal
    ) => {
        /// Fence keys inlined per row; they split the row's boundary array
        /// into at most `FENCES + 1` slices, so a probe scans one short
        /// slice after a single header load. Chosen so the header exactly
        /// fills its aligned footprint.
        const FENCES: usize = $fences;

        /// Slice width (in intervals) used for a row of `m` intervals: the
        /// smallest granule multiple that fits `m` into `FENCES + 1` slices.
        #[inline]
        fn slice_width(m: usize) -> usize {
            (m.div_ceil(FENCES + 1)).next_multiple_of(super::SLICE_GRANULE)
        }

        /// One row's fixed-size header: the first interval inline (fast
        /// path and empty-row sentinel), the row's upper bound, the extent
        /// of its boundary array in the shared spill, and the fence keys.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(C, align($align))]
        struct RowHead {
            /// First interval's endpoints; an empty row stores the
            /// impossible `[1, 0]`, which no probe can land in.
            lo0: $Key,
            hi0: $Key,
            /// Start of the row's boundary slices in `spill`; always a
            /// multiple of 16 keys, so slices stay cache-aligned.
            spill_start: u32,
            /// The row's interval count (first interval included); the
            /// boundary count is `2 * intervals`, padded to whole slices.
            intervals: $Key,
            /// One past the row's last covered rank (the final real
            /// boundary): probes at or above it miss without touching the
            /// boundary array. Zero for an empty row, which also makes the
            /// slice path unreachable.
            top: $Key,
            /// `fences[i]` is the first boundary (the `lo`) of slice
            /// `i + 1`, or the key maximum past the last slice (rank probes
            /// never reach it: the builder requires ranks strictly below
            /// the key maximum).
            fences: [$Key; FENCES],
        }

        // The header must exactly fill its aligned footprint: no hidden
        // padding, and header reads never straddle an extra cache line.
        const _: () = assert!(std::mem::size_of::<RowHead>() == $align);

        const EMPTY_ROW: RowHead = RowHead {
            lo0: 1,
            hi0: 0,
            spill_start: 0,
            intervals: 0,
            top: 0,
            fences: [<$Key>::MAX; FENCES],
        };

        #[doc = $indexdoc]
        ///
        /// A fixed-size row header per node and one shared spill array
        /// holding every row's interval boundaries. Within a row intervals
        /// are disjoint, non-adjacent, and sorted — the builder merges on
        /// the way in — so boundaries ascend strictly and a rank is covered
        /// by at most one interval per row.
        #[derive(Debug, Clone, Default, PartialEq, Eq)]
        pub struct $Index {
            heads: Vec<RowHead>,
            spill: Vec<$Key>,
        }

        #[doc = $builderdoc]
        ///
        /// Push each row's intervals in ascending `lo` order, then seal the
        /// row. Overlapping or adjacent intervals (`lo <= previous hi + 1`)
        /// are merged as they arrive.
        #[derive(Debug, Clone, Default)]
        pub struct $Builder {
            heads: Vec<RowHead>,
            spill: Vec<$Key>,
            /// Merged intervals of the row currently being built.
            current: Vec<($Key, $Key)>,
        }

        impl $Builder {
            /// An empty builder with capacity hints for the final index.
            pub fn with_capacity(rows: usize, intervals: usize) -> Self {
                $Builder {
                    heads: Vec::with_capacity(rows),
                    spill: Vec::with_capacity(2 * intervals),
                    current: Vec::new(),
                }
            }

            /// An empty builder that inherits a retired index's buffers:
            /// contents are cleared but the capacity is kept, so a pipeline
            /// that snapshots repeatedly — a serving layer refreezing after
            /// every write batch — skips re-growing the two large arrays.
            pub fn recycle(index: $Index) -> Self {
                let $Index { mut heads, mut spill } = index;
                heads.clear();
                spill.clear();
                $Builder { heads, spill, current: Vec::new() }
            }

            /// Appends `[lo, hi]` to the row currently being built. Within
            /// a row, calls must arrive with nondecreasing `lo`; an
            /// interval that overlaps or touches the previous one is merged
            /// into it. `hi` must lie strictly below the key maximum (the
            /// fence sentinel).
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`, `hi` is the key maximum, or `lo`
            /// regresses within the row (debug only).
            #[inline]
            pub fn push(&mut self, lo: $Key, hi: $Key) {
                debug_assert!(lo <= hi, "rank interval [{lo}, {hi}]");
                debug_assert!(hi < <$Key>::MAX, "rank {hi} collides with the fence sentinel");
                if let Some(&mut (plo, ref mut phi)) = self.current.last_mut() {
                    debug_assert!(
                        plo <= lo,
                        "rank intervals regress: [{plo}, {phi}] then [{lo}, {hi}]"
                    );
                    if lo <= phi.saturating_add(1) {
                        *phi = (*phi).max(hi);
                        return;
                    }
                }
                self.current.push((lo, hi));
            }

            /// Seals the current row; subsequent pushes start the next one.
            ///
            /// # Panics
            ///
            /// Panics if the boundary count overflows the `u32` extents —
            /// beyond 2 billion boundaries a flat snapshot is the wrong
            /// tool anyway.
            pub fn finish_row(&mut self) {
                let Some(&(lo0, hi0)) = self.current.first() else {
                    self.heads.push(EMPTY_ROW);
                    return;
                };
                let m = self.current.len();
                let spill_start: u32 =
                    self.spill.len().try_into().expect("boundary count exceeds u32 extents");
                debug_assert_eq!(spill_start % 16, 0, "rows start slice-aligned");
                // Intervals are disjoint and non-adjacent (hi + 1 < next
                // lo), so the boundary sequence lo_0, hi_0+1, lo_1, hi_1+1,
                // ... ascends strictly. `hi + 1` cannot overflow: push()
                // requires hi below the key maximum.
                for &(lo, hi) in &self.current {
                    self.spill.push(lo);
                    self.spill.push(hi + 1);
                }
                // Pad the tail slice with key-maximum boundaries (no probe
                // counts them) out to whole slices, keeping every row
                // slice-aligned.
                let top = self.current.last().expect("non-empty row").1 + 1;
                let width = slice_width(m);
                let slices = m.div_ceil(width);
                self.spill.resize(spill_start as usize + slices * 2 * width, <$Key>::MAX);
                let row = &self.spill[spill_start as usize..];
                let mut fences = [<$Key>::MAX; FENCES];
                for (i, fence) in fences.iter_mut().enumerate().take(slices - 1) {
                    *fence = row[(i + 1) * 2 * width];
                }
                self.heads.push(RowHead {
                    lo0,
                    hi0,
                    spill_start,
                    intervals: m as $Key,
                    top,
                    fences,
                });
                self.current.clear();
            }

            /// Finalizes the index.
            pub fn finish(self) -> $Index {
                debug_assert!(self.current.is_empty(), "unfinished row at finish()");
                $Index { heads: self.heads, spill: self.spill }
            }
        }

        impl $Index {
            /// Number of rows (nodes).
            #[inline]
            pub fn rows(&self) -> usize {
                self.heads.len()
            }

            /// Total intervals stored across all rows (after merging).
            #[inline]
            pub fn total_intervals(&self) -> usize {
                self.heads.iter().map(|h| h.intervals as usize).sum()
            }

            /// Whether some interval of `row` contains rank `t` — the
            /// frozen reachability probe. The inline first interval and the
            /// row's upper bound settle most probes from the header alone;
            /// otherwise the fence keys (already loaded with the header)
            /// pick the one slice of the boundary array that can hold `t`'s
            /// predecessor, and a branchless linear count of its aligned
            /// cache line(s) decides by parity: `t` is inside an interval
            /// iff an odd number of the row's boundaries are `<= t`. Slices
            /// hold whole intervals, so every earlier slice contributes an
            /// even count and only the probed slice's parity matters; later
            /// slices hold only boundaries (or padding) above `t`.
            #[inline]
            pub fn contains_point(&self, row: usize, t: $Key) -> bool {
                let head = &self.heads[row];
                if t <= head.hi0 {
                    return t >= head.lo0;
                }
                if t >= head.top {
                    return false;
                }
                let m = head.intervals as usize;
                let mut g = 0usize;
                for &fence in &head.fences {
                    g += usize::from(fence <= t);
                }
                let width = 2 * slice_width(m);
                let start = head.spill_start as usize + g * width;
                let mut count = 0usize;
                for &b in &self.spill[start..start + width] {
                    count += usize::from(b <= t);
                }
                count % 2 == 1
            }

            /// Iterates row `row`'s intervals as `(lo, hi)` rank pairs in
            /// ascending order. Only the final slice carries padding, so
            /// the row's first `2 * intervals` entries are exactly its real
            /// boundaries.
            pub fn row_intervals(&self, row: usize) -> impl Iterator<Item = ($Key, $Key)> + '_ {
                let head = &self.heads[row];
                let start = head.spill_start as usize;
                let real = &self.spill[start..start + 2 * head.intervals as usize];
                real.chunks_exact(2).map(|pair| (pair[0], pair[1] - 1))
            }
        }
    };
}

mod wide {
    flat_rows!(
        u32,
        27,
        128,
        FlatIntervalIndex,
        FlatBuilder,
        "A flat snapshot of per-node rank-interval sets over `u32` ranks: \
         128-byte headers (one aligned sector of two cache lines, fetched \
         together by adjacent-line prefetch) and 64-byte-aligned boundary \
         slices.",
        "Incremental builder for [`FlatIntervalIndex`]."
    );
}
pub use wide::{FlatBuilder, FlatIntervalIndex};

mod narrow {
    flat_rows!(
        u16,
        26,
        64,
        NarrowIntervalIndex,
        NarrowBuilder,
        "A flat snapshot of per-node rank-interval sets over `u16` ranks, \
         for closures whose live number line has at most `u16::MAX` entries \
         (so every rank is strictly below the fence sentinel): 64-byte \
         single-cache-line headers and 32-byte-aligned boundary slices — \
         half the probe footprint of [`FlatIntervalIndex`].",
        "Incremental builder for [`NarrowIntervalIndex`]."
    );
}
pub use narrow::{NarrowBuilder, NarrowIntervalIndex};

/// An inverted interval index: every `(interval, owner)` pair of a closure,
/// sorted globally by lower endpoint, under a max-`hi` segment tree.
///
/// `stab(t)` reports every owner with an interval containing `t`. Intervals
/// with `lo <= t` form a prefix of the sorted array; the segment tree prunes
/// the prefix's subtrees whose maximum `hi` falls short of `t`, so only
/// subtrees containing at least one hit are descended: O(k log m) for k
/// hits among m intervals, versus the O(n log k) full scan of asking every
/// node's set individually.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StabbingIndex {
    /// Lower endpoints, ascending.
    los: Vec<u32>,
    /// Upper endpoint of the interval at the same position.
    his: Vec<u32>,
    /// Owner id of the interval at the same position.
    owners: Vec<u32>,
    /// Segment tree over `his` (padded to `leaves` = next power of two):
    /// `tree[i]` = max `hi` in node `i`'s range, root at 1. Empty when
    /// `m == 0`.
    tree: Vec<u32>,
    /// Padded leaf count (power of two, `>= los.len()`).
    leaves: usize,
}

impl StabbingIndex {
    /// Builds the index from `(lo, hi, owner)` triples (any order).
    pub fn build(intervals: impl IntoIterator<Item = (u32, u32, u32)>) -> Self {
        let mut items: Vec<(u32, u32, u32)> = intervals.into_iter().collect();
        StabbingIndex::default().rebuild(&mut items)
    }

    /// As [`StabbingIndex::build`], but sorting a caller-owned staging
    /// buffer in place (drained on return, capacity kept for the caller's
    /// next round) and inheriting this retired index's buffers — cleared,
    /// capacity kept. Lets a snapshot pipeline rebuild the inverted index
    /// on every refreeze without reallocating its four arrays.
    pub fn rebuild(self, items: &mut Vec<(u32, u32, u32)>) -> Self {
        items.sort_unstable();
        let m = items.len();
        let StabbingIndex { mut los, mut his, mut owners, mut tree, .. } = self;
        los.clear();
        his.clear();
        owners.clear();
        los.reserve(m);
        his.reserve(m);
        owners.reserve(m);
        for &(lo, hi, owner) in items.iter() {
            debug_assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
            los.push(lo);
            his.push(hi);
            owners.push(owner);
        }
        items.clear();
        if m == 0 {
            return StabbingIndex::default();
        }
        let leaves = m.next_power_of_two();
        // tree[leaves + i] = his[i] + 1; padding leaves stay at 0 ( = "max hi
        // is minus infinity") so rank 0 stabs cannot reach them; real leaves
        // are shifted by one to keep the sentinel distinct from hi == 0.
        tree.clear();
        tree.resize(2 * leaves, 0u32);
        for (i, &hi) in his.iter().enumerate() {
            tree[leaves + i] = hi + 1;
        }
        for i in (1..leaves).rev() {
            tree[i] = tree[2 * i].max(tree[2 * i + 1]);
        }
        StabbingIndex { los, his, owners, tree, leaves }
    }

    /// Number of intervals indexed.
    #[inline]
    pub fn len(&self) -> usize {
        self.los.len()
    }

    /// Whether the index holds no intervals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.los.is_empty()
    }

    /// Appends to `out` the owner of every interval containing rank `t`. An
    /// owner appears once per containing interval (owners with overlapping
    /// intervals can repeat); order is by interval position, i.e. ascending
    /// `lo`. O(k log m).
    pub fn stab(&self, t: u32, out: &mut Vec<u32>) {
        // Candidates are exactly the prefix with lo <= t; among those,
        // report positions whose hi >= t.
        let pos = self.los.partition_point(|&lo| lo <= t);
        if pos == 0 {
            return;
        }
        self.collect(1, 0, self.leaves, pos, t, out);
    }

    /// Descends segment-tree node `node` covering positions `[lo, hi)`,
    /// reporting leaves `< pos` whose `hi >= t`. Subtrees entirely at or
    /// past `pos`, or whose max `hi` misses `t` (tree entries are `hi + 1`,
    /// padding is 0), are pruned — each visited subtree contains at least
    /// one reported leaf (or straddles the `pos` boundary), which bounds
    /// the walk at O(k log m).
    fn collect(&self, node: usize, lo: usize, hi: usize, pos: usize, t: u32, out: &mut Vec<u32>) {
        if lo >= pos || self.tree[node] <= t {
            return;
        }
        if hi - lo == 1 {
            out.push(self.owners[lo]);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.collect(2 * node, lo, mid, pos, t, out);
        self.collect(2 * node + 1, mid, hi, pos, t, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_matches_partition_point() {
        // Deterministic pseudo-random sorted arrays; compare against a
        // counting reference on every probe.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in 0..40usize {
            let mut s: Vec<u64> = (0..len).map(|_| next() % 64).collect();
            s.sort_unstable();
            for t in 0..66u64 {
                assert_eq!(
                    upper_bound(&s, t),
                    s.iter().filter(|&&x| x <= t).count(),
                    "len {len}, t {t}, s {s:?}"
                );
            }
        }
    }

    /// Stamps the shared row-index tests for one key width; the two
    /// variants must behave identically up to the key type.
    macro_rules! flat_rows_tests {
        ($mod:ident, $Key:ty, $Index:ident, $Builder:ident) => {
            mod $mod {
                use super::super::*;

                fn build_rows(rows: &[&[($Key, $Key)]]) -> $Index {
                    let mut b = $Builder::with_capacity(rows.len(), 0);
                    for row in rows {
                        for &(lo, hi) in *row {
                            b.push(lo, hi);
                        }
                        b.finish_row();
                    }
                    b.finish()
                }

                #[test]
                fn flat_index_mirrors_rows() {
                    let rows: &[&[($Key, $Key)]] =
                        &[&[(1, 3), (7, 9)], &[], &[(2, 2)], &[(1, 5), (4, 9), (20, 30)]];
                    let idx = build_rows(rows);
                    assert_eq!(idx.rows(), 4);
                    // Row 3's overlapping [1,5] + [4,9] merged into [1,9].
                    assert_eq!(idx.total_intervals(), 5);
                    assert_eq!(idx.row_intervals(3).collect::<Vec<_>>(), vec![(1, 9), (20, 30)]);
                    for (row, intervals) in rows.iter().enumerate() {
                        for t in 0..35 as $Key {
                            let want = intervals.iter().any(|&(lo, hi)| lo <= t && t <= hi);
                            assert_eq!(idx.contains_point(row, t), want, "row {row}, t {t}");
                        }
                    }
                }

                #[test]
                fn adjacent_intervals_merge() {
                    let idx = build_rows(&[&[(0, 2), (3, 4), (6, 8)]]);
                    assert_eq!(idx.row_intervals(0).collect::<Vec<_>>(), vec![(0, 4), (6, 8)]);
                    assert!(idx.contains_point(0, 3));
                    assert!(!idx.contains_point(0, 5));
                }

                #[test]
                fn contains_matches_naive_on_dense_random_rows() {
                    // Rows big enough to spread across many fence slices,
                    // including sizes around the slice-count boundary.
                    let mut state = 0x0123_4567_89ab_cdefu64;
                    let mut next = move || {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        (state >> 32) as $Key
                    };
                    for m in [1usize, 2, 14, 15, 28, 29, 30, 57, 58, 59, 177, 307, 538] {
                        let mut b = $Builder::with_capacity(1, m);
                        let mut intervals: Vec<($Key, $Key)> = Vec::new();
                        let mut lo = next() % 3;
                        for _ in 0..m {
                            let hi = lo + next() % 9;
                            b.push(lo, hi);
                            intervals.push((lo, hi));
                            // Keep at least one dead rank between intervals
                            // so nothing merges and the row keeps exactly m
                            // intervals.
                            lo = hi + 2 + next() % 7;
                        }
                        b.finish_row();
                        let idx = b.finish();
                        assert_eq!(idx.total_intervals(), m, "merge changed m={m}");
                        let top = intervals.last().unwrap().1 + 3;
                        for t in 0..top.min(6000) {
                            let want = intervals.iter().any(|&(lo, hi)| lo <= t && t <= hi);
                            assert_eq!(idx.contains_point(0, t), want, "m {m}, t {t}");
                        }
                        // And a spray of probes across the whole range.
                        for _ in 0..4000 {
                            let t = next() % (top + 10);
                            let want = intervals.iter().any(|&(lo, hi)| lo <= t && t <= hi);
                            assert_eq!(idx.contains_point(0, t), want, "m {m}, t {t}");
                        }
                    }
                }

                #[test]
                fn empty_index() {
                    let idx = build_rows(&[]);
                    assert_eq!(idx.rows(), 0);
                    assert_eq!(idx.total_intervals(), 0);
                }

                #[test]
                fn recycled_builder_matches_fresh_build() {
                    let retired = build_rows(&[&[(1, 3), (7, 9)], &[(2, 2)]]);
                    let rows: &[&[($Key, $Key)]] = &[&[(4, 6)], &[], &[(0, 1), (5, 5)]];
                    let mut b = $Builder::recycle(retired);
                    for row in rows {
                        for &(lo, hi) in *row {
                            b.push(lo, hi);
                        }
                        b.finish_row();
                    }
                    let recycled = b.finish();
                    assert_eq!(recycled, build_rows(rows), "recycled build must be identical");
                }
            }
        };
    }

    flat_rows_tests!(wide_rows, u32, FlatIntervalIndex, FlatBuilder);
    flat_rows_tests!(narrow_rows, u16, NarrowIntervalIndex, NarrowBuilder);

    #[test]
    fn empty_stabbing_index() {
        let stab = StabbingIndex::build(std::iter::empty());
        assert!(stab.is_empty());
        let mut out = Vec::new();
        stab.stab(5, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn stab_matches_naive_scan() {
        // Pseudo-random interval soup across a handful of owners; rank 0 is
        // included to exercise the `hi + 1` sentinel shift.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for m in [1usize, 2, 3, 7, 8, 9, 63, 64, 100] {
            let items: Vec<(u32, u32, u32)> = (0..m)
                .map(|ix| {
                    let lo = next() % 128;
                    let hi = lo + next() % 32;
                    (lo, hi, ix as u32 % 17)
                })
                .collect();
            let idx = StabbingIndex::build(items.iter().copied());
            assert_eq!(idx.len(), m);
            for t in 0..170u32 {
                let mut got = Vec::new();
                idx.stab(t, &mut got);
                got.sort_unstable();
                let mut want: Vec<u32> = items
                    .iter()
                    .filter(|&&(lo, hi, _)| lo <= t && t <= hi)
                    .map(|&(_, _, o)| o)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "m {m}, t {t}");
            }
        }
    }

    #[test]
    fn stab_covers_rank_zero() {
        let idx = StabbingIndex::build([(0, 0, 1), (0, 3, 2), (1, 2, 3)]);
        let mut out = Vec::new();
        idx.stab(0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn rebuilt_stabbing_index_matches_fresh_build() {
        let retired = StabbingIndex::build([(1, 4, 0), (2, 6, 1), (9, 9, 2)]);
        let triples = [(5, 9, 7), (0, 2, 3), (3, 3, 4)];
        let mut items = triples.to_vec();
        let rebuilt = retired.rebuild(&mut items);
        assert!(items.is_empty(), "staging buffer must be drained");
        assert_eq!(rebuilt, StabbingIndex::build(triples));
        // And rebuilding down to empty behaves like the empty build.
        let mut none = Vec::new();
        assert_eq!(rebuilt.rebuild(&mut none), StabbingIndex::default());
    }

    #[test]
    fn stab_reports_in_lo_order() {
        let idx = StabbingIndex::build([(1, 10, 5), (2, 9, 3), (3, 8, 1), (11, 12, 9)]);
        let mut out = Vec::new();
        idx.stab(8, &mut out);
        assert_eq!(out, vec![5, 3, 1]);
    }
}
