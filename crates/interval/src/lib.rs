//! Interval primitives for the compressed transitive closure.
//!
//! The paper's "range compression" (§3) stores, at each node, a *set of
//! closed numeric intervals* over postorder numbers instead of an explicit
//! successor list. This crate provides the three pieces that scheme is built
//! from:
//!
//! * [`Interval`] — a closed interval `[lo, hi]` over `u64` postorder
//!   numbers, with the paper's *subsumption*, *adjacency*, and *overlap*
//!   relations.
//! * [`IntervalSet`] — a sorted set of intervals that discards subsumed
//!   intervals on insertion (§3.2: "if one interval is subsumed by another,
//!   discard the subsumed interval") and can optionally merge adjacent or
//!   overlapping intervals (§3.2 "Improvements").
//! * [`NumberLine`] — the sorted list *L* of postorder numbers currently in
//!   use (§4), supporting the gap queries the incremental update algorithms
//!   need: predecessor/successor lookup, largest-gap search, midpoint
//!   allocation, and renumbering plans for when gaps run out.
//! * [`FlatIntervalIndex`] / [`NarrowIntervalIndex`] / [`StabbingIndex`] —
//!   immutable, contiguous snapshots of many *rank-compressed* interval
//!   sets for the read-optimized *frozen query plane*: boundary-array row
//!   layouts (in `u32` and half-width `u16` rank flavors) whose point probe
//!   is a fenced parity count over two dependent cache accesses, and a
//!   globally sorted inverted index answering "which sets contain `t`?"
//!   stabbing queries in O(k log m).
//! * [`BitRows`] — word-aligned bitset successor rows for the *hybrid*
//!   plane: nodes whose merged rank-interval count crosses the configured
//!   threshold trade their interval row for one bit per live rank, making
//!   the probe a single word test however fragmented the set is.
//! * [`paged`] — the same fenced row layout as raw bytes, for the
//!   out-of-core plane: encode/probe helpers shared by the streaming freeze
//!   writer and the buffer-pool-backed prober in `tc-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bitrow;
mod flat;
mod interval;
mod numberline;
pub mod paged;
mod set;

pub use bitrow::{BitRows, BitRowsBuilder, NO_ROW};
pub use flat::{
    upper_bound, FlatBuilder, FlatIntervalIndex, NarrowBuilder, NarrowIntervalIndex, StabbingIndex,
};
pub use interval::Interval;
pub use numberline::{CapacityError, NumberLine, RenumberPlan, DEFAULT_LINE_CAPACITY};
pub use set::IntervalSet;
